"""Serve quickstart: one sketch server, many producers, live queries.

Run with::

    python examples/serve_quickstart.py

The scenario is the serving layer's reason to exist: a shared counting
service.  One asyncio process hosts named sketch sessions for two
tenants; four concurrent producers pump a skewed click stream into the
``ads`` tenant's session through its bounded ingest queue (full queue =
real backpressure, no lost rows), while a dashboard task queries the
same session under load.  At the end the server checkpoints everything,
a "restarted" server restores from disk, and the restored session
answers the same queries — exactly.

Everything here also works over TCP (``await server.start_tcp(host,
port)`` + ``TCPServeClient.connect``) with the same client surface; see
``docs/serve.md`` for the wire protocol.
"""

from __future__ import annotations

import argparse
import asyncio
import tempfile
from pathlib import Path

import numpy as np

from repro.serve import SketchServer
from repro.serve.load import measure_query_latency, run_producers
from repro.streams import chunk_stream
from repro.streams.frequency import scaled_weibull_counts
from repro.streams.generators import exchangeable_stream


async def serve_demo(num_rows: int, checkpoint_dir: Path) -> None:
    ads = scaled_weibull_counts(
        num_items=max(50, num_rows // 40), shape=0.3, target_total=num_rows
    )
    stream = np.asarray(
        exchangeable_stream(ads, rng=np.random.default_rng(7)), dtype=np.int64
    )
    chunks = chunk_stream(stream, max(1, len(stream) // 16))

    async with SketchServer(
        checkpoint_dir=checkpoint_dir, checkpoint_interval=60.0
    ) as server:
        client = server.client

        # Two tenants, fully namespaced: same session name, no collision.
        await client.create(
            "clicks", "unbiased_space_saving", size=256, seed=42, tenant="ads"
        )
        await client.create(
            "clicks", "unbiased_space_saving", size=64, seed=7, tenant="fraud"
        )

        # Four producers share the ads session's bounded queue; a
        # dashboard samples query latency while ingest is in flight.
        stop = asyncio.Event()
        dashboard = asyncio.create_task(
            measure_query_latency(client, "clicks", stop=stop, tenant="ads")
        )
        report = await run_producers(
            client, "clicks", chunks, num_producers=4, tenant="ads"
        )
        stop.set()
        latency = await dashboard

        total = await client.total("clicks", tenant="ads")
        top = await client.top_k("clicks", 5, tenant="ads")
        print(
            f"ingested {report.rows:,} rows from {report.num_producers} "
            f"producers in {report.seconds:.3f}s "
            f"({report.rows_per_sec:,.0f} rows/s)"
        )
        print(
            f"queries under load: {latency.count} sampled, "
            f"p50 {latency.as_dict()['p50_ms']}ms"
        )
        print(f"total (exact for USS): {total.estimate:,.0f}")
        print("top 5 ads:", {item: round(count) for item, count in top.groups.items()})

        # Subset sum with a callable predicate (in-process client only).
        evens = await client.subset_sum(
            "clicks", lambda ad: ad % 2 == 0, tenant="ads"
        )
        print(f"clicks on even ad ids: {evens.estimate:,.0f} (true {ads.subset_sum(lambda ad: ad % 2 == 0):,.0f})")

        sessions = await client.list_sessions()
        print(f"sessions hosted: {[(s['tenant'], s['name']) for s in sessions]}")
        await client.checkpoint()
        snapshot = (await client.estimates("clicks", tenant="ads"))

    # "Restart": a new server restores every session from the manifest.
    restored = SketchServer.restore(checkpoint_dir)
    async with restored:
        again = await restored.client.estimates("clicks", tenant="ads")
        print(f"restored server answers identically: {again == snapshot}")


def main(num_rows: int = 200_000) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        asyncio.run(serve_demo(num_rows, Path(tmp)))


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows",
        type=int,
        default=200_000,
        help="click rows to stream (tiny values run in CI smoke tests)",
    )
    main(parser.parse_args().rows)
