"""Network flow monitoring: hierarchical heavy hitters and subnet traffic sums.

Run with::

    python examples/network_flow_monitoring.py

Section 3.1 of the paper lists IP-flow measurement as a core application:
the raw data is one row per packet (or flow record) keyed by source and
destination, the metric of interest is traffic per host or per subnet, and
operators want both heavy hitters ("which hosts generate excessive
traffic?") and aggregated rollups ("how much traffic does subnet 10.3.x.x
carry?").  This example simulates a packet stream with a few misbehaving
hosts, feeds it to the hierarchical heavy hitter structure (built from
per-level Unbiased Space Saving sketches), and answers both questions.
"""

from __future__ import annotations

import random

from repro.frequent.hierarchical import HierarchicalHeavyHitters
from repro.query.engine import SketchQueryEngine


def simulate_packets(num_packets: int, seed: int) -> list:
    """One row per packet: a (/16 subnet, /24 subnet, host) path."""
    rng = random.Random(seed)
    packets = []
    for _ in range(num_packets):
        roll = rng.random()
        if roll < 0.25:
            # A single chatty host inside 10.3.7.x.
            path = ("10.3", "10.3.7", "10.3.7.42")
        elif roll < 0.40:
            # A busy /24 with traffic spread over its hosts.
            path = ("10.3", "10.3.9", f"10.3.9.{rng.randrange(1, 255)}")
        else:
            # Background traffic spread over many subnets and hosts.
            second = rng.randrange(0, 32)
            third = rng.randrange(0, 64)
            host = rng.randrange(1, 255)
            path = (f"10.{second}", f"10.{second}.{third}", f"10.{second}.{third}.{host}")
        packets.append(path)
    return packets


def main() -> None:
    packets = simulate_packets(num_packets=150_000, seed=3)
    print(f"simulated {len(packets):,} packet records")

    monitor = HierarchicalHeavyHitters(depth=3, capacity=[256, 512, 1024], seed=0)
    for path in packets:
        monitor.update(path)

    # ------------------------------------------------------------------
    # Heavy hitters at each level of the hierarchy.
    # ------------------------------------------------------------------
    print("\nheavy /16 subnets (>= 10% of traffic):")
    for prefix, count in sorted(
        monitor.heavy_prefixes(level=0, phi=0.10).items(), key=lambda kv: -kv[1]
    ):
        print(f"  {prefix[0]:<10} ~{count:>10,.0f} packets")

    print("\nhierarchical heavy hitters (>= 8% after discounting children):")
    for prefix, count in sorted(
        monitor.hierarchical_heavy_hitters(phi=0.08).items(), key=lambda kv: -kv[1]
    ):
        print(f"  {'.'.join(prefix) if len(prefix) > 1 else prefix[0]:<14} ~{count:>10,.0f}")

    # ------------------------------------------------------------------
    # Subnet rollups and ad-hoc filters from the host-level sketch.
    # ------------------------------------------------------------------
    host_sketch = monitor.level_sketch(2)
    engine = SketchQueryEngine(host_sketch)
    suspect_host = engine.select_sum(
        where=lambda path: path[2] == "10.3.7.42"
    ).with_error
    low, high = suspect_host.confidence_interval(0.95)
    true_count = sum(1 for path in packets if path[2] == "10.3.7.42")
    print("\ntraffic attributed to suspected host 10.3.7.42:")
    print(f"  estimate {suspect_host.estimate:,.0f}  (95% CI [{low:,.0f}, {high:,.0f}])"
          f"   truth {true_count:,}")

    subnet_rollup = engine.select_sum(
        where=lambda path: path[0] == "10.3",
        group_by=lambda path: path[1],
    ).groups
    print("\ntraffic of subnet 10.3.x.x grouped by /24 (two busiest /24s):")
    for subnet, estimate in sorted(subnet_rollup.items(), key=lambda kv: -kv[1])[:2]:
        truth = sum(1 for path in packets if path[1] == subnet)
        print(f"  {subnet:<10} estimate {estimate:>10,.0f}   truth {truth:>10,}")
    print("(estimates for small /24s are individually noisy — the sketch sizes "
          "the error via confidence intervals as shown above)")


if __name__ == "__main__":
    main()
