"""Ad prediction features from a disaggregated impression stream.

Run with::

    python examples/ad_click_features.py

The motivating application of the paper (§3.1, §7): historical click and
impression counts are powerful features for click-through-rate models, but
the raw data arrives as one row per impression keyed by a high-cardinality
feature tuple.  This example:

* streams a synthetic Criteo-like impression log into two Unbiased Space
  Saving sketches (impressions and clicks),
* derives smoothed historical CTR features at several aggregation levels
  (ad, advertiser, advertiser × site section) from the sketches alone, and
* compares the sketch-derived features against the exact values.
"""

from __future__ import annotations

from repro import UnbiasedSpaceSaving
from repro.query.marginals import one_way_marginal, two_way_marginal
from repro.streams.adclick import AdClickDataset

SMOOTHING_PRIOR_CLICKS = 0.5
SMOOTHING_PRIOR_IMPRESSIONS = 20.0


def smoothed_ctr(clicks: float, impressions: float) -> float:
    """Beta-smoothed click-through rate, the usual ad-prediction feature."""
    return (clicks + SMOOTHING_PRIOR_CLICKS) / (
        impressions + SMOOTHING_PRIOR_IMPRESSIONS
    )


def main() -> None:
    dataset = AdClickDataset(num_rows=80_000, seed=11)
    advertiser = dataset.feature_index("advertiser")
    section = dataset.feature_index("site_section")
    print(
        f"dataset: {dataset.num_rows:,} impressions, "
        f"{dataset.click_count():,} clicks "
        f"(CTR {dataset.overall_click_rate():.3%})"
    )

    # One sketch for impressions, one for clicks — both keyed by the full
    # feature tuple so any marginal can be derived afterwards.
    impression_sketch = UnbiasedSpaceSaving(capacity=4_000, seed=1)
    click_sketch = UnbiasedSpaceSaving(capacity=2_000, seed=2)
    for features, clicked in dataset.labeled_impressions():
        impression_sketch.update(features)
        if clicked:
            click_sketch.update(features)

    # ------------------------------------------------------------------
    # Advertiser-level CTR features (1-way marginal).
    # ------------------------------------------------------------------
    estimated_impressions = one_way_marginal(impression_sketch, advertiser)
    estimated_clicks = one_way_marginal(click_sketch, advertiser)
    exact_impressions = dataset.marginal_counts(advertiser)
    exact_clicks = dataset.click_counts_by_feature(advertiser)

    top_advertisers = sorted(
        exact_impressions.items(), key=lambda kv: kv[1], reverse=True
    )[:8]
    print("\nadvertiser-level CTR feature (top advertisers by impressions):")
    print(f"{'advertiser':>10} {'impr est':>10} {'impr true':>10} "
          f"{'ctr est':>9} {'ctr true':>9}")
    for advertiser_id, true_impressions in top_advertisers:
        estimate_impressions = estimated_impressions.get(advertiser_id, 0.0)
        estimate_ctr = smoothed_ctr(
            estimated_clicks.get(advertiser_id, 0.0), estimate_impressions
        )
        true_ctr = smoothed_ctr(
            exact_clicks.get(advertiser_id, 0), true_impressions
        )
        print(
            f"{advertiser_id:>10} {estimate_impressions:>10,.0f} {true_impressions:>10,} "
            f"{estimate_ctr:>9.4f} {true_ctr:>9.4f}"
        )

    # ------------------------------------------------------------------
    # Advertiser × site-section features (2-way marginal), useful when the
    # ad itself is too new to have history.
    # ------------------------------------------------------------------
    pair_impressions = two_way_marginal(impression_sketch, advertiser, section)
    exact_pairs = dataset.pairwise_counts(advertiser, section)
    largest_pairs = sorted(exact_pairs.items(), key=lambda kv: kv[1], reverse=True)[:5]
    print("\nadvertiser x site-section impression counts (largest cells):")
    for pair, true_count in largest_pairs:
        print(
            f"  {str(pair):>14}: estimate {pair_impressions.get(pair, 0.0):>9,.0f}"
            f"   truth {true_count:>9,}"
        )

    total_error = sum(
        abs(pair_impressions.get(pair, 0.0) - count) for pair, count in largest_pairs
    ) / sum(count for _, count in largest_pairs)
    print(f"\nrelative error over the largest 2-way cells: {total_error:.2%}")


if __name__ == "__main__":
    main()
