"""Trending dashboard: sliding-window heavy hitters on a bursty stream.

Run with::

    python examples/trending_dashboard.py

The scenario is the canonical production use of a windowed frequent-item
sketch: a skewed ad-click stream with injected traffic bursts, and a
dashboard that asks every minute "what is trending over the last five
minutes?".  The example builds a windowed session through the facade —

    session = repro.build("unbiased_space_saving", size=256,
                          window="sliding:5m/1m", seed=42)

— feeds it timestamped rows, and renders the top-5 per minute.  Watch the
burst items rocket up the board while they fire and fall off again as
their panes expire out of the horizon; an all-time session run alongside
shows why the un-windowed view cannot answer the question (bursts drown
in the accumulated background).  A forward-decay session
(``window="decay:exp:..."``) gives the same recency bias without hard
expiry.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

import repro
from repro.streams.generators import BurstSpec, timestamped_zipf_stream

DURATION = 15 * 60.0  # a 15-minute stream
HORIZON = "5m"
PANE = "1m"


def bar(value: float, scale: float, width: int = 30) -> str:
    filled = int(round(width * min(value / scale, 1.0))) if scale else 0
    return "#" * filled


def main(num_rows: int = 60_000) -> None:
    rng = np.random.default_rng(7)
    scale_factor = num_rows / 60_000
    bursts = [
        BurstSpec(
            item="flash_sale",
            at=3 * 60.0,
            duration=90.0,
            rows=max(1, round(2_500 * scale_factor)),
        ),
        BurstSpec(
            item="breaking_news",
            at=8 * 60.0,
            duration=60.0,
            rows=max(1, round(3_000 * scale_factor)),
        ),
    ]
    rows = timestamped_zipf_stream(
        num_rows,
        num_items=2_000,
        exponent=1.05,
        duration=DURATION,
        bursts=bursts,
        rng=rng,
    )
    print(
        f"stream: {len(rows):,} rows over {DURATION/60:.0f} minutes, "
        f"bursts at t=3m (flash_sale) and t=8m (breaking_news)"
    )

    trending = repro.build(
        "unbiased_space_saving", size=256, window=f"sliding:{HORIZON}/{PANE}", seed=42
    )
    all_time = repro.build("unbiased_space_saving", size=256, seed=42)
    decayed = repro.build(
        "unbiased_space_saving", size=256, window="decay:exp:0.01", seed=42
    )

    timestamps = [ts for _, _, ts in rows]
    cursor = 0
    for minute in range(1, int(DURATION // 60) + 1):
        stop = bisect_right(timestamps, minute * 60.0)
        chunk = rows[cursor:stop]
        trending.extend(chunk)
        decayed.extend(chunk)
        all_time.update_batch([item for item, _, _ in chunk])
        cursor = stop
        if minute % 2:
            continue  # render every other minute to keep the output short
        top = trending.top_k(5).groups
        window_total = trending.estimator.total_estimate()
        scale = max(top.values(), default=1.0)
        print(f"\n== minute {minute:2d} | last {HORIZON} = {window_total:,.0f} rows ==")
        for item, count in top.items():
            share = count / window_total if window_total else 0.0
            print(f"  {str(item):>14} {count:>8,.0f} ({share:5.1%}) {bar(count, scale)}")

    print("\nfinal boards (burst traffic long over):")
    print(f"  sliding {HORIZON}: {list(trending.top_k(3).groups)}")
    print(f"  decay exp:0.01 : {list(decayed.top_k(3).groups)}")
    print(f"  all-time       : {list(all_time.top_k(3).groups)}")
    print(
        "\nthe all-time board still ranks the bursts (they never expire); "
        "the windowed and decayed boards have moved on."
    )

    # The window collapses to one mergeable sketch for hand-off (§5.5).
    merged = trending.merged()
    print(f"\nwindow handed off as one sketch: {merged!r}")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows",
        type=int,
        default=60_000,
        help="stream size (bursts scale with it; tiny values run in CI smoke tests)",
    )
    main(parser.parse_args().rows)
