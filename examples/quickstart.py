"""Quickstart: sketch a click stream and answer filtered sums with uncertainty.

Run with::

    python examples/quickstart.py

The example builds an Unbiased Space Saving session through the
``repro.build`` facade over a synthetic disaggregated click stream (one row
per click, many rows per ad), then answers the two questions the paper's
sketch is designed for:

1. *Disaggregated subset sums* — "how many clicks did ads from advertiser X
   get?" for arbitrary, after-the-fact filters, with confidence intervals.
2. *Frequent items* — "which ads are the heavy hitters?"

The same session API runs unchanged on the scale-out backends: swap
``backend="inline"`` for ``"sharded"`` or ``"parallel"`` and ingestion
routes across hash-partitioned shards without touching the query code.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.streams.frequency import scaled_weibull_counts
from repro.streams.generators import exchangeable_stream


def main(num_rows: int = 200_000) -> None:
    # ------------------------------------------------------------------
    # 1. Simulate a skewed click stream: 2,000 ads, ~200,000 click rows.
    # ------------------------------------------------------------------
    num_items = max(50, min(2_000, num_rows // 10))
    ads = scaled_weibull_counts(
        num_items=num_items, shape=0.25, target_total=num_rows
    )
    stream = exchangeable_stream(ads, rng=np.random.default_rng(7))
    print(f"stream: {ads.total:,} click rows over {ads.num_items:,} ads")

    # ------------------------------------------------------------------
    # 2. Build a session and feed it the raw (disaggregated) rows.
    #    update_batch is the vectorized fast path; session.extend(rows)
    #    is the scalar equivalent for arbitrary iterables.
    # ------------------------------------------------------------------
    session = repro.build("unbiased_space_saving", size=500, seed=42)
    session.update_batch(stream)
    print(f"session: {session!r}")
    print(f"  total preserved exactly = {session.total().estimate:,.0f}")

    # ------------------------------------------------------------------
    # 3. Subset sums with confidence intervals for arbitrary filters.
    #    Every session read returns an EstimateWithError / QueryResult —
    #    never a bare float — regardless of the underlying sketch class.
    # ------------------------------------------------------------------
    # Pretend ads with id divisible by 7 belong to one advertiser.
    advertiser_filter = lambda ad_id: ad_id % 7 == 0  # noqa: E731
    estimate = session.subset_sum(advertiser_filter)
    truth = ads.subset_sum(advertiser_filter)
    low, high = estimate.confidence_interval(0.95)
    print("\nadvertiser clicks (ads with id % 7 == 0)")
    print(f"  true count      : {truth:,.0f}")
    print(f"  sketch estimate : {estimate.estimate:,.0f}  (95% CI [{low:,.0f}, {high:,.0f}])")

    # The same query through the SQL-ish surface.
    grouped = session.select_sum(group_by=lambda ad_id: ad_id % 3).groups
    print("\nclicks grouped by (ad_id % 3):")
    for group, value in sorted(grouped.items()):
        exact = ads.subset_sum(lambda ad_id, g=group: ad_id % 3 == g)
        print(f"  group {group}: estimate {value:>10,.0f}   truth {exact:>10,.0f}")

    # ------------------------------------------------------------------
    # 4. Frequent items.
    # ------------------------------------------------------------------
    print("\ntop 5 ads by estimated clicks:")
    for ad_id, count in session.top_k(5).groups.items():
        print(f"  ad {ad_id:>5}: estimated {count:>10,.0f}   true {ads.count(ad_id):>10,}")

    # ------------------------------------------------------------------
    # 5. The same workload, scale-out: identical queries, sharded backend.
    # ------------------------------------------------------------------
    with repro.build(
        "unbiased_space_saving", size=500, backend="sharded", num_shards=8, seed=42
    ) as sharded:
        sharded.update_batch(stream)
        sharded_estimate = sharded.subset_sum(advertiser_filter)
        print(
            f"\nsharded backend ({sharded.estimator.num_shards} shards): "
            f"advertiser estimate {sharded_estimate.estimate:,.0f} "
            f"(± {sharded_estimate.std_error:,.0f})"
        )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows",
        type=int,
        default=200_000,
        help="click rows to simulate (tiny values run in CI smoke tests)",
    )
    main(parser.parse_args().rows)
