"""Quickstart: sketch a click stream and answer filtered sums with uncertainty.

Run with::

    python examples/quickstart.py

The example builds an Unbiased Space Saving sketch over a synthetic
disaggregated click stream (one row per click, many rows per ad), then
answers the two questions the paper's sketch is designed for:

1. *Disaggregated subset sums* — "how many clicks did ads from advertiser X
   get?" for arbitrary, after-the-fact filters, with confidence intervals.
2. *Frequent items* — "which ads are the heavy hitters?"
"""

from __future__ import annotations

import numpy as np

from repro import UnbiasedSpaceSaving
from repro.query.engine import SketchQueryEngine
from repro.streams.frequency import scaled_weibull_counts
from repro.streams.generators import exchangeable_stream


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Simulate a skewed click stream: 2,000 ads, ~200,000 click rows.
    # ------------------------------------------------------------------
    ads = scaled_weibull_counts(num_items=2_000, shape=0.25, target_total=200_000)
    stream = exchangeable_stream(ads, rng=np.random.default_rng(7))
    print(f"stream: {ads.total:,} click rows over {ads.num_items:,} ads")

    # ------------------------------------------------------------------
    # 2. Feed the raw (disaggregated) rows into the sketch.  update_batch is
    #    the vectorized fast path; the scalar equivalent is
    #    ``for ad_id in iterate_rows(stream): sketch.update(ad_id)``.
    # ------------------------------------------------------------------
    sketch = UnbiasedSpaceSaving(capacity=500, seed=42)
    sketch.update_batch(stream)
    print(f"sketch: {len(sketch)} bins retained, total preserved exactly = "
          f"{sketch.total_estimate():,.0f}")

    # ------------------------------------------------------------------
    # 3. Subset sums with confidence intervals for arbitrary filters.
    # ------------------------------------------------------------------
    # Pretend ads with id divisible by 7 belong to one advertiser.
    advertiser_filter = lambda ad_id: ad_id % 7 == 0  # noqa: E731
    estimate = sketch.subset_sum_with_error(advertiser_filter)
    truth = ads.subset_sum(advertiser_filter)
    low, high = estimate.confidence_interval(0.95)
    print("\nadvertiser clicks (ads with id % 7 == 0)")
    print(f"  true count      : {truth:,.0f}")
    print(f"  sketch estimate : {estimate.estimate:,.0f}  (95% CI [{low:,.0f}, {high:,.0f}])")

    # The same query through the SQL-ish engine.
    engine = SketchQueryEngine(sketch)
    grouped = engine.select_sum(group_by=lambda ad_id: ad_id % 3).groups
    print("\nclicks grouped by (ad_id % 3):")
    for group, value in sorted(grouped.items()):
        exact = ads.subset_sum(lambda ad_id, g=group: ad_id % 3 == g)
        print(f"  group {group}: estimate {value:>10,.0f}   truth {exact:>10,.0f}")

    # ------------------------------------------------------------------
    # 4. Frequent items.
    # ------------------------------------------------------------------
    print("\ntop 5 ads by estimated clicks:")
    for ad_id, count in sketch.top_k(5):
        print(f"  ad {ad_id:>5}: estimated {count:>10,.0f}   true {ads.count(ad_id):>10,}")


if __name__ == "__main__":
    main()
