"""Distributed sketching and time-decayed trending topics.

Run with::

    python examples/distributed_trending.py

Two of the paper's §5 extensions working together:

1. *Distributed counting* (§5.5): per-region event streams are sketched
   independently (as map-reduce mappers would) and combined with the
   unbiased merge, so region-level sketches also answer global questions.
2. *Time-decayed aggregation* (§5.3): a forward-decay sketch surfaces the
   currently-trending topics, discounting yesterday's burst in favour of
   what is rising right now.
"""

from __future__ import annotations

import random

from repro import UnbiasedSpaceSaving, merge_many_unbiased
from repro.core.decay import ForwardDecaySketch, exponential_decay


def simulate_region_stream(region: str, num_events: int, seed: int) -> list:
    """Per-region topic stream: shared global topics plus regional favourites."""
    rng = random.Random(seed)
    global_topics = [f"global-{k}" for k in range(5)]
    regional_topics = [f"{region}-topic-{k}" for k in range(50)]
    events = []
    for _ in range(num_events):
        if rng.random() < 0.4:
            events.append(rng.choice(global_topics))
        else:
            # Regional topics follow a rough power law.
            index = min(int(rng.paretovariate(1.2)) - 1, len(regional_topics) - 1)
            events.append(regional_topics[index])
    return events


def main() -> None:
    regions = ["emea", "amer", "apac"]
    capacity = 300

    # ------------------------------------------------------------------
    # 1. Map phase: one sketch per region, built where the data lives.
    # ------------------------------------------------------------------
    region_sketches = {}
    for index, region in enumerate(regions):
        events = simulate_region_stream(region, num_events=60_000, seed=index)
        sketch = UnbiasedSpaceSaving(capacity, seed=index)
        sketch.extend(events)
        region_sketches[region] = sketch
        top_topic, top_count = sketch.top_k(1)[0]
        print(f"{region}: {sketch.rows_processed:,} events, top topic {top_topic} "
              f"(~{top_count:,.0f})")

    # ------------------------------------------------------------------
    # 2. Reduce phase: one unbiased merge answers global questions.
    # ------------------------------------------------------------------
    global_sketch = merge_many_unbiased(region_sketches.values(), capacity=capacity, seed=7)
    print(f"\nglobal sketch: {global_sketch.rows_processed:,} events across "
          f"{len(regions)} regions")
    print("global top 5 topics:")
    for topic, count in global_sketch.top_k(5):
        print(f"  {topic:<16} ~{count:>10,.0f}")
    emea_share = global_sketch.subset_sum(lambda topic: str(topic).startswith("emea-"))
    print(f"events attributable to EMEA-only topics: ~{emea_share:,.0f}")

    # ------------------------------------------------------------------
    # 3. Trending topics with forward decay: a topic bursting *now* should
    #    outrank a bigger topic whose activity is old.
    # ------------------------------------------------------------------
    trending = ForwardDecaySketch(capacity=200, decay=exponential_decay(0.002), seed=3)
    undecayed = UnbiasedSpaceSaving(capacity=200, seed=4)
    rng = random.Random(99)

    def record(topic: str, minute: int) -> None:
        trending.update(topic, timestamp=float(minute))
        undecayed.update(topic)

    # Hours 0-47: "old-news" dominates.  Hours 48-72: "breaking" takes off.
    for minute in range(0, 48 * 60):
        if rng.random() < 0.3:
            record("old-news", minute)
        else:
            record(f"background-{rng.randrange(200)}", minute)
    for minute in range(48 * 60, 72 * 60):
        if rng.random() < 0.5:
            record("breaking", minute)
        elif rng.random() < 0.4:
            record("old-news", minute)
        else:
            record(f"background-{rng.randrange(200)}", minute)

    print("\ntime-decayed trending topics (top 3, decay half-life ≈ 5.8 hours):")
    for topic, score in trending.top_k(3):
        print(f"  {topic:<14} decayed score {score:>10,.1f}")
    print("for contrast, the undecayed sketch still ranks the older topic first:",
          undecayed.top_k(1)[0][0])


if __name__ == "__main__":
    main()
