"""Shared helpers for the benchmark suite.

Each benchmark reproduces one figure of the paper at a reduced scale (see
DESIGN.md §2 and EXPERIMENTS.md for the scale notes).  The experiments are
Monte-Carlo studies, not micro-benchmarks, so every figure benchmark runs
exactly once per session (``rounds=1``) and prints the rows/series the paper
reports; pytest-benchmark still records the wall-clock time of the full
experiment.
"""

from __future__ import annotations

import pytest


def run_experiment_once(benchmark, experiment):
    """Run ``experiment.run()`` exactly once under the benchmark timer."""
    return benchmark.pedantic(experiment.run, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def run_once():
    """Fixture form of :func:`run_experiment_once`."""
    return run_experiment_once
