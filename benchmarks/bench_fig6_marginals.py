"""Figure 6: 1-way and 2-way marginal estimation on the synthetic ad data."""

from __future__ import annotations

from repro.evaluation.experiments import get_experiment
from repro.evaluation.reporting import print_experiment


def test_fig6_marginal_estimation(benchmark, run_once):
    experiment = get_experiment(
        "fig6_marginals",
        num_rows=60_000,
        capacity=2_000,
        one_way_feature=1,
        two_way_features=(1, 5),
        min_marginal_size=10.0,
        num_trials=2,
        seed=0,
    )
    result = run_once(benchmark, experiment)
    summary = result.summary()
    print_experiment(
        "Figure 6 — 1-way and 2-way marginals (synthetic Criteo-like data)",
        summary=summary,
        rows=result.rows(),
    )
    # The sketch, built on disaggregated rows, should land in the same error
    # regime as priority sampling on pre-aggregated tuple counts.
    assert (
        summary["one_way/unbiased_space_saving"]
        <= 2.5 * summary["one_way/priority_sampling"] + 0.05
    )
    assert (
        summary["two_way/unbiased_space_saving"]
        <= 2.5 * summary["two_way/priority_sampling"] + 0.05
    )
