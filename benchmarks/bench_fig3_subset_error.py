"""Figure 3: subset-sum relative error vs true count, 200 bins, three distributions."""

from __future__ import annotations

from repro.evaluation.experiments import get_experiment
from repro.evaluation.reporting import print_experiment


def test_fig3_relative_error_200_bins(benchmark, run_once):
    experiment = get_experiment(
        "fig3_relative_error_200",
        capacity=200,
        subset_size=100,
        num_subsets=25,
        num_trials=4,
        target_total=100_000,
        seed=0,
    )
    result = run_once(benchmark, experiment)
    summary = result.summary()
    print_experiment(
        "Figure 3 — relative error vs true count (m=200)",
        summary=summary,
        rows=result.rows(),
        max_rows=60,
    )
    # Unbiased Space Saving should be competitive with priority sampling on
    # every distribution (the paper finds it matches or beats it).
    for name in ("weibull_0.32", "geometric_0.03", "weibull_0.15"):
        unbiased = summary[f"{name}/unbiased_space_saving"]
        priority = summary[f"{name}/priority_sampling"]
        assert unbiased <= priority * 2.0 + 0.01
    # Accuracy improves with skew: the heaviest-tailed panel has the lowest error.
    assert (
        summary["weibull_0.15/unbiased_space_saving"]
        <= summary["weibull_0.32/unbiased_space_saving"]
    )
