"""Figure 1: bin-mass profiles of the Misra-Gries merge vs the unbiased merge."""

from __future__ import annotations

from repro.evaluation.experiments import get_experiment
from repro.evaluation.reporting import print_experiment


def test_fig1_merge_profile(benchmark, run_once):
    experiment = get_experiment(
        "fig1_merge_profile",
        num_items_per_half=400,
        target_total_per_half=30_000,
        capacity=100,
        seed=0,
    )
    result = run_once(benchmark, experiment)
    summary = result.summary()
    print_experiment(
        "Figure 1 — merge profiles (sorted bin counts)",
        summary=summary,
        rows=result.rows(),
        max_rows=15,
    )
    # The unbiased merge preserves the combined mass; the Misra-Gries merge
    # truncates it (the paper's figure 1 message).
    assert summary["unbiased_total"] >= 0.9 * summary["combined_total"]
    assert summary["misra_gries_total"] < summary["combined_total"]
