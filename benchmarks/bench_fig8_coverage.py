"""Figure 8: confidence-interval widths and coverage on the sorted pathological stream."""

from __future__ import annotations

from repro.evaluation.experiments import get_experiment
from repro.evaluation.reporting import print_experiment


def test_fig8_confidence_interval_coverage(benchmark, run_once):
    experiment = get_experiment(
        "fig8_ci_coverage",
        num_items=2_000,
        target_total=150_000,
        shape=0.3,
        capacity=200,
        num_epochs=10,
        num_trials=8,
        seed=0,
    )
    result = run_once(benchmark, experiment)
    print_experiment(
        "Figure 8 — epoch truths, CI widths and coverage (sorted stream)",
        series=result,
    )
    coverage = result["coverage"]
    # Later epochs have large counts, many retained items and conservative
    # variance estimates, so coverage should be at or above ~90% there; the
    # middle epochs (few retained items, CLT not applicable) may dip, exactly
    # as the paper's figure 8 shows.
    assert coverage[-1] >= 0.7
    assert coverage[-2] >= 0.7
    assert all(0.0 <= value <= 1.0 for value in coverage)
