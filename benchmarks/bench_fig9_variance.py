"""Figure 9: accuracy of the variance estimator and comparison with PPS variance."""

from __future__ import annotations

from repro.evaluation.experiments import get_experiment
from repro.evaluation.reporting import print_experiment


def test_fig9_variance_estimator_accuracy(benchmark, run_once):
    experiment = get_experiment(
        "fig9_stddev_accuracy",
        num_items=2_000,
        target_total=150_000,
        shape=0.3,
        capacity=200,
        num_epochs=10,
        num_trials=8,
        seed=0,
    )
    result = run_once(benchmark, experiment)
    print_experiment(
        "Figure 9 — stddev overestimation and pathological vs PPS stddev",
        series=result,
    )
    overestimation = result["stddev_overestimation"]
    finite = [value for value in overestimation if value != float("inf")]
    assert finite, "expected at least one epoch with non-degenerate variance"
    # The estimator is intentionally upward biased: on most epochs the
    # estimated stddev should be at least ~0.7x the empirical one and often
    # above it (the paper's left panel shows ratios around or above 1).
    assert sum(1 for value in finite if value >= 0.7) >= len(finite) // 2
