"""Figure 7: the two-half pathological stream, Deterministic vs Unbiased."""

from __future__ import annotations

from repro.evaluation.experiments import get_experiment
from repro.evaluation.reporting import print_experiment


def test_fig7_two_half_pathological_stream(benchmark, run_once):
    experiment = get_experiment(
        "fig7_pathological_two_half",
        num_items_per_half=500,
        target_total_per_half=50_000,
        capacity=100,
        num_trials=8,
        subset_size=50,
        num_subsets=15,
        seed=0,
    )
    result = run_once(benchmark, experiment)
    summary = result.summary()
    print_experiment(
        "Figure 7 — two-half stream: inclusion probabilities and subset RRMSE",
        summary=summary,
        rows=result.rows(),
    )
    # Deterministic Space Saving forgets first-half items; Unbiased Space
    # Saving keeps sampling them and has clearly lower error there.
    assert (
        summary["unbiased_rrmse_first_half"]
        < summary["deterministic_rrmse_first_half"]
    )
    assert (
        summary["unbiased_inclusion_first_half"]
        >= summary["deterministic_inclusion_first_half"]
    )
