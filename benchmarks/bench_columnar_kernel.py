"""pytest-benchmark micro-benchmarks for the columnar kernel's hot paths.

The end-to-end number (``bench_update_throughput.py``) tells you *that*
batched ingestion regressed; these cases tell you *where*.  Each one
isolates a single phase of :meth:`ColumnarCounterStore.apply_batch`:

* **scatter-add** — the all-present steady state: one fancy-indexed
  ``counts[slots] += weights`` plus a bulk priority refresh;
* **min-replacement** — the contest sweep over an all-absent batch on a
  full store (the level-sweep kernel itself);
* **dict-to-index lookup** — membership resolution of a batch against
  the label map, on both the sorted-searchsorted integer fast path and
  the generic dict-walk fallback.

Where a phase dispatches through a sweep kernel, numpy and numba
variants are both benchmarked; the numba cases skip cleanly on runners
without numba (the flag degrades to numpy there, so the numpy number is
the relevant one anyway).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_columnar_kernel.py
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.columnar import (
    ColumnarCounterStore,
    _load_numba_sweep,
    _sweep_numpy,
    _sweep_reference,
)

CAPACITY = 256
BATCH = 20_000

requires_numba = pytest.mark.skipif(
    _load_numba_sweep() is None, reason="numba is not installed"
)


def make_store(kernel: str, *, labels=None) -> ColumnarCounterStore:
    store = ColumnarCounterStore(
        CAPACITY,
        generator=np.random.Generator(np.random.PCG64(0)),
        kernel=kernel,
    )
    if labels is not None:
        for position, label in enumerate(labels):
            store.insert(label, float(position + 1))
    return store


@pytest.fixture(scope="module")
def resident_labels():
    return list(range(CAPACITY))


@pytest.fixture(scope="module")
def present_batch(resident_labels):
    rng = np.random.default_rng(1)
    items = rng.choice(np.asarray(resident_labels, dtype=np.int64), size=BATCH)
    unique, sums = np.unique(items, return_counts=True)
    return unique, sums.astype(np.float64)


@pytest.fixture(scope="module")
def absent_batch():
    # Labels disjoint from the resident range: every row is a contest.
    unique = np.arange(CAPACITY, CAPACITY + 2_000, dtype=np.int64)
    return unique, np.ones(unique.size, dtype=np.float64)


# ----------------------------------------------------------------------
# Scatter-add (all-present steady state)
# ----------------------------------------------------------------------
def _scatter(store, batch):
    unique, weights = batch
    store.apply_batch(unique, weights)
    return store


def test_scatter_add_numpy(benchmark, resident_labels, present_batch):
    store = make_store("numpy", labels=resident_labels)
    benchmark(_scatter, store, present_batch)
    assert len(store) == CAPACITY


@requires_numba
def test_scatter_add_numba(benchmark, resident_labels, present_batch):
    store = make_store("numba", labels=resident_labels)
    benchmark(_scatter, store, present_batch)
    assert len(store) == CAPACITY


# ----------------------------------------------------------------------
# Min-replacement sweep (all-absent batch on a full store)
# ----------------------------------------------------------------------
def _contest_round(kernel, resident_labels, batch):
    store = make_store(kernel, labels=resident_labels)
    unique, weights = batch
    store.apply_batch(unique, weights)
    return store


def test_min_replacement_sweep_numpy(benchmark, resident_labels, absent_batch):
    store = benchmark(_contest_round, "numpy", resident_labels, absent_batch)
    assert len(store) == CAPACITY


@requires_numba
def test_min_replacement_sweep_numba(benchmark, resident_labels, absent_batch):
    store = benchmark(_contest_round, "numba", resident_labels, absent_batch)
    assert len(store) == CAPACITY


def test_min_replacement_sweep_reference(benchmark, resident_labels):
    # The executable spec is O(contests * capacity); a smaller batch keeps
    # the benchmark round sub-second while still timing the same loop.
    unique = np.arange(CAPACITY, CAPACITY + 200, dtype=np.int64)
    batch = (unique, np.ones(unique.size, dtype=np.float64))
    store = benchmark(_contest_round, "reference", resident_labels, batch)
    assert len(store) == CAPACITY


def _raw_sweep(sweep, counts, prio, weights, r_draws, u_draws):
    return sweep(counts.copy(), prio.copy(), weights, r_draws, u_draws, False)


@pytest.fixture(scope="module")
def sweep_inputs():
    rng = np.random.default_rng(2)
    counts = rng.integers(1, 5, size=CAPACITY).astype(np.float64)
    prio = rng.random(CAPACITY)
    weights = np.ones(2_000, dtype=np.float64)
    return counts, prio, weights, rng.random(2_000), rng.random(2_000)


def test_raw_sweep_numpy(benchmark, sweep_inputs):
    slots, accepted, levels = benchmark(_raw_sweep, _sweep_numpy, *sweep_inputs)
    assert slots.size == 2_000


@requires_numba
def test_raw_sweep_numba(benchmark, sweep_inputs):
    sweep = _load_numba_sweep()
    slots, accepted, levels = benchmark(_raw_sweep, sweep, *sweep_inputs)
    assert slots.size == 2_000


def test_raw_sweep_reference(benchmark, sweep_inputs):
    counts, prio, _, r_draws, u_draws = sweep_inputs
    weights = np.ones(200, dtype=np.float64)
    slots, accepted, levels = benchmark(
        _raw_sweep, _sweep_reference, counts, prio, weights,
        r_draws[:200], u_draws[:200],
    )
    assert slots.size == 200


# ----------------------------------------------------------------------
# Dict-to-index membership lookup
# ----------------------------------------------------------------------
def test_member_lookup_sorted_int_path(benchmark, resident_labels, present_batch):
    # Integer labels ride the sorted-searchsorted vectorized path.
    store = make_store("numpy", labels=resident_labels)
    unique, _ = present_batch
    slots = benchmark(store._member_slots, unique)
    assert (slots >= 0).all()


def test_member_lookup_generic_dict_path(benchmark):
    # String labels force the generic per-item dict walk — the fallback
    # whose cost the fast path exists to avoid.
    labels = [f"item-{position}" for position in range(CAPACITY)]
    store = make_store("numpy", labels=labels)
    rng = np.random.default_rng(3)
    batch = [labels[i] for i in rng.integers(0, CAPACITY, size=2_000)]
    slots = benchmark(store._member_slots, batch)
    assert (slots >= 0).all()
