"""Soak the streaming pipeline: bursty hours-equivalent load + kill/restore.

Two runs over one seeded workload (:func:`repro.streams.bursty_soak_stream`
loaded into a partitioned :class:`repro.connectors.LogSource`):

1. **Reference** — an uninterrupted :class:`~repro.connectors.PipelineDriver`
   drains the log into a served session while a concurrent sampler times
   ``total`` queries, yielding end-to-end throughput and p50/p99 query
   latency under ingest load.
2. **Kill/restore** — the same workload again, but the driver is killed
   *mid-tick* (right after a partition's offset commit, through the
   ``on_partition_applied`` hook) having just written a checkpoint; a new
   driver restores from that checkpoint into a **fresh server** and
   drains the rest.

The record asserts the two runs' final answers — every per-item estimate
and the stream total — are **bit-identical**, which is the exactly-once
contract the connectors docs promise.  A mismatch exits non-zero, so CI
can gate on it (the ``soak-resume`` job runs this at smoke scale).

The JSON record lands next to the perf record in ``benchmarks/results/``
and is uploaded by CI as a trend artifact.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.connectors import LogSource, PipelineDriver
from repro.serve import ServeClient, SketchServer
from repro.serve.load import measure_query_latency
from repro.streams import bursty_soak_stream

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "soak.json"

SPEC = "unbiased_space_saving"


class _Killed(RuntimeError):
    """Raised by the kill hook to simulate the driver process dying."""


async def _reference_run(
    source: LogSource,
    *,
    capacity: int,
    seed: int,
    batch_rows: int,
) -> Dict[str, Any]:
    """Uninterrupted drain with a concurrent query-latency sampler."""
    async with SketchServer() as server:
        client = ServeClient(server)
        await client.create("soak", spec=SPEC, size=capacity, seed=seed)
        driver = PipelineDriver(
            source, client, session="soak", batch_rows=batch_rows
        )
        stop = asyncio.Event()

        async def _drive():
            try:
                started = time.perf_counter()
                summary = await driver.run(final_checkpoint=False)
                return summary, time.perf_counter() - started
            finally:
                stop.set()

        (summary, seconds), latency = await asyncio.gather(
            _drive(),
            measure_query_latency(client, "soak", stop=stop, interval=0.0005),
        )
        estimates = await client.estimates("soak")
        total = await client.total("soak")
        return {
            "rows": summary["rows_ingested"],
            "ticks": summary["ticks"],
            "seconds": seconds,
            "rows_per_sec": summary["rows_ingested"] / seconds
            if seconds > 0
            else float("inf"),
            "query_samples": latency.count,
            "query_p50_ms": latency.quantile(0.50) * 1e3,
            "query_p99_ms": latency.quantile(0.99) * 1e3,
            "estimates": estimates,
            "total": total.estimate,
        }


async def _killed_and_restored_run(
    source: LogSource,
    *,
    capacity: int,
    seed: int,
    batch_rows: int,
    kill_after_applies: int,
    checkpoint_path: Path,
) -> Dict[str, Any]:
    """Kill the driver mid-tick at a fresh checkpoint, restore, drain."""
    applies = 0
    killed_at: Dict[str, Any] = {}

    async with SketchServer() as server:
        client = ServeClient(server)
        await client.create("soak", spec=SPEC, size=capacity, seed=seed)

        driver: Optional[PipelineDriver] = None

        async def _kill_hook(partition: str, rows: int) -> None:
            nonlocal applies
            applies += 1
            if applies == kill_after_applies:
                # A checkpoint at a mid-tick partition boundary: offsets
                # and sketch state are consistent here by construction.
                await driver.checkpoint()
                killed_at.update(
                    partition=partition,
                    offsets=dict(driver.offsets),
                    ticks=driver.ticks,
                )
                raise _Killed(partition)

        driver = PipelineDriver(
            source,
            client,
            session="soak",
            batch_rows=batch_rows,
            checkpoint_path=checkpoint_path,
            on_partition_applied=_kill_hook,
        )
        try:
            await driver.run(final_checkpoint=False)
            raise SystemExit(
                f"kill point never reached: only {applies} partition "
                f"applies happened, --kill-after-applies was "
                f"{kill_after_applies}; lower it or raise --rows-per-hour"
            )
        except _Killed:
            pass  # the "crash": driver and server state are abandoned

    # A brand-new server: nothing survives the crash but the checkpoint.
    async with SketchServer() as server:
        client = ServeClient(server)
        restored = await PipelineDriver.restore(
            checkpoint_path, source, client, batch_rows=batch_rows
        )
        summary = await restored.run(final_checkpoint=False)
        estimates = await client.estimates("soak")
        total = await client.total("soak")
        return {
            "killed_at": killed_at,
            "rows_after_restore": summary["rows_ingested"],
            "ticks": summary["ticks"],
            "estimates": estimates,
            "total": total.estimate,
        }


def run_soak(
    rows_per_hour: int = 200_000,
    *,
    hours: float = 1.0,
    num_items: int = 2_000,
    capacity: int = 256,
    partitions: int = 4,
    batch_rows: int = 5_000,
    kill_after_applies: int = 3,
    seed: int = 0,
    checkpoint_path: Optional[Path] = None,
) -> Dict[str, Any]:
    """Run both soak legs and build the JSON record (asserts bit-equality)."""
    rows = bursty_soak_stream(
        rows_per_hour,
        hours=hours,
        num_items=num_items,
        rng=np.random.default_rng(seed),
    )
    source = LogSource.from_rows(rows, num_partitions=partitions, seed=seed)
    if checkpoint_path is None:
        checkpoint_path = RESULTS_PATH.parent / "soak_driver.ckpt"
    checkpoint_path.parent.mkdir(parents=True, exist_ok=True)

    reference = asyncio.run(
        _reference_run(
            source, capacity=capacity, seed=seed, batch_rows=batch_rows
        )
    )
    resumed = asyncio.run(
        _killed_and_restored_run(
            source,
            capacity=capacity,
            seed=seed,
            batch_rows=batch_rows,
            kill_after_applies=kill_after_applies,
            checkpoint_path=checkpoint_path,
        )
    )

    bit_identical = (
        reference["estimates"] == resumed["estimates"]
        and reference["total"] == resumed["total"]
    )
    record = {
        "workload": {
            "rows_per_hour": rows_per_hour,
            "hours": hours,
            "rows": len(rows),
            "num_items": num_items,
            "partitions": partitions,
            "batch_rows": batch_rows,
            "capacity": capacity,
            "seed": seed,
        },
        "reference": {
            key: value
            for key, value in reference.items()
            if key != "estimates"
        },
        "resumed": {
            "killed_at": resumed["killed_at"],
            "rows_after_restore": resumed["rows_after_restore"],
            "ticks": resumed["ticks"],
            "total": resumed["total"],
        },
        "bit_identical": bit_identical,
    }
    checkpoint_path.unlink(missing_ok=True)
    return record


def main(argv: Optional[List[str]] = None) -> Dict[str, Any]:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows-per-hour", type=int, default=200_000)
    parser.add_argument("--hours", type=float, default=1.0)
    parser.add_argument("--num-items", type=int, default=2_000)
    parser.add_argument("--capacity", type=int, default=256)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--batch-rows", type=int, default=5_000)
    parser.add_argument(
        "--kill-after-applies",
        type=int,
        default=3,
        help="kill the driver after this many partition batch applies "
        "(mid-tick when it is not a multiple of --partitions)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_PATH,
        help="where to write the JSON soak record",
    )
    args = parser.parse_args(argv)
    record = run_soak(
        args.rows_per_hour,
        hours=args.hours,
        num_items=args.num_items,
        capacity=args.capacity,
        partitions=args.partitions,
        batch_rows=args.batch_rows,
        kill_after_applies=args.kill_after_applies,
        seed=args.seed,
    )
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    reference = record["reference"]
    print(
        f"soak: {reference['rows']:,} rows in {reference['seconds']:.2f}s "
        f"({reference['rows_per_sec']:,.0f} rows/s), "
        f"query p50 {reference['query_p50_ms']:.3f}ms "
        f"p99 {reference['query_p99_ms']:.3f}ms "
        f"over {reference['query_samples']} samples"
    )
    killed = record["resumed"]["killed_at"]
    print(
        f"kill/restore: killed after partition {killed.get('partition')!r} "
        f"at tick {killed.get('ticks')}, resumed "
        f"{record['resumed']['rows_after_restore']:,} rows total"
    )
    print(f"bit_identical: {record['bit_identical']}")
    print(f"(record written to {args.output})")
    if not record["bit_identical"]:
        sys.exit("FAIL: resumed run diverged from the uninterrupted run")
    return record


if __name__ == "__main__":
    main()
