"""Figure 2: empirical inclusion probabilities vs theoretical PPS probabilities."""

from __future__ import annotations

from repro.evaluation.experiments import get_experiment
from repro.evaluation.reporting import print_experiment


def test_fig2_inclusion_probabilities(benchmark, run_once):
    experiment = get_experiment(
        "fig2_inclusion_probabilities",
        num_items=1_000,
        shape=0.15,
        target_total=100_000,
        capacity=100,
        num_trials=15,
        seed=0,
    )
    result = run_once(benchmark, experiment)
    summary = result.summary()
    # Show the interesting transition region (items near the frequent/
    # infrequent boundary, i.e. the last ~120 items by index).
    rows = result.rows()[-120::10]
    print_experiment(
        "Figure 2 — inclusion probabilities (Unbiased Space Saving vs PPS)",
        summary=summary,
        rows=rows,
    )
    assert summary["correlation"] > 0.9
    assert summary["mean_abs_deviation"] < 0.12
