"""Ablation: merge strategies and reduction methods for distributed sketching.

DESIGN.md calls out two design choices in the distributed layer that deserve
measurement rather than assertion:

* flat (single k-way) merge vs a pairwise merge tree — each tree level adds
  its own reduction noise;
* the reduction family used inside the unbiased merge (fixed-size PPS/VarOpt
  vs priority sampling).

The benchmark partitions one stream, builds per-partition sketches once, and
compares the subset-sum error of the merged results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.mapreduce import reduce_sketches, sketch_partitions, tree_merge
from repro.distributed.partition import round_robin_partition
from repro.evaluation.reporting import print_experiment
from repro.streams.frequency import scaled_weibull_counts
from repro.streams.generators import exchangeable_stream, iterate_rows

CAPACITY = 128
NUM_PARTITIONS = 8
NUM_TRIALS = 5


@pytest.fixture(scope="module")
def setup():
    model = scaled_weibull_counts(num_items=1_000, shape=0.3, target_total=80_000)
    rows = list(iterate_rows(exchangeable_stream(model, rng=np.random.default_rng(1))))
    partitions = round_robin_partition(rows, NUM_PARTITIONS)
    subset = {item for item in model.items() if item % 5 == 0}
    truth = float(model.subset_total(subset))
    return partitions, subset, truth


def _relative_errors(merge_fn, partitions, subset, truth):
    errors = []
    for seed in range(NUM_TRIALS):
        sketches = sketch_partitions(partitions, CAPACITY, seed=seed)
        merged = merge_fn(sketches, seed)
        estimate = merged.subset_sum(lambda item: item in subset)
        errors.append(abs(estimate - truth) / truth)
    return errors


def test_merge_ablation_flat_vs_tree_and_reducers(benchmark, setup):
    partitions, subset, truth = setup

    def run():
        return {
            "flat_pps": _relative_errors(
                lambda sketches, seed: reduce_sketches(sketches, method="pps", seed=seed),
                partitions, subset, truth,
            ),
            "flat_priority": _relative_errors(
                lambda sketches, seed: reduce_sketches(sketches, method="priority", seed=seed),
                partitions, subset, truth,
            ),
            "tree_pps": _relative_errors(
                lambda sketches, seed: tree_merge(sketches, method="pps", seed=seed),
                partitions, subset, truth,
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    summary = {name: float(np.mean(errors)) for name, errors in results.items()}
    print_experiment("Merge ablation — mean relative error of a 20%-of-items subset", summary=summary)
    # Every strategy should answer the query within a reasonable error at this
    # scale; the flat merge should not be worse than the tree merge by much.
    for name, value in summary.items():
        assert value < 0.5, name
    assert summary["flat_pps"] <= summary["tree_pps"] * 2.0
