"""Figure 5: per-subset relative MSE, Unbiased Space Saving vs priority sampling."""

from __future__ import annotations

from repro.evaluation.experiments import get_experiment
from repro.evaluation.reporting import format_summary, print_experiment


def test_fig5_unbiased_vs_priority_sampling(benchmark, run_once):
    experiment = get_experiment(
        "fig5_vs_priority",
        shape=0.15,
        num_items=1_000,
        target_total=100_000,
        capacity=100,
        subset_size=100,
        num_subsets=30,
        num_trials=8,
        seed=0,
    )
    result = run_once(benchmark, experiment)
    summary = result.summary()
    print_experiment(
        "Figure 5 — per-subset relative MSE scatter and relative efficiency",
        summary=summary,
        rows=result.rows(),
        max_rows=30,
    )
    print(format_summary({f"efficiency_q{q}": v for q, v in result.efficiency_quantiles.items()}))
    # The paper reports the sketch matching or slightly beating priority
    # sampling at full scale (10⁹ rows).  At this reduced scale we require
    # the two methods to be in the same accuracy regime: the sketch's MSE is
    # within a small constant factor of priority sampling's on the median
    # subset, and it wins outright on a non-trivial fraction of subsets.
    # EXPERIMENTS.md records the measured gap.
    assert summary["fraction_subsets_unbiased_wins_or_ties"] >= 0.2
    assert summary["median_relative_efficiency"] >= 0.4
