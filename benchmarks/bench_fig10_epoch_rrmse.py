"""Figure 10: percent RRMSE per epoch, Deterministic vs Unbiased Space Saving."""

from __future__ import annotations

from repro.evaluation.experiments import get_experiment
from repro.evaluation.reporting import print_experiment


def test_fig10_deterministic_vs_unbiased_by_epoch(benchmark, run_once):
    experiment = get_experiment(
        "fig10_deterministic_vs_unbiased",
        num_items=2_000,
        target_total=150_000,
        shape=0.3,
        capacity=200,
        num_epochs=10,
        num_trials=8,
        seed=0,
    )
    result = run_once(benchmark, experiment)
    print_experiment(
        "Figure 10 — percent RRMSE per epoch (sorted stream)",
        series=result,
    )
    deterministic = result["deterministic_pct_rrmse"]
    unbiased = result["unbiased_pct_rrmse"]
    # Deterministic Space Saving answers 0 for every early epoch (100% error).
    assert all(value >= 99.0 for value in deterministic[:5])
    # Unbiased Space Saving is clearly better on the late, large epochs — the
    # paper reports a ~50x gap at full scale; at reduced scale we require a
    # clear win on both of the last two epochs and on their combined error.
    assert unbiased[-1] < deterministic[-1]
    assert unbiased[-2] < deterministic[-2]
    assert unbiased[-1] + unbiased[-2] < (deterministic[-1] + deterministic[-2]) / 2.0
