"""Update throughput benchmarks: scalar vs batched vs sharded vs parallel.

Two layers live in this file:

* **Ingestion comparison** (the repo's bench trajectory record) — run

      PYTHONPATH=src python benchmarks/bench_update_throughput.py

  to stream a 1M-row Zipf workload through Unbiased Space Saving six
  ways — the scalar ``update`` loop, the vectorized ``update_batch`` fast
  path, the hash-partitioned in-process ``ShardedSketch`` executor, the
  multiprocess ``ParallelSketchExecutor`` (serialized shard states
  fanned out to a worker pool), the timestamped *windowed* path (a
  ``SlidingWindowSketch`` routing every batch to its pane), and the
  *served* path (a ``repro.serve`` ``SketchServer`` fed by four
  concurrent producers through its bounded ingest queue, with
  query-under-load latency sampled alongside) — and emit a JSON perf
  record (printed, and written to
  ``benchmarks/results/update_throughput.json``).  The record includes
  an equivalence section verifying that all modes preserve the exact
  stream total and agree on the heavy hitters (the windowed mode's
  horizon is sized to cover the whole stream so its totals compare).
  ``--modes`` selects a subset (CI's bench-smoke and perf-regression
  jobs run explicit mode lists); ``tools/check_perf.py`` compares the
  emitted record against the committed baseline in
  ``benchmarks/baselines/``.  Two opt-in sweeps report into their own
  record sections: ``cluster`` (node-count scaling through a
  ``ClusterRouter``) and ``rebalance`` (a member **joins** the running
  ring mid-stream; the sweep asserts exact totals and ≥95% ingest
  availability through the migration).

* **pytest-benchmark micro-benchmarks** (§6.7: O(1) updates, O(m) space) —
  ``pytest benchmarks/bench_update_throughput.py`` times repeated rounds of
  a fixed workload through each sketch so per-row update costs can be
  compared, now including batched counterparts for the batch-capable
  sketches.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np
import pytest

from repro.api.build import build
from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.distributed.parallel import ParallelSketchExecutor
from repro.distributed.sharded import ShardedSketch
from repro.frequent.countmin import CountMinSketch
from repro.frequent.misra_gries import MisraGriesSketch
from repro.samplehold.adaptive import AdaptiveSampleAndHold
from repro.sampling.bottom_k import BottomKSketch
from repro.serve import SketchServer
from repro.serve.load import measure_query_latency, run_producers
from repro.streams.frequency import scaled_weibull_counts, zipf_counts
from repro.streams.generators import chunk_stream, exchangeable_stream, iterate_rows
from repro.windows import SlidingWindowSketch

ROWS = 50_000
CAPACITY = 256

#: Every ingestion mode the comparison knows, in report order.
ALL_MODES = ("scalar", "batched", "sharded", "parallel", "windowed", "serve")

#: Synthetic stream time for the windowed mode: the whole workload spans
#: this many seconds, panes are one tenth of it, and the horizon covers
#: all of it (so windowed totals equal the other modes' totals while the
#: pane ring still rotates through every pane).
STREAM_SECONDS = 600.0

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "update_throughput.json"


# ----------------------------------------------------------------------
# Ingestion comparison: scalar vs batched vs sharded
# ----------------------------------------------------------------------
def make_zipf_rows(
    rows: int = 1_000_000,
    num_items: int = 10_000,
    exponent: float = 1.1,
    seed: int = 0,
) -> np.ndarray:
    """An exchangeable 1M-row (by default) Zipf stream as a numpy array."""
    model = zipf_counts(num_items=num_items, exponent=exponent, total=rows)
    stream = exchangeable_stream(model, rng=np.random.default_rng(seed))
    return np.asarray(stream, dtype=np.int64)


def _timed(ingest: Callable[[], object]) -> "tuple[object, float]":
    start = time.perf_counter()
    sketch = ingest()
    elapsed = time.perf_counter() - start
    return sketch, elapsed


def run_serve_mode(
    chunks: List[np.ndarray],
    *,
    capacity: int,
    seed: int,
    num_producers: int = 4,
    queue_maxsize: int = 16,
    coalesce: int = 4,
):
    """Drive the served ingest path: concurrent producers + queries under load.

    Returns ``(estimator, seconds, serve_stats)`` where ``seconds`` spans
    first enqueue to fully drained queue (end-to-end applied throughput)
    and ``serve_stats`` carries producer and query-latency detail.  The
    latency sampler only runs between synchronous batch applies (the
    writer yields at group boundaries), so ``coalesce`` is kept moderate
    here to bound apply size and give the sampler real boundaries; the
    reported ``queries`` count says how many samples the percentiles
    rest on.
    """

    async def drive():
        async with SketchServer(
            queue_maxsize=queue_maxsize, coalesce=coalesce
        ) as server:
            client = server.client
            await client.create(
                "bench", "unbiased_space_saving", size=capacity, seed=seed
            )
            stop = asyncio.Event()
            # A tight interval so the sampler fires at every apply
            # boundary (the only points where reads can run at all).
            latency_task = asyncio.get_running_loop().create_task(
                measure_query_latency(client, "bench", stop=stop, interval=0.0005)
            )
            report = await run_producers(
                client, "bench", chunks, num_producers=num_producers
            )
            stop.set()
            latency = await latency_task
            served = server.registry.get("bench")
            stats = {
                "num_producers": report.num_producers,
                "batches": report.batches,
                "batches_coalesced": served.stats.batches_coalesced,
                "max_queue_depth": served.stats.max_queue_depth,
                "query_under_load": latency.as_dict(),
                "metrics": _trim_metrics(server.metrics()),
            }
            return served.session.estimator, report.seconds, stats

    return asyncio.run(drive())


def _trim_metrics(snapshot: Dict[str, object]) -> Dict[str, object]:
    """A perf record-sized view of ``SketchServer.metrics()``.

    Drops the per-bucket histogram rows (dashboard detail) but keeps the
    counters and percentiles so the record documents what the server's
    observability endpoint reported during the run.
    """
    queries = {
        op: {key: value for key, value in hist.items() if key != "buckets"}
        for op, hist in snapshot.get("queries", {}).items()
    }
    return {
        "sessions": snapshot["sessions"],
        "ingest": snapshot["ingest"],
        "queues": snapshot["queues"],
        "queries": queries,
    }


def run_hardening_scenario(
    *,
    rows: int = 50_000,
    num_items: int = 2_000,
    capacity: int = 256,
    seed: int = 0,
) -> Dict[str, object]:
    """Exercise the multi-tenant hardening layer and report what it cost.

    One rate-limited tenant ingests a Zipf stream through the blocking
    (backpressure) path, its session is LRU-evicted into the accuracy
    tier (§5.5 demotion + spill), then transparently rehydrated by the
    next query.  The returned dict records the throttle accounting, the
    spill/rehydrate latencies and the realized single-item subset-sum
    RRMSE of the demoted sketch against its configured error budget —
    the operational claims of docs/operations.md, measured.
    """
    import tempfile

    from repro.serve import (
        AccuracyTiering,
        ErrorBudget,
        QuotaManager,
        TenantQuota,
    )

    stream = make_zipf_rows(rows, num_items=num_items, exponent=1.1, seed=seed)
    labels, truth = np.unique(stream, return_counts=True)
    total = float(stream.size)
    budget = ErrorBudget(target_rrmse=0.02, min_capacity=16)
    quota = QuotaManager(
        default=TenantQuota(
            max_rows_per_sec=5_000_000.0, burst_rows=float(rows) / 2
        )
    )

    async def drive():
        with tempfile.TemporaryDirectory() as tier_dir:
            tiering = AccuracyTiering(tier_dir, default_budget=budget)
            async with SketchServer(
                quota=quota, tiering=tiering, max_sessions=1
            ) as server:
                client = server.client
                await client.create(
                    "hot", "unbiased_space_saving", size=capacity, seed=seed
                )
                started = time.perf_counter()
                for chunk in chunk_stream(stream, 10_000):
                    await client.update_batch("hot", chunk)
                await client.flush("hot")
                ingest_seconds = time.perf_counter() - started

                # A second session LRU-evicts "hot" through the tier.
                spill_started = time.perf_counter()
                await client.create(
                    "other", "unbiased_space_saving", size=capacity, seed=seed
                )
                spill_seconds = time.perf_counter() - spill_started

                rehydrate_started = time.perf_counter()
                info = await client.info("hot")
                rehydrate_seconds = time.perf_counter() - rehydrate_started
                estimates = await client.estimates("hot")
                snapshot = await client.metrics()
                return info, estimates, snapshot, (
                    ingest_seconds, spill_seconds, rehydrate_seconds
                )

    info, estimates, snapshot, timings = asyncio.run(drive())
    ingest_seconds, spill_seconds, rehydrate_seconds = timings
    answered = np.array(
        [float(estimates.get(int(label), 0.0)) for label in labels]
    )
    realized_rrmse = float(
        np.sqrt(np.mean((answered - truth.astype(float)) ** 2)) / total
    )
    return {
        "rows": int(total),
        "throttled_rows_per_sec": round(total / ingest_seconds, 1),
        "throttle_events": snapshot["quota"]["throttle_events"],
        "rows_throttled": snapshot["quota"]["rows_throttled"],
        "demoted_capacity": info["demoted_capacity"],
        "target_rrmse": budget.target_rrmse,
        "realized_rrmse": round(realized_rrmse, 5),
        "spill_ms": round(spill_seconds * 1e3, 2),
        "rehydrate_ms": round(rehydrate_seconds * 1e3, 2),
        "tiering": snapshot["tiering"],
    }


#: Node counts the cluster scaling sweep runs by default.
CLUSTER_MEMBER_COUNTS = (1, 2, 4)


def run_cluster_mode(
    chunks: List[np.ndarray],
    *,
    capacity: int,
    seed: int,
    member_counts: Sequence[int] = CLUSTER_MEMBER_COUNTS,
) -> Dict[str, object]:
    """Cluster scaling sweep: rows/s through a ClusterRouter at 1, 2, 4 nodes.

    For each node count ``n`` this boots ``n`` in-process
    :class:`~repro.serve.server.SketchServer` members on loopback ports,
    fronts them with a :class:`~repro.cluster.ClusterRouter`, creates one
    key-sharded session with ``shards = n``, and streams the workload
    through an unmodified ``TCPServeClient`` pointed at the router —
    so the timing covers JSON framing, the router's scatter, and the
    members' ingest queues end to end (enqueue through drained flush).
    Totals are asserted exact (Unbiased Space Saving preserves mass in
    every shard), so the sweep doubles as an equivalence check.

    The result lands in its own top-level ``cluster`` record section:
    node-count scaling has no single-process counterpart in ``modes``
    and must not perturb the perf gate's workload/config identity.
    """
    from repro.cluster import ClusterRouter, Member
    from repro.serve import TCPServeClient

    rows = int(sum(len(chunk) for chunk in chunks))

    async def drive(n: int) -> Dict[str, object]:
        servers = []
        members = []
        for i in range(n):
            server = SketchServer()
            host, port = await server.start_tcp("127.0.0.1", 0)
            servers.append(server)
            members.append(Member(f"m{i}", host, port))
        router = ClusterRouter(members, seed=seed)
        r_host, r_port = await router.start_tcp("127.0.0.1", 0)
        client = await TCPServeClient.connect(r_host, r_port)
        try:
            await client.create(
                "bench", "unbiased_space_saving", size=capacity,
                seed=seed, shards=n,
            )
            started = time.perf_counter()
            for chunk in chunks:
                await client.update_batch("bench", chunk)
            await client.flush("bench")
            elapsed = time.perf_counter() - started
            total = await client.total("bench")
            info = await client.info("bench")
            return {
                "seconds": round(elapsed, 4),
                "rows_per_sec": round(rows / elapsed, 1),
                "total": round(float(total.estimate), 2),
                "placement": info["cluster"]["members"],
            }
        finally:
            await client.close()
            await router.stop()
            for server in servers:
                await server.stop()

    sweep: Dict[str, object] = {}
    for count in member_counts:
        result = asyncio.run(drive(int(count)))
        assert result["total"] == float(rows), (
            f"cluster total drifted at n={count}: {result['total']} != {rows}"
        )
        sweep[str(int(count))] = result
    return {
        "rows": rows,
        "shards_equal_members": True,
        "members": sweep,
    }


def run_rebalance_mode(
    chunks: List[np.ndarray],
    *,
    capacity: int,
    seed: int,
    num_producers: int = 4,
    availability_floor: float = 0.95,
) -> Dict[str, object]:
    """Elasticity sweep: join a member mid-stream, measure ingest availability.

    Boots a 2-member cluster plus one spare server, creates a key-sharded
    session, and streams the workload through ``num_producers`` concurrent
    producers.  Once the stream is warm, the spare **joins** the running
    ring — pausing and draining only the shards it claims while the
    producers keep writing.  A probe task ingests small batches throughout
    and records the fraction that complete within a deadline: that is the
    ingest availability the rebalance must keep above
    ``availability_floor``.  The final total is asserted exact (producer
    rows + probe rows — migration loses nothing, Unbiased Space Saving
    preserves mass), so the sweep is also an elasticity equivalence check.

    Reports into its own top-level ``rebalance`` record section for the
    same reason as the cluster sweep: it measures topology change, not a
    single-process ingest flavor.
    """
    import tempfile

    from repro.cluster import ClusterRouter, Member
    from repro.serve import TCPServeClient

    rows = int(sum(len(chunk) for chunk in chunks))
    shards = 4
    probe_batch = ["probe-a", "probe-b", "probe-c"]

    async def drive(shared_root: str) -> Dict[str, object]:
        servers = []
        members = []
        for i in range(3):
            server = SketchServer(
                checkpoint_dir=Path(shared_root) / f"m{i}",
                checkpoint_interval=3600.0,  # migration forces its own
            )
            host, port = await server.start_tcp("127.0.0.1", 0)
            servers.append((f"m{i}", host, port, server))
            if i < 2:  # m2 stays outside the ring until the live join
                members.append(Member(f"m{i}", host, port))
        router = ClusterRouter(
            members, shared_checkpoint_root=shared_root, seed=seed
        )
        r_host, r_port = await router.start_tcp("127.0.0.1", 0)
        clients = [
            await TCPServeClient.connect(r_host, r_port)
            for _ in range(num_producers + 1)
        ]
        probe_client, producer_clients = clients[0], clients[1:]
        try:
            await producer_clients[0].create(
                "bench", "unbiased_space_saving", size=capacity,
                seed=seed, shards=shards,
            )
            warm = asyncio.Event()  # set once the stream is demonstrably live
            done = asyncio.Event()

            async def produce(client, share: List[np.ndarray]) -> int:
                sent = 0
                for chunk in share:
                    sent += await client.update_batch("bench", chunk)
                    warm.set()
                return sent

            probes_ok = 0
            probes_failed = 0

            async def probe() -> int:
                nonlocal probes_ok, probes_failed
                applied = 0
                while not done.is_set():
                    try:
                        applied += await asyncio.wait_for(
                            probe_client.update_batch("bench", probe_batch),
                            timeout=2.0,
                        )
                        probes_ok += 1
                    except Exception:
                        probes_failed += 1
                    await asyncio.sleep(0.005)
                return applied

            async def join_once_warm() -> Dict[str, object]:
                await warm.wait()
                member_id, host, port, _ = servers[2]
                started = time.perf_counter()
                result = await router.join(member_id, host, port)
                result["join_seconds"] = round(
                    time.perf_counter() - started, 4
                )
                return result

            started = time.perf_counter()
            probe_task = asyncio.ensure_future(probe())
            shares = [chunks[i::num_producers] for i in range(num_producers)]
            produced, joined = await asyncio.gather(
                asyncio.gather(
                    *(
                        produce(client, share)
                        for client, share in zip(producer_clients, shares)
                    )
                ),
                join_once_warm(),
            )
            done.set()
            probe_rows = await probe_task
            await probe_client.flush("bench")
            elapsed = time.perf_counter() - started

            total = await probe_client.total("bench")
            info = await probe_client.info("bench")
            attempts = probes_ok + probes_failed
            availability = probes_ok / attempts if attempts else 1.0
            expected = float(sum(produced) + probe_rows)
            assert float(total.estimate) == expected, (
                f"rebalance lost mass: total {total.estimate} != {expected}"
            )
            assert availability >= availability_floor, (
                f"ingest availability {availability:.3f} fell below "
                f"{availability_floor} during the join "
                f"({probes_failed}/{attempts} probes failed)"
            )
            return {
                "rows": rows,
                "probe_rows": int(probe_rows),
                "shards": shards,
                "members_before": 2,
                "members_after": 3,
                "sessions_moved": joined["sessions_moved"],
                "epoch": joined["epoch"],
                "join_seconds": joined["join_seconds"],
                "seconds": round(elapsed, 4),
                "rows_per_sec": round(rows / elapsed, 1),
                "availability": round(availability, 4),
                "availability_floor": availability_floor,
                "probe_attempts": attempts,
                "placement": info["cluster"]["members"],
                "total_exact": True,
            }
        finally:
            for client in clients:
                await client.close()
            await router.stop()
            for _, _, _, server in servers:
                await server.stop()

    with tempfile.TemporaryDirectory() as shared_root:
        return asyncio.run(drive(shared_root))


def run_ingestion_comparison(
    rows: int = 1_000_000,
    *,
    num_items: int = 10_000,
    exponent: float = 1.1,
    capacity: int = 256,
    batch_rows: int = 100_000,
    num_shards: int = 8,
    num_workers: Optional[int] = None,
    num_producers: int = 4,
    seed: int = 0,
    modes: Sequence[str] = ALL_MODES,
    cluster_members: Sequence[int] = CLUSTER_MEMBER_COUNTS,
) -> Dict[str, object]:
    """Time the selected ingestion modes on one workload; build a JSON record."""
    # "cluster" and "rebalance" are opt-in (never part of "all"): they
    # measure node-count scaling and topology change respectively, not
    # another single-process ingest flavor, and report into their own
    # record sections.
    cluster_requested = "cluster" in modes
    rebalance_requested = "rebalance" in modes
    modes = [name for name in modes if name not in ("cluster", "rebalance")]
    unknown = sorted(set(modes) - set(ALL_MODES))
    if unknown:
        raise ValueError(
            f"unknown modes {unknown}; expected from "
            f"{ALL_MODES + ('cluster', 'rebalance')}"
        )
    modes = [name for name in ALL_MODES if name in set(modes)]
    stream = make_zipf_rows(rows, num_items=num_items, exponent=exponent, seed=seed)
    # Count rounding in the Zipf model can nudge the realized row count.
    rows = int(len(stream))
    scalar_rows = [int(value) for value in stream]
    chunks = chunk_stream(stream, batch_rows)

    # All four modes are constructed through the repro.build facade; the
    # hot loops run on the unwrapped estimator so the record measures
    # ingestion, not session passthrough (which test_throughput_session_facade
    # times separately).
    def scalar() -> UnbiasedSpaceSaving:
        # Pinned to the historical scalar object store: "scalar" is the
        # machine-speed reference the normalized gate divides by, so it
        # must keep measuring the per-row linked-node loop even now that
        # the default store is the columnar kernel.
        sketch = build(
            "unbiased_space_saving", size=capacity, seed=seed,
            store="stream_summary",
        ).estimator
        update = sketch.update
        for row in scalar_rows:
            update(row)
        return sketch

    def batched() -> UnbiasedSpaceSaving:
        sketch = build("unbiased_space_saving", size=capacity, seed=seed).estimator
        for chunk in chunks:
            sketch.update_batch(chunk)
        return sketch

    def sharded() -> ShardedSketch:
        sketch = build(
            "unbiased_space_saving",
            size=capacity,
            backend="sharded",
            num_shards=num_shards,
            seed=seed,
        ).estimator
        for chunk in chunks:
            sketch.update_batch(chunk)
        return sketch

    def parallel() -> ParallelSketchExecutor:
        executor = build(
            "unbiased_space_saving",
            size=capacity,
            backend="parallel",
            num_shards=num_shards,
            seed=seed,
            num_workers=num_workers,
        ).estimator
        for chunk in chunks:
            executor.update_batch(chunk)
        return executor

    # Stream time for the windowed mode: row i arrives at t = i * dt.
    window_spec = f"sliding:{2 * STREAM_SECONDS:g}s/{STREAM_SECONDS / 10:g}s"
    timestamps = np.linspace(0.0, STREAM_SECONDS, num=rows, endpoint=False)
    ts_chunks = chunk_stream(timestamps, batch_rows)

    def windowed() -> SlidingWindowSketch:
        sketch = build(
            "unbiased_space_saving", size=capacity, window=window_spec, seed=seed
        ).estimator
        for chunk, ts_chunk in zip(chunks, ts_chunks):
            sketch.update_batch(chunk, timestamps=ts_chunk)
        return sketch

    ingest_fns: Dict[str, Callable[[], object]] = {
        "scalar": scalar,
        "batched": batched,
        "sharded": sharded,
        "parallel": parallel,
        "windowed": windowed,
    }

    sketches: Dict[str, object] = {}
    mode_stats: Dict[str, Dict[str, object]] = {}
    for name in modes:
        if name == "serve":
            sketch, elapsed, serve_stats = run_serve_mode(
                chunks,
                capacity=capacity,
                seed=seed,
                num_producers=num_producers,
            )
        else:
            sketch, elapsed = _timed(ingest_fns[name])
            serve_stats = None
        sketches[name] = sketch
        mode_stats[name] = {
            "seconds": round(elapsed, 4),
            "rows_per_sec": round(rows / elapsed, 1),
        }
        if serve_stats is not None:
            mode_stats[name].update(serve_stats)
    if "parallel" in sketches:
        executor = sketches["parallel"]
        mode_stats["parallel"]["num_workers"] = executor.num_workers
        executor.close()

    top_true = {item for item, _ in zipf_top_k(num_items, exponent, rows, 10)}
    equivalence = {
        "stream_total": rows,
        # Unbiased Space Saving preserves the total exactly in every mode.
        "totals": {
            name: round(total_of(sketch), 2) for name, sketch in sketches.items()
        },
        "rows_processed": {
            name: sketch.rows_processed for name, sketch in sketches.items()
        },
        "top10_recall": {
            name: round(
                len(top_true & {item for item, _ in sketch.top_k(10)}) / 10, 2
            )
            for name, sketch in sketches.items()
        },
    }
    speedup = {
        f"{name}_vs_scalar": round(
            mode_stats["scalar"]["seconds"] / mode_stats[name]["seconds"], 2
        )
        for name in modes
        if name != "scalar" and "scalar" in mode_stats
    }
    record = {
        "benchmark": "update_throughput",
        "workload": {
            "distribution": f"zipf(s={exponent:g})",
            "rows": rows,
            "num_items": num_items,
            "order": "exchangeable",
            "seed": seed,
        },
        "config": {
            "sketch": "UnbiasedSpaceSaving",
            "capacity": capacity,
            "batch_rows": batch_rows,
            "num_shards": num_shards,
            "num_workers": mode_stats.get("parallel", {}).get("num_workers"),
            "num_producers": num_producers,
            "window": window_spec,
        },
        "modes": mode_stats,
        "speedup": speedup,
        "equivalence": equivalence,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    if "serve" in modes:
        # Quota/tiering lifecycle measurements ride along whenever the
        # serve mode runs.  Deliberately a *new* top-level section: the
        # perf gate pins the workload/config identity sections, and this
        # scenario runs at its own fixed scale regardless of --rows.
        record["hardening"] = run_hardening_scenario(capacity=capacity, seed=seed)
    if cluster_requested:
        record["cluster"] = run_cluster_mode(
            chunks, capacity=capacity, seed=seed, member_counts=cluster_members
        )
    if rebalance_requested:
        record["rebalance"] = run_rebalance_mode(
            chunks, capacity=capacity, seed=seed, num_producers=num_producers
        )
    return record


def total_of(sketch) -> float:
    """Total estimate for either a single sketch or a sharded ensemble."""
    return float(sketch.total_estimate())


def zipf_top_k(num_items: int, exponent: float, total: int, k: int):
    """The true top-k of the Zipf model used by the comparison."""
    model = zipf_counts(num_items=num_items, exponent=exponent, total=total)
    ranked = sorted(model.counts.items(), key=lambda kv: -kv[1])
    return ranked[:k]


def main(argv: Optional[List[str]] = None) -> Dict[str, object]:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_000_000)
    parser.add_argument("--num-items", type=int, default=10_000)
    parser.add_argument("--exponent", type=float, default=1.1)
    parser.add_argument("--capacity", type=int, default=256)
    parser.add_argument("--batch-rows", type=int, default=100_000)
    parser.add_argument("--num-shards", type=int, default=8)
    parser.add_argument(
        "--num-workers",
        type=int,
        default=None,
        help="pool size for the parallel mode (default: min(shards, cpus); "
        "below 2 runs the wire path inline)",
    )
    parser.add_argument(
        "--num-producers",
        type=int,
        default=4,
        help="concurrent producers feeding the serve mode's ingest queue",
    )
    parser.add_argument(
        "--modes",
        default="all",
        help="comma-separated subset of "
        f"{','.join(ALL_MODES)},cluster,rebalance (or 'all'; 'all' "
        "excludes the opt-in cluster and rebalance sweeps); speedups "
        "report vs scalar when it is included",
    )
    parser.add_argument(
        "--cluster-members",
        default=",".join(str(n) for n in CLUSTER_MEMBER_COUNTS),
        help="comma-separated node counts for the cluster sweep "
        "(only used when --modes includes 'cluster')",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_PATH,
        help="where to write the JSON perf record",
    )
    args = parser.parse_args(argv)
    modes = (
        ALL_MODES
        if args.modes.strip().lower() == "all"
        else tuple(name.strip() for name in args.modes.split(",") if name.strip())
    )
    valid_modes = ALL_MODES + ("cluster", "rebalance")
    unknown = sorted(set(modes) - set(valid_modes))
    if unknown:
        parser.error(
            f"--modes: unknown mode(s) {', '.join(repr(m) for m in unknown)}; "
            f"valid modes: {', '.join(valid_modes)} (or 'all')"
        )
    if not modes:
        parser.error(
            f"--modes selected nothing; pass a comma-separated subset of "
            f"{', '.join(valid_modes)} (or 'all')"
        )
    record = run_ingestion_comparison(
        args.rows,
        num_items=args.num_items,
        exponent=args.exponent,
        capacity=args.capacity,
        batch_rows=args.batch_rows,
        num_shards=args.num_shards,
        num_workers=args.num_workers,
        num_producers=args.num_producers,
        seed=args.seed,
        modes=modes,
        cluster_members=tuple(
            int(value)
            for value in args.cluster_members.split(",")
            if value.strip()
        ),
    )
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    for mode, stats in record["modes"].items():
        print(
            f"{mode:>8}: {stats['seconds']:8.3f}s  "
            f"{stats['rows_per_sec']:>12,.0f} rows/s"
        )
    if record["speedup"]:
        summary = ", ".join(
            f"{key.removesuffix('_vs_scalar')} {value}x"
            for key, value in record["speedup"].items()
        )
        print(f"speedup vs scalar: {summary}")
    if "cluster" in record:
        for count, stats in record["cluster"]["members"].items():
            print(
                f"cluster n={count}: {stats['seconds']:8.3f}s  "
                f"{stats['rows_per_sec']:>12,.0f} rows/s"
            )
    print(f"(record written to {args.output})")
    return record


# ----------------------------------------------------------------------
# pytest-benchmark micro-benchmarks
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload():
    model = scaled_weibull_counts(num_items=2_000, shape=0.3, target_total=ROWS)
    return list(iterate_rows(exchangeable_stream(model, rng=np.random.default_rng(0))))


@pytest.fixture(scope="module")
def workload_array(workload):
    return np.asarray(workload, dtype=np.int64)


def _ingest(sketch_factory, rows):
    sketch = sketch_factory()
    update = sketch.update
    for row in rows:
        update(row)
    return sketch


def _ingest_batched(sketch_factory, rows_array):
    sketch = sketch_factory()
    sketch.update_batch(rows_array)
    return sketch


def test_throughput_unbiased_space_saving(benchmark, workload):
    sketch = benchmark(_ingest, lambda: UnbiasedSpaceSaving(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_unbiased_space_saving_batched(benchmark, workload_array):
    sketch = benchmark(
        _ingest_batched, lambda: UnbiasedSpaceSaving(CAPACITY, seed=0), workload_array
    )
    assert sketch.rows_processed == len(workload_array)


def test_throughput_session_facade(benchmark, workload):
    # Scalar updates through the StreamSession facade: quantifies the
    # per-row passthrough cost of the normalized API vs the raw sketch.
    sketch = benchmark(
        _ingest,
        lambda: build("unbiased_space_saving", size=CAPACITY, seed=0),
        workload,
    )
    assert sketch.rows_processed == len(workload)


def test_throughput_windowed_batched(benchmark, workload_array):
    # Timestamped windowed ingestion: the batch is grouped by pane and
    # each slice rides the pane's own vectorized fast path.
    timestamps = np.linspace(0.0, 60.0, num=len(workload_array), endpoint=False)

    def ingest():
        sketch = SlidingWindowSketch(CAPACITY, horizon="120s", pane="6s", seed=0)
        sketch.update_batch(workload_array, timestamps=timestamps)
        return sketch

    sketch = benchmark(ingest)
    assert sketch.rows_processed == len(workload_array)


def test_throughput_served_queue(benchmark, workload_array):
    # The full served ingest path — bounded queue, coalescing writer,
    # two concurrent producers — including the asyncio loop setup cost.
    chunks = chunk_stream(workload_array, 5_000)

    def ingest():
        return run_serve_mode(chunks, capacity=CAPACITY, seed=0, num_producers=2)[0]

    sketch = benchmark(ingest)
    assert sketch.rows_processed == len(workload_array)


def test_throughput_sharded_batched(benchmark, workload_array):
    sketch = benchmark(
        _ingest_batched,
        lambda: ShardedSketch(CAPACITY, num_shards=8, seed=0),
        workload_array,
    )
    assert sketch.rows_processed == len(workload_array)


def test_throughput_parallel_executor_wire_path(benchmark, workload_array):
    # Inline workers time the full serialize → ingest → reserialize wire
    # path without per-round pool startup noise.
    sketch = benchmark(
        _ingest_batched,
        lambda: ParallelSketchExecutor(CAPACITY, 8, seed=0, num_workers=0),
        workload_array,
    )
    assert sketch.rows_processed == len(workload_array)


def test_throughput_deterministic_space_saving(benchmark, workload):
    sketch = benchmark(_ingest, lambda: DeterministicSpaceSaving(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_misra_gries(benchmark, workload):
    sketch = benchmark(_ingest, lambda: MisraGriesSketch(CAPACITY), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_adaptive_sample_and_hold(benchmark, workload):
    sketch = benchmark(_ingest, lambda: AdaptiveSampleAndHold(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_bottom_k(benchmark, workload):
    sketch = benchmark(_ingest, lambda: BottomKSketch(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_bottom_k_batched(benchmark, workload_array):
    sketch = benchmark(
        _ingest_batched, lambda: BottomKSketch(CAPACITY, seed=0), workload_array
    )
    assert sketch.rows_processed == len(workload_array)


def test_throughput_countmin(benchmark, workload):
    sketch = benchmark(
        _ingest, lambda: CountMinSketch(width=1024, depth=4, seed=0), workload
    )
    assert sketch.rows_processed == len(workload)


def test_throughput_countmin_batched(benchmark, workload_array):
    sketch = benchmark(
        _ingest_batched,
        lambda: CountMinSketch(width=1024, depth=4, seed=0),
        workload_array,
    )
    assert sketch.rows_processed == len(workload_array)


if __name__ == "__main__":
    main()
