"""Update throughput benchmarks: scalar vs batched vs sharded vs parallel.

Two layers live in this file:

* **Ingestion comparison** (the repo's bench trajectory record) — run

      PYTHONPATH=src python benchmarks/bench_update_throughput.py

  to stream a 1M-row Zipf workload through Unbiased Space Saving five
  ways — the scalar ``update`` loop, the vectorized ``update_batch`` fast
  path, the hash-partitioned in-process ``ShardedSketch`` executor, the
  multiprocess ``ParallelSketchExecutor`` (serialized shard states
  fanned out to a worker pool), and the timestamped *windowed* path (a
  ``SlidingWindowSketch`` routing every batch to its pane) — and emit a
  JSON perf record (printed, and written to
  ``benchmarks/results/update_throughput.json``).  The record includes
  an equivalence section verifying that all modes preserve the exact
  stream total and agree on the heavy hitters (the windowed mode's
  horizon is sized to cover the whole stream so its totals compare).

* **pytest-benchmark micro-benchmarks** (§6.7: O(1) updates, O(m) space) —
  ``pytest benchmarks/bench_update_throughput.py`` times repeated rounds of
  a fixed workload through each sketch so per-row update costs can be
  compared, now including batched counterparts for the batch-capable
  sketches.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np
import pytest

from repro.api.build import build
from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.distributed.parallel import ParallelSketchExecutor
from repro.distributed.sharded import ShardedSketch
from repro.frequent.countmin import CountMinSketch
from repro.frequent.misra_gries import MisraGriesSketch
from repro.samplehold.adaptive import AdaptiveSampleAndHold
from repro.sampling.bottom_k import BottomKSketch
from repro.streams.frequency import scaled_weibull_counts, zipf_counts
from repro.streams.generators import exchangeable_stream, iterate_rows
from repro.windows import SlidingWindowSketch

ROWS = 50_000
CAPACITY = 256

#: Synthetic stream time for the windowed mode: the whole workload spans
#: this many seconds, panes are one tenth of it, and the horizon covers
#: all of it (so windowed totals equal the other modes' totals while the
#: pane ring still rotates through every pane).
STREAM_SECONDS = 600.0

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "update_throughput.json"


# ----------------------------------------------------------------------
# Ingestion comparison: scalar vs batched vs sharded
# ----------------------------------------------------------------------
def make_zipf_rows(
    rows: int = 1_000_000,
    num_items: int = 10_000,
    exponent: float = 1.1,
    seed: int = 0,
) -> np.ndarray:
    """An exchangeable 1M-row (by default) Zipf stream as a numpy array."""
    model = zipf_counts(num_items=num_items, exponent=exponent, total=rows)
    stream = exchangeable_stream(model, rng=np.random.default_rng(seed))
    return np.asarray(stream, dtype=np.int64)


def _timed(ingest: Callable[[], object]) -> "tuple[object, float]":
    start = time.perf_counter()
    sketch = ingest()
    elapsed = time.perf_counter() - start
    return sketch, elapsed


def run_ingestion_comparison(
    rows: int = 1_000_000,
    *,
    num_items: int = 10_000,
    exponent: float = 1.1,
    capacity: int = 256,
    batch_rows: int = 100_000,
    num_shards: int = 8,
    num_workers: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, object]:
    """Time the four ingestion modes on one workload and build a JSON record."""
    stream = make_zipf_rows(rows, num_items=num_items, exponent=exponent, seed=seed)
    # Count rounding in the Zipf model can nudge the realized row count.
    rows = int(len(stream))
    scalar_rows = [int(value) for value in stream]
    chunks = [
        stream[start : start + batch_rows] for start in range(0, len(stream), batch_rows)
    ]

    # All four modes are constructed through the repro.build facade; the
    # hot loops run on the unwrapped estimator so the record measures
    # ingestion, not session passthrough (which test_throughput_session_facade
    # times separately).
    def scalar() -> UnbiasedSpaceSaving:
        sketch = build("unbiased_space_saving", size=capacity, seed=seed).estimator
        update = sketch.update
        for row in scalar_rows:
            update(row)
        return sketch

    def batched() -> UnbiasedSpaceSaving:
        sketch = build("unbiased_space_saving", size=capacity, seed=seed).estimator
        for chunk in chunks:
            sketch.update_batch(chunk)
        return sketch

    def sharded() -> ShardedSketch:
        sketch = build(
            "unbiased_space_saving",
            size=capacity,
            backend="sharded",
            num_shards=num_shards,
            seed=seed,
        ).estimator
        for chunk in chunks:
            sketch.update_batch(chunk)
        return sketch

    def parallel() -> ParallelSketchExecutor:
        executor = build(
            "unbiased_space_saving",
            size=capacity,
            backend="parallel",
            num_shards=num_shards,
            seed=seed,
            num_workers=num_workers,
        ).estimator
        for chunk in chunks:
            executor.update_batch(chunk)
        return executor

    # Stream time for the windowed mode: row i arrives at t = i * dt.
    window_spec = f"sliding:{2 * STREAM_SECONDS:g}s/{STREAM_SECONDS / 10:g}s"
    timestamps = np.linspace(0.0, STREAM_SECONDS, num=rows, endpoint=False)
    ts_chunks = [
        timestamps[start : start + batch_rows]
        for start in range(0, len(timestamps), batch_rows)
    ]

    def windowed() -> SlidingWindowSketch:
        sketch = build(
            "unbiased_space_saving", size=capacity, window=window_spec, seed=seed
        ).estimator
        for chunk, ts_chunk in zip(chunks, ts_chunks):
            sketch.update_batch(chunk, timestamps=ts_chunk)
        return sketch

    sketches: Dict[str, object] = {}
    modes: Dict[str, Dict[str, float]] = {}
    for name, ingest in [
        ("scalar", scalar),
        ("batched", batched),
        ("sharded", sharded),
        ("parallel", parallel),
        ("windowed", windowed),
    ]:
        sketch, elapsed = _timed(ingest)
        sketches[name] = sketch
        modes[name] = {
            "seconds": round(elapsed, 4),
            "rows_per_sec": round(rows / elapsed, 1),
        }
    executor = sketches["parallel"]
    modes["parallel"]["num_workers"] = executor.num_workers
    executor.close()

    top_true = {item for item, _ in zipf_top_k(num_items, exponent, rows, 10)}
    equivalence = {
        "stream_total": rows,
        # Unbiased Space Saving preserves the total exactly in every mode.
        "totals": {
            name: round(total_of(sketch), 2) for name, sketch in sketches.items()
        },
        "rows_processed": {
            name: sketch.rows_processed for name, sketch in sketches.items()
        },
        "top10_recall": {
            name: round(
                len(top_true & {item for item, _ in sketch.top_k(10)}) / 10, 2
            )
            for name, sketch in sketches.items()
        },
    }
    record = {
        "benchmark": "update_throughput",
        "workload": {
            "distribution": f"zipf(s={exponent:g})",
            "rows": rows,
            "num_items": num_items,
            "order": "exchangeable",
            "seed": seed,
        },
        "config": {
            "sketch": "UnbiasedSpaceSaving",
            "capacity": capacity,
            "batch_rows": batch_rows,
            "num_shards": num_shards,
            "num_workers": modes["parallel"]["num_workers"],
            "window": window_spec,
        },
        "modes": modes,
        "speedup": {
            "batched_vs_scalar": round(
                modes["scalar"]["seconds"] / modes["batched"]["seconds"], 2
            ),
            "sharded_vs_scalar": round(
                modes["scalar"]["seconds"] / modes["sharded"]["seconds"], 2
            ),
            "parallel_vs_scalar": round(
                modes["scalar"]["seconds"] / modes["parallel"]["seconds"], 2
            ),
            "windowed_vs_scalar": round(
                modes["scalar"]["seconds"] / modes["windowed"]["seconds"], 2
            ),
        },
        "equivalence": equivalence,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    return record


def total_of(sketch) -> float:
    """Total estimate for either a single sketch or a sharded ensemble."""
    return float(sketch.total_estimate())


def zipf_top_k(num_items: int, exponent: float, total: int, k: int):
    """The true top-k of the Zipf model used by the comparison."""
    model = zipf_counts(num_items=num_items, exponent=exponent, total=total)
    ranked = sorted(model.counts.items(), key=lambda kv: -kv[1])
    return ranked[:k]


def main(argv: Optional[List[str]] = None) -> Dict[str, object]:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_000_000)
    parser.add_argument("--num-items", type=int, default=10_000)
    parser.add_argument("--exponent", type=float, default=1.1)
    parser.add_argument("--capacity", type=int, default=256)
    parser.add_argument("--batch-rows", type=int, default=100_000)
    parser.add_argument("--num-shards", type=int, default=8)
    parser.add_argument(
        "--num-workers",
        type=int,
        default=None,
        help="pool size for the parallel mode (default: min(shards, cpus); "
        "below 2 runs the wire path inline)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=RESULTS_PATH,
        help="where to write the JSON perf record",
    )
    args = parser.parse_args(argv)
    record = run_ingestion_comparison(
        args.rows,
        num_items=args.num_items,
        exponent=args.exponent,
        capacity=args.capacity,
        batch_rows=args.batch_rows,
        num_shards=args.num_shards,
        num_workers=args.num_workers,
        seed=args.seed,
    )
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    for mode, stats in record["modes"].items():
        print(
            f"{mode:>8}: {stats['seconds']:8.3f}s  "
            f"{stats['rows_per_sec']:>12,.0f} rows/s"
        )
    print(
        f"speedup: batched {record['speedup']['batched_vs_scalar']}x, "
        f"sharded {record['speedup']['sharded_vs_scalar']}x, "
        f"parallel {record['speedup']['parallel_vs_scalar']}x, "
        f"windowed {record['speedup']['windowed_vs_scalar']}x vs scalar "
        f"(record written to {args.output})"
    )
    return record


# ----------------------------------------------------------------------
# pytest-benchmark micro-benchmarks
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload():
    model = scaled_weibull_counts(num_items=2_000, shape=0.3, target_total=ROWS)
    return list(iterate_rows(exchangeable_stream(model, rng=np.random.default_rng(0))))


@pytest.fixture(scope="module")
def workload_array(workload):
    return np.asarray(workload, dtype=np.int64)


def _ingest(sketch_factory, rows):
    sketch = sketch_factory()
    update = sketch.update
    for row in rows:
        update(row)
    return sketch


def _ingest_batched(sketch_factory, rows_array):
    sketch = sketch_factory()
    sketch.update_batch(rows_array)
    return sketch


def test_throughput_unbiased_space_saving(benchmark, workload):
    sketch = benchmark(_ingest, lambda: UnbiasedSpaceSaving(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_unbiased_space_saving_batched(benchmark, workload_array):
    sketch = benchmark(
        _ingest_batched, lambda: UnbiasedSpaceSaving(CAPACITY, seed=0), workload_array
    )
    assert sketch.rows_processed == len(workload_array)


def test_throughput_session_facade(benchmark, workload):
    # Scalar updates through the StreamSession facade: quantifies the
    # per-row passthrough cost of the normalized API vs the raw sketch.
    sketch = benchmark(
        _ingest,
        lambda: build("unbiased_space_saving", size=CAPACITY, seed=0),
        workload,
    )
    assert sketch.rows_processed == len(workload)


def test_throughput_windowed_batched(benchmark, workload_array):
    # Timestamped windowed ingestion: the batch is grouped by pane and
    # each slice rides the pane's own vectorized fast path.
    timestamps = np.linspace(0.0, 60.0, num=len(workload_array), endpoint=False)

    def ingest():
        sketch = SlidingWindowSketch(CAPACITY, horizon="120s", pane="6s", seed=0)
        sketch.update_batch(workload_array, timestamps=timestamps)
        return sketch

    sketch = benchmark(ingest)
    assert sketch.rows_processed == len(workload_array)


def test_throughput_sharded_batched(benchmark, workload_array):
    sketch = benchmark(
        _ingest_batched,
        lambda: ShardedSketch(CAPACITY, num_shards=8, seed=0),
        workload_array,
    )
    assert sketch.rows_processed == len(workload_array)


def test_throughput_parallel_executor_wire_path(benchmark, workload_array):
    # Inline workers time the full serialize → ingest → reserialize wire
    # path without per-round pool startup noise.
    sketch = benchmark(
        _ingest_batched,
        lambda: ParallelSketchExecutor(CAPACITY, 8, seed=0, num_workers=0),
        workload_array,
    )
    assert sketch.rows_processed == len(workload_array)


def test_throughput_deterministic_space_saving(benchmark, workload):
    sketch = benchmark(_ingest, lambda: DeterministicSpaceSaving(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_misra_gries(benchmark, workload):
    sketch = benchmark(_ingest, lambda: MisraGriesSketch(CAPACITY), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_adaptive_sample_and_hold(benchmark, workload):
    sketch = benchmark(_ingest, lambda: AdaptiveSampleAndHold(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_bottom_k(benchmark, workload):
    sketch = benchmark(_ingest, lambda: BottomKSketch(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_bottom_k_batched(benchmark, workload_array):
    sketch = benchmark(
        _ingest_batched, lambda: BottomKSketch(CAPACITY, seed=0), workload_array
    )
    assert sketch.rows_processed == len(workload_array)


def test_throughput_countmin(benchmark, workload):
    sketch = benchmark(
        _ingest, lambda: CountMinSketch(width=1024, depth=4, seed=0), workload
    )
    assert sketch.rows_processed == len(workload)


def test_throughput_countmin_batched(benchmark, workload_array):
    sketch = benchmark(
        _ingest_batched,
        lambda: CountMinSketch(width=1024, depth=4, seed=0),
        workload_array,
    )
    assert sketch.rows_processed == len(workload_array)


if __name__ == "__main__":
    main()
