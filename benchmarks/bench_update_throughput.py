"""Update throughput micro-benchmarks (§6.7: O(1) updates, O(m) space).

Unlike the figure benchmarks these are true micro-benchmarks: pytest-benchmark
times repeated rounds of streaming a fixed workload through each sketch so
their per-row update costs can be compared.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.frequent.countmin import CountMinSketch
from repro.frequent.misra_gries import MisraGriesSketch
from repro.samplehold.adaptive import AdaptiveSampleAndHold
from repro.sampling.bottom_k import BottomKSketch
from repro.streams.frequency import scaled_weibull_counts
from repro.streams.generators import exchangeable_stream, iterate_rows

ROWS = 50_000
CAPACITY = 256


@pytest.fixture(scope="module")
def workload():
    model = scaled_weibull_counts(num_items=2_000, shape=0.3, target_total=ROWS)
    return list(iterate_rows(exchangeable_stream(model, rng=np.random.default_rng(0))))


def _ingest(sketch_factory, rows):
    sketch = sketch_factory()
    update = sketch.update
    for row in rows:
        update(row)
    return sketch


def test_throughput_unbiased_space_saving(benchmark, workload):
    sketch = benchmark(_ingest, lambda: UnbiasedSpaceSaving(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_deterministic_space_saving(benchmark, workload):
    sketch = benchmark(_ingest, lambda: DeterministicSpaceSaving(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_misra_gries(benchmark, workload):
    sketch = benchmark(_ingest, lambda: MisraGriesSketch(CAPACITY), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_adaptive_sample_and_hold(benchmark, workload):
    sketch = benchmark(_ingest, lambda: AdaptiveSampleAndHold(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_bottom_k(benchmark, workload):
    sketch = benchmark(_ingest, lambda: BottomKSketch(CAPACITY, seed=0), workload)
    assert sketch.rows_processed == len(workload)


def test_throughput_countmin(benchmark, workload):
    sketch = benchmark(
        _ingest, lambda: CountMinSketch(width=1024, depth=4, seed=0), workload
    )
    assert sketch.rows_processed == len(workload)
