"""Figure 4: as figure 3 with 100 bins, adding the bottom-k uniform baseline."""

from __future__ import annotations

from repro.evaluation.experiments import get_experiment
from repro.evaluation.reporting import print_experiment


def test_fig4_relative_error_100_bins_with_bottom_k(benchmark, run_once):
    experiment = get_experiment(
        "fig4_relative_error_100",
        subset_size=100,
        num_subsets=25,
        num_trials=4,
        target_total=100_000,
        seed=0,
    )
    result = run_once(benchmark, experiment)
    summary = result.summary()
    print_experiment(
        "Figure 4 — relative error vs true count (m=100, with bottom-k)",
        summary=summary,
        rows=result.rows(),
        max_rows=60,
    )
    # Uniform item sampling (bottom-k) is far worse than the sketch on the
    # skewed distributions — the paper reports orders of magnitude.
    for name in ("weibull_0.32", "weibull_0.15"):
        assert (
            summary[f"{name}/bottom_k"]
            > 2.0 * summary[f"{name}/unbiased_space_saving"]
        )
