"""Unbiased Space Saving: disaggregated subset sum and frequent item estimation.

A from-scratch reproduction of Daniel Ting, *Data Sketches for Disaggregated
Subset Sum and Frequent Item Estimation* (SIGMOD 2018).  The package is laid
out by subsystem:

* :mod:`repro.core` — Unbiased Space Saving, Deterministic Space Saving,
  merges, variance estimation, time decay and the other §5 extensions.
* :mod:`repro.frequent` — frequent-item baselines (Misra-Gries, Lossy
  Counting, Sticky Sampling, CountMin, Count Sketch, hierarchical HH).
* :mod:`repro.sampling` — sampling substrates (PPS, priority, bottom-k,
  reservoir, VarOpt, Horvitz-Thompson).
* :mod:`repro.samplehold` — the Sample-and-Hold family.
* :mod:`repro.streams` — synthetic workloads, pathological orderings and the
  Criteo-like ad impression generator.
* :mod:`repro.query` — subset sums, marginals, filters, SQL-ish engine.
* :mod:`repro.distributed` — partitioning, the sharded executor and
  simulated map-reduce merging.
* :mod:`repro.windows` — time-windowed streaming: tumbling/sliding pane
  rings and continuous forward decay behind one windowed-session surface.
* :mod:`repro.serve` — the concurrent multi-tenant serving layer: one
  asyncio process hosting many named sessions behind bounded ingest
  queues, with TTL/LRU eviction, background checkpointing and a
  JSON-lines TCP protocol.
* :mod:`repro.cluster` — multi-node serving: a consistent-hash router
  over many sketch servers, key-sharded scatter-gather sessions and
  checkpoint-based replica fail-over behind the same wire protocol.
* :mod:`repro.connectors` — streaming ingestion: partitioned log,
  file-tailing and socket-firehose sources behind one offset-addressed
  protocol, plus the exactly-once mini-batch :class:`PipelineDriver`
  whose checkpoints record per-partition offsets next to sketch state.
* :mod:`repro.evaluation` — the experiment harness reproducing every figure.

Every sketch ingests rows one at a time via ``update(item, weight)``, in
bulk via the vectorized ``update_batch(items, weights)`` fast path, or
from any iterable via ``extend(rows)``; :mod:`repro.api` adds the unified
estimator protocol layer and the :func:`repro.build` facade, whose
:class:`~repro.api.StreamSession` routes the same three calls to inline,
sharded or multiprocess execution transparently.

Quickstart
----------
>>> import repro
>>> session = repro.build("unbiased_space_saving", size=100, seed=42)
>>> _ = session.update_batch(["ad1", "ad2", "ad1", "ad3"])
>>> session.subset_sum(lambda ad: ad in {"ad1", "ad3"}).estimate
3.0
"""

from repro.api import (
    QueryResult,
    StreamSession,
    available_specs,
    build,
    capabilities,
    supports,
)
from repro.cluster import ClusterRouter, HashRing, Member
from repro.connectors import (
    FileTailSource,
    LogSource,
    PipelineDriver,
    SocketFirehoseSource,
)
from repro.core import (
    AdaptiveUnbiasedSpaceSaving,
    DeterministicSpaceSaving,
    EstimateWithError,
    ForwardDecaySketch,
    GeneralizedSpaceSaving,
    SignedUnbiasedSpaceSaving,
    UnbiasedSpaceSaving,
    collapse_batch,
    merge_many_unbiased,
    merge_unbiased,
)
from repro.distributed import ParallelSketchExecutor, ShardedSketch
from repro.errors import CapabilityError
from repro.io import load_bytes, load_checkpoint, load_dict, save_checkpoint
from repro.query import SketchQueryEngine, SubsetSumEstimator
from repro.serve import (
    ServeClient,
    SketchRegistry,
    SketchServer,
    TCPServeClient,
)
from repro.version import __version__
from repro.windows import (
    DecayedWindowSketch,
    SlidingWindowSketch,
    TumblingWindowSketch,
    parse_window_policy,
)

__all__ = [
    "AdaptiveUnbiasedSpaceSaving",
    "CapabilityError",
    "ClusterRouter",
    "DecayedWindowSketch",
    "DeterministicSpaceSaving",
    "EstimateWithError",
    "FileTailSource",
    "ForwardDecaySketch",
    "GeneralizedSpaceSaving",
    "HashRing",
    "LogSource",
    "Member",
    "ParallelSketchExecutor",
    "PipelineDriver",
    "QueryResult",
    "ShardedSketch",
    "ServeClient",
    "SignedUnbiasedSpaceSaving",
    "SketchRegistry",
    "SketchServer",
    "SlidingWindowSketch",
    "SocketFirehoseSource",
    "StreamSession",
    "TCPServeClient",
    "TumblingWindowSketch",
    "UnbiasedSpaceSaving",
    "available_specs",
    "build",
    "capabilities",
    "collapse_batch",
    "load_bytes",
    "load_checkpoint",
    "load_dict",
    "merge_many_unbiased",
    "merge_unbiased",
    "parse_window_policy",
    "save_checkpoint",
    "SketchQueryEngine",
    "SubsetSumEstimator",
    "supports",
    "__version__",
]
