"""Deprecation helpers for the one-release API migration window.

The :mod:`repro.api` redesign (unified estimator protocol + ``repro.build``
facade) supersedes a handful of per-class entry points.  The old names keep
working for one release as thin shims that emit a :class:`DeprecationWarning`
through :func:`warn_deprecated`; the CI ``deprecations`` job runs the
new-API test subset with ``-W error::DeprecationWarning`` to guarantee the
new surface never routes through a shim.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_deprecated"]


def warn_deprecated(old: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit the standard deprecation warning for a shimmed API.

    Parameters
    ----------
    old:
        The deprecated call, e.g. ``"CountSketch.estimates_for()"``.
    replacement:
        The new call sites should use, e.g. ``"estimates(candidates=...)"``.
    stacklevel:
        Passed to :func:`warnings.warn`; the default points at the caller
        of the deprecated method.
    """
    warnings.warn(
        f"{old} is deprecated and will be removed in a future release; "
        f"use {replacement} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
