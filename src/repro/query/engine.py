"""A small SQL-ish query façade over sketches.

The paper frames the problem as answering

.. code-block:: sql

    SELECT sum(metric), dimensions
    FROM table
    WHERE filters
    GROUP BY dimensions

from a sketch instead of the raw table.  :class:`SketchQueryEngine` gives
that shape a direct API: ``select_sum(where=..., group_by=...)`` returns
either a single estimate (with uncertainty when available) or a per-group
breakdown.  The engine is deliberately thin — all statistical work happens
in the sketch — but it is the integration point the examples and the
marginal benchmarks use, and pairing it with :class:`ExactQueryEngine`
makes end-to-end accuracy tests read like the SQL they emulate.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro._typing import Item, ItemPredicate
from repro.core.variance import EstimateWithError
from repro.query.subset_sum import ExactAggregator, SubsetSumEstimator

__all__ = ["QueryResult", "SketchQueryEngine", "ExactQueryEngine"]

GroupKey = Callable[[Item], Item]


class QueryResult:
    """Result of a ``select_sum`` call.

    Holds either a scalar estimate (no ``group_by``) or per-group estimates,
    always with an :class:`EstimateWithError` when the source provides
    variance information.
    """

    def __init__(
        self,
        scalar: Optional[EstimateWithError] = None,
        groups: Optional[Dict[Item, float]] = None,
    ) -> None:
        self._scalar = scalar
        self._groups = groups

    @property
    def is_grouped(self) -> bool:
        """Whether the result carries per-group totals."""
        return self._groups is not None

    @property
    def value(self) -> float:
        """The scalar estimate (raises for grouped results)."""
        if self._scalar is None:
            raise ValueError("grouped results have no scalar value; use .groups")
        return self._scalar.estimate

    @property
    def with_error(self) -> EstimateWithError:
        """The scalar estimate with its variance (raises for grouped results)."""
        if self._scalar is None:
            raise ValueError("grouped results have no scalar value; use .groups")
        return self._scalar

    @property
    def groups(self) -> Dict[Item, float]:
        """Per-group estimates (raises for scalar results)."""
        if self._groups is None:
            raise ValueError("scalar results have no groups; use .value")
        return dict(self._groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._groups is not None:
            return f"QueryResult(groups={len(self._groups)})"
        return f"QueryResult(value={self._scalar.estimate:.6g})"


class SketchQueryEngine:
    """SELECT-sum/WHERE/GROUP-BY interface over any sketch, sample or session.

    Accepts anything :class:`~repro.query.subset_sum.SubsetSumEstimator`
    accepts: a mapping, an estimator with the ``point`` capability, a
    :class:`repro.api.StreamSession` (whichever backend it routes to), or
    an enumeration-limited sketch paired with ``candidates``.
    """

    def __init__(self, source, *, candidates=None) -> None:
        self._estimator = SubsetSumEstimator(source, candidates=candidates)

    def select_sum(
        self,
        *,
        where: Optional[ItemPredicate] = None,
        group_by: Optional[GroupKey] = None,
    ) -> QueryResult:
        """Run one aggregation query.

        Parameters
        ----------
        where:
            Optional filter predicate over item keys; ``None`` keeps everything.
        group_by:
            Optional key function; when given, the result contains one total
            per group value.
        """
        predicate = where if where is not None else (lambda item: True)
        if group_by is None:
            return QueryResult(scalar=self._estimator.subset_sum_with_error(predicate))
        return QueryResult(
            groups=self._estimator.filtered_group_by(predicate, group_by)
        )

    def total(self) -> float:
        """Grand total estimate."""
        return self._estimator.total()


class ExactQueryEngine:
    """The same query interface evaluated exactly from true counts."""

    def __init__(self, counts: Union[Dict[Item, float], ExactAggregator]) -> None:
        if isinstance(counts, ExactAggregator):
            self._aggregator = counts
        else:
            self._aggregator = ExactAggregator(counts)

    def select_sum(
        self,
        *,
        where: Optional[ItemPredicate] = None,
        group_by: Optional[GroupKey] = None,
    ) -> QueryResult:
        """Run one aggregation query against the exact counts."""
        predicate = where if where is not None else (lambda item: True)
        if group_by is None:
            value = self._aggregator.subset_sum(predicate)
            return QueryResult(scalar=EstimateWithError(estimate=value, variance=0.0))
        grouped: Dict[Item, float] = {}
        for item, count in self._aggregator.counts().items():
            if not predicate(item):
                continue
            key = group_by(item)
            grouped[key] = grouped.get(key, 0.0) + count
        return QueryResult(groups=grouped)

    def total(self) -> float:
        """Exact grand total."""
        return self._aggregator.total()
