"""Marginal (GROUP BY) estimation over tuple-keyed sketches.

The figure 6 experiment estimates 1-way and 2-way marginals of the ad
impression data: the impression count for every value of one feature, and
for every value pair of two features.  Because the sketch's unit of analysis
is the full feature tuple, a marginal is just a group-by over the retained
estimates — no re-sketching is needed, which is exactly the flexibility the
disaggregated subset sum formulation buys.

Functions here compute estimated marginals from any estimator source and
compare them against exact marginals, producing the per-cell relative errors
the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro._typing import Item
from repro.errors import InvalidParameterError
from repro.query.subset_sum import SubsetSumEstimator

__all__ = [
    "MarginalCell",
    "one_way_marginal",
    "two_way_marginal",
    "marginal_cells",
]


@dataclass(frozen=True)
class MarginalCell:
    """One cell of an estimated marginal with its exact value.

    Attributes
    ----------
    key:
        The marginal cell key (a feature value, or a tuple of values).
    estimate:
        The sketch/sample estimate of the cell's total.
    truth:
        The exact total (0 when the cell was never observed).
    """

    key: Item
    estimate: float
    truth: float

    @property
    def error(self) -> float:
        """Absolute error of the estimate."""
        return abs(self.estimate - self.truth)

    @property
    def relative_error(self) -> Optional[float]:
        """Relative error, or ``None`` when the truth is zero."""
        if self.truth == 0:
            return None
        return self.error / self.truth

    @property
    def squared_error(self) -> float:
        """Squared error, the quantity averaged into MSE."""
        return (self.estimate - self.truth) ** 2


def one_way_marginal(source, feature: int) -> Dict[Item, float]:
    """Estimated totals grouped by one component of tuple-valued items."""
    if feature < 0:
        raise InvalidParameterError("feature index must be non-negative")
    estimator = SubsetSumEstimator(source)
    return estimator.group_by(lambda item: item[feature])


def two_way_marginal(source, first: int, second: int) -> Dict[Tuple[Item, Item], float]:
    """Estimated totals grouped by a pair of components of tuple-valued items."""
    if first < 0 or second < 0:
        raise InvalidParameterError("feature indices must be non-negative")
    if first == second:
        raise InvalidParameterError("the two features of a 2-way marginal must differ")
    estimator = SubsetSumEstimator(source)
    return estimator.group_by(lambda item: (item[first], item[second]))


def marginal_cells(
    estimated: Mapping[Item, float],
    exact: Mapping[Item, float],
    *,
    min_truth: float = 0.0,
) -> List[MarginalCell]:
    """Join estimated and exact marginals into per-cell records.

    Cells present in the exact marginal but absent from the estimate are
    included with estimate 0 (the sketch simply retained none of their
    items); cells estimated but absent from the truth get truth 0.  Cells
    whose exact total is below ``min_truth`` are dropped, mirroring how the
    paper's figure 6 reports error only for marginals above a size floor.
    """
    keys = set(exact) | set(estimated)
    cells = []
    for key in keys:
        truth = float(exact.get(key, 0.0))
        if truth < min_truth:
            continue
        cells.append(
            MarginalCell(key=key, estimate=float(estimated.get(key, 0.0)), truth=truth)
        )
    return cells


def relative_mse_by_size(
    cells: Sequence[MarginalCell], bucket_edges: Sequence[float]
) -> List[Tuple[float, float, int]]:
    """Average relative MSE of marginal cells bucketed by their true size.

    Returns one ``(bucket_upper_edge, mean_relative_mse, num_cells)`` triple
    per bucket — the series plotted in figure 6 (error versus marginal
    size).  Cells with zero truth are skipped because relative error is
    undefined for them.
    """
    if not bucket_edges:
        raise InvalidParameterError("bucket_edges must not be empty")
    edges = sorted(bucket_edges)
    sums = [0.0] * len(edges)
    counts = [0] * len(edges)
    for cell in cells:
        if cell.truth <= 0:
            continue
        relative_mse = cell.squared_error / (cell.truth**2)
        for index, edge in enumerate(edges):
            if cell.truth <= edge:
                sums[index] += relative_mse
                counts[index] += 1
                break
    return [
        (edge, sums[index] / counts[index] if counts[index] else 0.0, counts[index])
        for index, edge in enumerate(edges)
    ]
