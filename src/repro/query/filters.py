"""Composable item filters for subset sum queries.

The disaggregated subset sum problem allows *arbitrary* filter conditions at
or above the unit of analysis (§3).  A filter here is just a predicate over
item keys, but building predicates by hand for composite keys (feature
tuples, hierarchical paths) is noisy, so this module provides a tiny
combinator library:

>>> from repro.query.filters import field_equals, field_in
>>> keep = field_equals(0, 3) & ~field_in(2, {7, 9})
>>> keep((3, 1, 5))
True
>>> keep((3, 1, 7))
False
"""

from __future__ import annotations

from typing import Callable, Collection, Iterable

from repro._typing import Item, ItemPredicate

__all__ = [
    "Filter",
    "where",
    "everything",
    "in_set",
    "field_equals",
    "field_in",
    "field_predicate",
]


class Filter:
    """A predicate over items supporting ``&``, ``|`` and ``~`` composition."""

    def __init__(self, predicate: ItemPredicate, description: str = "filter") -> None:
        self._predicate = predicate
        self._description = description

    def __call__(self, item: Item) -> bool:
        return bool(self._predicate(item))

    def __and__(self, other: "Filter") -> "Filter":
        return Filter(
            lambda item: self(item) and other(item),
            f"({self._description} AND {other._description})",
        )

    def __or__(self, other: "Filter") -> "Filter":
        return Filter(
            lambda item: self(item) or other(item),
            f"({self._description} OR {other._description})",
        )

    def __invert__(self) -> "Filter":
        return Filter(lambda item: not self(item), f"(NOT {self._description})")

    @property
    def description(self) -> str:
        """Human-readable description used in reports."""
        return self._description

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Filter({self._description})"


def where(predicate: ItemPredicate, description: str = "custom") -> Filter:
    """Wrap an arbitrary predicate function as a :class:`Filter`."""
    return Filter(predicate, description)


def everything() -> Filter:
    """The always-true filter (grand totals)."""
    return Filter(lambda item: True, "TRUE")


def in_set(items: Iterable[Item], description: str = "in-set") -> Filter:
    """Membership filter over an explicit collection of items."""
    membership = set(items)
    return Filter(lambda item: item in membership, f"{description}[{len(membership)}]")


def field_equals(index: int, value) -> Filter:
    """For tuple-keyed items: ``item[index] == value``."""
    return Filter(lambda item: item[index] == value, f"field[{index}] == {value!r}")


def field_in(index: int, values: Collection) -> Filter:
    """For tuple-keyed items: ``item[index] in values``."""
    allowed = set(values)
    return Filter(lambda item: item[index] in allowed, f"field[{index}] in {sorted(map(repr, allowed))[:4]}")


def field_predicate(index: int, predicate: Callable[[object], bool], description: str = "pred") -> Filter:
    """For tuple-keyed items: apply ``predicate`` to one component."""
    return Filter(lambda item: predicate(item[index]), f"field[{index}] {description}")
