"""Query layer: subset sums, marginals, filters and the SQL-ish engine."""

from repro.query.engine import ExactQueryEngine, QueryResult, SketchQueryEngine
from repro.query.filters import (
    Filter,
    everything,
    field_equals,
    field_in,
    field_predicate,
    in_set,
    where,
)
from repro.query.marginals import (
    MarginalCell,
    marginal_cells,
    one_way_marginal,
    relative_mse_by_size,
    two_way_marginal,
)
from repro.query.subset_sum import ExactAggregator, SubsetSumEstimator

__all__ = [
    "ExactQueryEngine",
    "QueryResult",
    "SketchQueryEngine",
    "Filter",
    "everything",
    "field_equals",
    "field_in",
    "field_predicate",
    "in_set",
    "where",
    "MarginalCell",
    "marginal_cells",
    "one_way_marginal",
    "relative_mse_by_size",
    "two_way_marginal",
    "ExactAggregator",
    "SubsetSumEstimator",
]
