"""Design-agnostic subset sum estimation.

The evaluation harness compares several very different estimators — the
Unbiased Space Saving sketch, priority samples, bottom-k samples, sample-and-
hold sketches, even the biased Deterministic Space Saving — on the same
queries.  :class:`SubsetSumEstimator` adapts anything that exposes
``estimates()`` (an ``item -> estimate`` mapping) to a uniform query
interface, using the richer ``subset_sum_with_error`` when the underlying
object provides one, and :class:`ExactAggregator` provides the ground truth
from raw counts for error measurement.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro._typing import Item, ItemPredicate
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError

__all__ = ["SubsetSumEstimator", "ExactAggregator"]


class SubsetSumEstimator:
    """Uniform subset-sum interface over any sketch or sample.

    Parameters
    ----------
    source:
        Any object with an ``estimates() -> Mapping[item, float]`` method
        (all sketches and samples in this package qualify), or a plain
        mapping of estimates.

    Example
    -------
    >>> estimator = SubsetSumEstimator({"a": 3.0, "b": 2.0})
    >>> estimator.subset_sum(lambda item: item == "a")
    3.0
    """

    def __init__(self, source) -> None:
        self._source = source

    def _estimates(self) -> Mapping[Item, float]:
        if isinstance(self._source, Mapping):
            return self._source
        estimates = getattr(self._source, "estimates", None)
        if estimates is None:
            raise InvalidParameterError(
                "source must be a mapping or expose an estimates() method"
            )
        return estimates()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Point estimate of the subset sum under ``predicate``."""
        return float(
            sum(value for item, value in self._estimates().items() if predicate(item))
        )

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum with uncertainty when the source can provide it.

        Falls back to a zero-variance :class:`EstimateWithError` for sources
        without their own error model (e.g. exact mappings).
        """
        with_error = getattr(self._source, "subset_sum_with_error", None)
        if callable(with_error):
            return with_error(predicate)
        return EstimateWithError(estimate=self.subset_sum(predicate), variance=0.0)

    def total(self) -> float:
        """Estimate of the grand total."""
        return self.subset_sum(lambda item: True)

    def group_by(self, key: Callable[[Item], Item]) -> Dict[Item, float]:
        """Group the retained estimates by an arbitrary key function."""
        grouped: Dict[Item, float] = {}
        for item, value in self._estimates().items():
            group = key(item)
            grouped[group] = grouped.get(group, 0.0) + value
        return grouped

    def filtered_group_by(
        self, predicate: ItemPredicate, key: Callable[[Item], Item]
    ) -> Dict[Item, float]:
        """Group-by restricted to items matching ``predicate``."""
        grouped: Dict[Item, float] = {}
        for item, value in self._estimates().items():
            if not predicate(item):
                continue
            group = key(item)
            grouped[group] = grouped.get(group, 0.0) + value
        return grouped


class ExactAggregator:
    """Exact answers computed from true per-item counts (the ground truth).

    Parameters
    ----------
    counts:
        The true ``item -> count`` mapping (from a
        :class:`~repro.streams.frequency.FrequencyModel`, an
        :class:`~repro.streams.adclick.AdClickDataset`, or any exact
        aggregation of the raw rows).
    """

    def __init__(self, counts: Mapping[Item, float]) -> None:
        self._counts = dict(counts)

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Exact subset sum."""
        return float(
            sum(value for item, value in self._counts.items() if predicate(item))
        )

    def total(self) -> float:
        """Exact grand total."""
        return float(sum(self._counts.values()))

    def group_by(self, key: Callable[[Item], Item]) -> Dict[Item, float]:
        """Exact group-by totals."""
        grouped: Dict[Item, float] = {}
        for item, value in self._counts.items():
            group = key(item)
            grouped[group] = grouped.get(group, 0.0) + value
        return grouped

    def count(self, item: Item) -> float:
        """Exact count of a single item."""
        return float(self._counts.get(item, 0.0))

    def counts(self) -> Dict[Item, float]:
        """A copy of the exact counts."""
        return dict(self._counts)

    def relative_error(
        self, predicate: ItemPredicate, estimate: float
    ) -> Optional[float]:
        """Relative error of an estimate against the exact subset sum.

        Returns ``None`` when the exact subset sum is zero (relative error is
        undefined there).
        """
        truth = self.subset_sum(predicate)
        if truth == 0:
            return None
        return abs(estimate - truth) / truth
