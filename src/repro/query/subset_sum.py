"""Design-agnostic subset sum estimation.

The evaluation harness compares several very different estimators — the
Unbiased Space Saving sketch, priority samples, bottom-k samples, sample-and-
hold sketches, even the biased Deterministic Space Saving — on the same
queries.  :class:`SubsetSumEstimator` adapts anything with the
:class:`repro.api.PointEstimator` capability (an ``estimates()`` mapping),
a :class:`repro.api.StreamSession`, or a plain mapping to a uniform query
interface, using the richer ``subset_sum_with_error`` when the underlying
object provides one.  Enumeration-limited sketches (CountMin / Count Sketch
without tracking) are supported through an explicit ``candidates``
collection; anything else raises :class:`~repro.errors.CapabilityError`.
:class:`ExactAggregator` provides the ground truth from raw counts for
error measurement.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional

from repro._typing import Item, ItemPredicate
from repro.core.variance import EstimateWithError
from repro.errors import CapabilityError

__all__ = ["SubsetSumEstimator", "ExactAggregator"]


class SubsetSumEstimator:
    """Uniform subset-sum interface over any sketch, sample or session.

    Parameters
    ----------
    source:
        Any object with an ``estimates() -> Mapping[item, float]`` method
        (all sketches, samples and stream sessions in this package
        qualify), or a plain mapping of estimates, or — together with
        ``candidates`` — any point estimator (``estimate(item)`` or the
        legacy ``estimates_for(items)``).
    candidates:
        Optional explicit item collection for sources that cannot
        enumerate what they have seen (e.g. a CountMin sketch built
        without tracking); queries evaluate over exactly these items.

    Raises
    ------
    CapabilityError
        From any query when the source can neither enumerate items nor
        answer point queries over the given candidates.

    Example
    -------
    >>> estimator = SubsetSumEstimator({"a": 3.0, "b": 2.0})
    >>> estimator.subset_sum(lambda item: item == "a")
    3.0
    """

    def __init__(self, source, *, candidates: Optional[Iterable[Item]] = None) -> None:
        self._source = source
        self._candidates = None if candidates is None else list(candidates)

    def _estimates(self) -> Mapping[Item, float]:
        source = self._source
        if isinstance(source, Mapping):
            return source
        if self._candidates is not None:
            point = getattr(source, "estimate", None)
            if callable(point):
                return {item: float(point(item)) for item in self._candidates}
            # Sources exposing only the estimates_for(items) shape.
            for_items = getattr(source, "estimates_for", None)
            if callable(for_items):
                return for_items(self._candidates)
        estimates = getattr(source, "estimates", None)
        if callable(estimates):
            try:
                return estimates()
            except CapabilityError as error:
                raise CapabilityError(
                    f"{type(source).__name__} cannot enumerate its items "
                    f"({error}); pass candidates=... to query over an "
                    "explicit item set"
                ) from error
        raise CapabilityError(
            "source must be a mapping, expose estimates(), or expose "
            "estimate()/estimates_for() together with candidates=..."
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Point estimate of the subset sum under ``predicate``."""
        return float(
            sum(value for item, value in self._estimates().items() if predicate(item))
        )

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum with uncertainty when the source can provide it.

        Falls back to a zero-variance :class:`EstimateWithError` for sources
        without their own error model (exact mappings, candidate-restricted
        views, sessions over estimators lacking the ``subset_sum``
        capability).
        """
        if self._candidates is None:
            with_error = getattr(self._source, "subset_sum_with_error", None)
            if callable(with_error):
                try:
                    return with_error(predicate)
                except CapabilityError:
                    pass
        return EstimateWithError(estimate=self.subset_sum(predicate), variance=0.0)

    def total(self) -> float:
        """Estimate of the grand total."""
        return self.subset_sum(lambda item: True)

    def group_by(self, key: Callable[[Item], Item]) -> Dict[Item, float]:
        """Group the retained estimates by an arbitrary key function."""
        grouped: Dict[Item, float] = {}
        for item, value in self._estimates().items():
            group = key(item)
            grouped[group] = grouped.get(group, 0.0) + value
        return grouped

    def filtered_group_by(
        self, predicate: ItemPredicate, key: Callable[[Item], Item]
    ) -> Dict[Item, float]:
        """Group-by restricted to items matching ``predicate``."""
        grouped: Dict[Item, float] = {}
        for item, value in self._estimates().items():
            if not predicate(item):
                continue
            group = key(item)
            grouped[group] = grouped.get(group, 0.0) + value
        return grouped


class ExactAggregator:
    """Exact answers computed from true per-item counts (the ground truth).

    Parameters
    ----------
    counts:
        The true ``item -> count`` mapping (from a
        :class:`~repro.streams.frequency.FrequencyModel`, an
        :class:`~repro.streams.adclick.AdClickDataset`, or any exact
        aggregation of the raw rows).
    """

    def __init__(self, counts: Mapping[Item, float]) -> None:
        self._counts = dict(counts)

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Exact subset sum."""
        return float(
            sum(value for item, value in self._counts.items() if predicate(item))
        )

    def total(self) -> float:
        """Exact grand total."""
        return float(sum(self._counts.values()))

    def group_by(self, key: Callable[[Item], Item]) -> Dict[Item, float]:
        """Exact group-by totals."""
        grouped: Dict[Item, float] = {}
        for item, value in self._counts.items():
            group = key(item)
            grouped[group] = grouped.get(group, 0.0) + value
        return grouped

    def count(self, item: Item) -> float:
        """Exact count of a single item."""
        return float(self._counts.get(item, 0.0))

    def counts(self) -> Dict[Item, float]:
        """A copy of the exact counts."""
        return dict(self._counts)

    def relative_error(
        self, predicate: ItemPredicate, estimate: float
    ) -> Optional[float]:
        """Relative error of an estimate against the exact subset sum.

        Returns ``None`` when the exact subset sum is zero (relative error is
        undefined there).
        """
        truth = self.subset_sum(predicate)
        if truth == 0:
            return None
        return abs(estimate - truth) / truth
