"""The cluster router: one JSON-lines front over many sketch servers.

A :class:`ClusterRouter` makes N :class:`~repro.serve.server.SketchServer`
TCP endpoints look like one.  It speaks the same wire protocol on both
sides — an unmodified :class:`~repro.serve.client.TCPServeClient` dials
the router exactly as it would a single server — and places sessions on
members with the consistent-hash ring of
:mod:`repro.cluster.membership`:

* an ordinary ``create`` lands the session on the member owning
  ``(tenant, name)`` and every later op for that key forwards there;
* ``create`` with ``shards: k`` key-shards the session — ``k`` internal
  sessions named ``{name}@shard{i}``, each ring-placed by its own key —
  and the router scatters ingest by label hash and gathers reads with
  the paper's disjoint-union math (summed estimates *and* variances for
  subset sums, the unbiased merge for frequent-item reads; see
  :mod:`repro.cluster.shard_session`);
* when a member stops answering, :meth:`fail_over` marks it down,
  re-maps its hash range to ring successors, and rehydrates its sessions
  on the survivors from the shared checkpoint directory — each member
  checkpoints under ``{shared_root}/{member_id}/``, and the serialized
  frames travel to their new homes through the wire ``adopt`` op.  A
  background health loop (``health_interval``) triggers the same path
  after ``health_failures`` consecutive failed pings; a forwarding
  failure triggers it inline with one bounded retry on the new owner.

Rows applied after the last completed checkpoint die with the member —
the recovery point is the checkpoint, exactly as for a restarted single
server.  Clients that need a hard recovery line call ``flush`` then
``checkpoint`` (both fan out) before treating rows as durable.

**Elasticity.**  The membership is live: the wire ``join`` op
(:meth:`ClusterRouter.join`) adds a member to the running ring,
computes which shard slots the newcomer claims (≈ ``K/(N+1)`` of ``K``
keys), and *migrates* them — pause the slot's gate, ``flush`` +
force-``checkpoint`` on the source so every applied row is inside the
frame, stream the frame to the new owner via ``adopt``, flip the route,
resume.  Ingest to unaffected keys never blocks; blocking ops on a
moving slot queue on its gate, and non-blocking ingest gets a typed
:class:`~repro.errors.RouteMovedError` (nothing was enqueued — always
safe to retry, which the TCP client does transparently).  ``decommission``
(:meth:`ClusterRouter.decommission`) is the inverse: drain every slot a
member hosts to its ring successors the same way, then remove it from
the ring.  Both run under the topology lock that also serializes
fail-over, and the health loop *defers* fail-over while a migration
epoch is open so the two paths can never adopt the same session twice.
Unlike fail-over — which recovers from the *last* checkpoint and loses
rows applied after it — a migration is **lossless**: the source is alive
and drained, so the frame carries every row, and the moved stream
resumes bit-identically on the new owner.
"""

from __future__ import annotations

import asyncio
import base64
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ClusterError,
    InvalidParameterError,
    MemberDownError,
    RouteMovedError,
    SerializationError,
    ServeError,
    SessionNotFoundError,
)
from repro.serve import protocol
from repro.serve.checkpoint import MANIFEST_FORMAT, MANIFEST_NAME
from repro.serve.endpoint import JsonLinesEndpoint
from repro.serve.registry import DEFAULT_TENANT

from repro.cluster.client import MemberConnection
from repro.cluster.membership import (
    DEFAULT_REPLICAS,
    ClusterMembership,
    Member,
)
from repro.cluster.shard_session import (
    SessionRoute,
    merge_shard_states,
    ranked_pairs,
    scatter_batch,
)

__all__ = ["ClusterRouter"]

#: ``create`` fields forwarded verbatim to members (everything except the
#: envelope and the router-level ``shards`` knob).
_CREATE_PASSTHROUGH = (
    "spec",
    "size",
    "ttl",
    "queue_maxsize",
    "backend",
    "window",
    "num_shards",
    "num_workers",
)


class ClusterRouter(JsonLinesEndpoint):
    """Consistent-hash routing front over a set of sketch-server members.

    Parameters
    ----------
    members:
        :class:`Member` objects or ``(member_id, host, port)`` tuples —
        the cluster's sketch-server TCP endpoints.
    shared_checkpoint_root:
        Directory under which every member checkpoints as
        ``{root}/{member_id}/`` (see :meth:`member_checkpoint_dir`).
        ``None`` disables fail-over rehydration: dead members' sessions
        are unrecoverable and fail-over raises :class:`ClusterError`.
    replicas / seed:
        Ring shape (virtual nodes per member, hash seed).  Identical
        values reproduce identical routing across router restarts.
    retries / backoff / request_timeout:
        Per-member connection knobs, passed through to each
        :class:`~repro.cluster.client.MemberConnection`.
    health_interval:
        Seconds between background ping sweeps (``None`` — the default —
        disables the loop; forwarding failures still fail over inline).
    health_failures:
        Consecutive failed pings before the loop fails a member over.
    """

    def __init__(
        self,
        members: Sequence["Member | Tuple[str, str, int]"],
        *,
        shared_checkpoint_root=None,
        replicas: int = DEFAULT_REPLICAS,
        seed: int = 0,
        retries: int = 2,
        backoff: float = 0.05,
        request_timeout: Optional[float] = None,
        health_interval: Optional[float] = None,
        health_failures: int = 3,
    ) -> None:
        if health_interval is not None and health_interval <= 0:
            raise InvalidParameterError(
                f"health_interval must be positive, got {health_interval}"
            )
        if health_failures < 1:
            raise InvalidParameterError(
                f"health_failures must be >= 1, got {health_failures}"
            )
        self._membership = ClusterMembership(members, replicas=replicas, seed=seed)
        self._conn_kwargs = dict(
            retries=retries, backoff=backoff, request_timeout=request_timeout
        )
        self._chaos = None
        self._conns: Dict[str, MemberConnection] = {
            member.member_id: MemberConnection(member, **self._conn_kwargs)
            for member in self._membership.members()
        }
        self._shared_root = (
            None if shared_checkpoint_root is None else Path(shared_checkpoint_root)
        )
        self._routes: Dict[Tuple[str, str], SessionRoute] = {}
        self._health_interval = health_interval
        self._health_failures = health_failures
        self._health_task: Optional[asyncio.Task] = None
        #: Serializes every topology change: fail-over, join, decommission.
        self._topology_lock = asyncio.Lock()
        #: True while a join/decommission migration epoch is open — the
        #: health loop defers fail-over rather than racing the migration.
        self._rebalance_active = False
        self._failovers = 0
        self._sessions_rehydrated = 0
        self._rebalances = 0
        self._sessions_migrated = 0
        self._deferred_failovers = 0
        self._last_failover_error: Optional[str] = None
        self._init_endpoint()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def membership(self) -> ClusterMembership:
        return self._membership

    @property
    def routes(self) -> Dict[Tuple[str, str], SessionRoute]:
        """Live routing directory (``(tenant, name) -> SessionRoute``)."""
        return dict(self._routes)

    @property
    def chaos(self):
        """Fault-injection hook installed on every member connection.

        Test seam (see :mod:`repro.cluster.client`): an async callable
        awaited with ``(member_id, op)`` before each member-bound
        request, including connections created later by :meth:`join`.
        Production code leaves it ``None``.
        """
        return self._chaos

    @chaos.setter
    def chaos(self, hook) -> None:
        self._chaos = hook
        for connection in self._conns.values():
            connection.chaos = hook

    def member_checkpoint_dir(self, member_id: str) -> Path:
        """Where member ``member_id`` must checkpoint for fail-over to work."""
        if self._shared_root is None:
            raise ClusterError(
                "this router has no shared_checkpoint_root configured"
            )
        self._membership.get(member_id)  # validate the id
        return self._shared_root / member_id

    def __repr__(self) -> str:
        return (
            f"ClusterRouter(members={len(self._membership)}, "
            f"alive={len(self._membership.alive())}, "
            f"sessions={len(self._routes)}, address={self.address})"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ClusterRouter":
        """Start background services (the health-check loop, if enabled)."""
        if self._health_interval is not None and (
            self._health_task is None or self._health_task.done()
        ):
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop(), name="cluster-router-health"
            )
        return self

    async def stop(self) -> None:
        """Close the front listener and every member connection.  Idempotent."""
        if self._stopped:
            return
        self._stopped = True
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        await self._stop_tcp()
        for connection in self._conns.values():
            await connection.close()

    async def __aenter__(self) -> "ClusterRouter":
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Health and fail-over
    # ------------------------------------------------------------------
    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self._health_interval)
            await self._health_sweep()

    async def _health_sweep(self) -> None:
        """One ping pass over the live members (the health loop's body).

        A member over its failure budget fails over — *unless* a
        join/decommission migration epoch is currently open.  Fail-over
        and migration both place sessions via ``adopt``; letting them run
        concurrently could adopt the same session onto two members, so
        the sweep defers (keeping the failure count) and the next sweep
        retries after the epoch closes.  Deferrals are counted in
        ``cluster_info`` as ``deferred_failovers``.
        """
        for member in self._membership.alive():
            connection = self._conns.get(member.member_id)
            if connection is None:  # decommissioned mid-sweep
                continue
            try:
                await connection.ping()
            except MemberDownError:
                member.failures += 1
                if member.failures < self._health_failures:
                    continue
                if self._rebalance_active:
                    self._deferred_failovers += 1
                    continue
                try:
                    await self.fail_over(member.member_id)
                except (ClusterError, ServeError, OSError) as exc:
                    # The member stays marked down; the error is
                    # surfaced via cluster_info rather than
                    # killing the loop.
                    self._last_failover_error = f"{type(exc).__name__}: {exc}"
            except Exception:  # pragma: no cover - defensive
                continue
            else:
                member.failures = 0

    def _read_member_manifest(self, member_id: str) -> Dict[Tuple[str, str], Dict]:
        """The dead member's checkpoint manifest, keyed by (tenant, name)."""
        return self._read_manifest_dir(self.member_checkpoint_dir(member_id), member_id)

    def _read_manifest_dir(
        self, directory: Path, member_id: str
    ) -> Dict[Tuple[str, str], Dict]:
        """A checkpoint manifest by directory (works for removed members too)."""
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise ClusterError(
                f"member {member_id!r} left no checkpoint manifest at "
                f"{manifest_path}; its sessions cannot be rehydrated"
            )
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != MANIFEST_FORMAT:
            raise SerializationError(
                f"{manifest_path} is not a serve checkpoint manifest "
                f"(format={manifest.get('format')!r})"
            )
        return {
            (entry["tenant"], entry["name"]): entry
            for entry in manifest.get("sessions", [])
        }

    async def fail_over(self, member_id: str) -> Dict[str, Any]:
        """Mark a member down and rehydrate its sessions on ring successors.

        For every shard slot the dead member hosted, the replacement is
        the next *healthy* member in the slot key's ring preference
        order (so routing stays a pure function of membership), and the
        slot's last checkpointed frame is ``adopt``-ed onto it.  Returns
        a summary; idempotent — failing over an already-down member is a
        no-op so concurrent detection paths don't race.

        Raises :class:`ClusterError` when a hosted slot has no
        checkpoint to recover from (no ``shared_checkpoint_root``, or
        the member died before its first checkpoint), or when no healthy
        member remains to take a slot over.
        """
        async with self._topology_lock:
            member = self._membership.get(member_id)
            if not member.healthy:
                return {"member": member_id, "sessions_moved": 0, "already_down": True}
            self._membership.mark_down(member_id)
            self._failovers += 1
            await self._conns[member_id].invalidate()
            affected = [
                (route, index, wire_name)
                for route in self._routes.values()
                for index, wire_name, owner in route.slots()
                if owner == member_id
            ]
            moved = 0
            manifest = (
                self._read_member_manifest(member_id) if affected else {}
            )
            for route, index, wire_name in affected:
                entry = manifest.get((route.tenant, wire_name))
                if entry is None:
                    raise ClusterError(
                        f"dead member {member_id!r} holds no checkpoint for "
                        f"session {route.tenant!r}/{wire_name!r}; its rows "
                        "are unrecoverable (checkpoint before relying on "
                        "fail-over)"
                    )
                replacement = self._membership.route(route.ring_key(index))
                frame_path = self.member_checkpoint_dir(member_id) / entry["file"]
                frame = base64.b64encode(frame_path.read_bytes()).decode("ascii")
                await self._conns[replacement.member_id].call(
                    "adopt",
                    session=wire_name,
                    tenant=route.tenant,
                    spec=entry.get("spec"),
                    backend=entry.get("backend"),
                    ttl=entry.get("ttl"),
                    rows_applied=entry.get("rows_applied", 0),
                    frame=frame,
                )
                route.members[index] = replacement.member_id
                route.epoch += 1
                moved += 1
            self._sessions_rehydrated += moved
            self._last_failover_error = None
            return {"member": member_id, "sessions_moved": moved, "already_down": False}

    # ------------------------------------------------------------------
    # Elasticity: join / decommission with streaming rebalance
    # ------------------------------------------------------------------
    def _affected_slots(self) -> List[Tuple[SessionRoute, int, str, str]]:
        """Slots whose routed member differs from the current ring owner.

        Each entry is ``(route, shard_index, wire_name, source_member)`` —
        the migration set after a membership change (the routes are the
        placement of record; the ring is where they *should* live now).
        """
        return [
            (route, index, wire_name, owner)
            for route in self._routes.values()
            for index, wire_name, owner in route.slots()
            if self._membership.route(route.ring_key(index)).member_id != owner
        ]

    async def _migrate(
        self, moves: List[Tuple[SessionRoute, int, str, str]]
    ) -> int:
        """Stream the moved slots' state to their new ring owners.

        Per slot: pause its gate (blocking senders queue; non-blocking
        ingest raises :class:`RouteMovedError`), ``flush`` the source's
        wire session so every enqueued row is applied, force-``checkpoint``
        the source (one pass per source member), ship the fresh frame to
        the new owner via ``adopt`` (one bounded retry on a transient
        transfer failure), best-effort ``drop`` on the source, flip the
        route and resume the gate.  Gates always reopen — a failed
        migration leaves the slot where it was, still serving.

        Called with the topology lock held; talks to members through
        their connections directly (never :meth:`_forward`), so a source
        dying mid-migration aborts with :class:`MemberDownError` instead
        of recursing into fail-over under the lock.
        """
        if not moves:
            return 0
        if self._shared_root is None:
            raise ClusterError(
                "live rebalance needs a shared_checkpoint_root: frames "
                "stream between members through the shared checkpoint "
                "directory"
            )
        by_source: Dict[str, List[Tuple[SessionRoute, int, str, str]]] = {}
        for move in moves:
            by_source.setdefault(move[3], []).append(move)
        for route, index, _, _ in moves:
            route.pause(index)
        moved = 0
        try:
            for source_id in sorted(by_source):
                source = self._conns[source_id]
                # Drain first: rows enqueued before the pause must be
                # applied so the forced checkpoint frame carries them —
                # this is what makes a migration lossless where
                # fail-over is checkpoint-bounded.
                for route, _, wire_name, _ in by_source[source_id]:
                    await source.call(
                        "flush", session=wire_name, tenant=route.tenant
                    )
                await source.call("checkpoint", force=True)
                manifest = self._read_manifest_dir(
                    self._shared_root / source_id, source_id
                )
                for route, index, wire_name, _ in by_source[source_id]:
                    entry = manifest.get((route.tenant, wire_name))
                    if entry is None:
                        raise ClusterError(
                            f"member {source_id!r} checkpointed no frame for "
                            f"session {route.tenant!r}/{wire_name!r}; cannot "
                            "migrate it"
                        )
                    target = self._membership.route(route.ring_key(index))
                    frame_path = self._shared_root / source_id / entry["file"]
                    frame = base64.b64encode(frame_path.read_bytes()).decode("ascii")
                    adopt_fields = dict(
                        session=wire_name,
                        tenant=route.tenant,
                        spec=entry.get("spec"),
                        backend=entry.get("backend"),
                        ttl=entry.get("ttl"),
                        rows_applied=entry.get("rows_applied", 0),
                        frame=frame,
                    )
                    try:
                        await self._conns[target.member_id].call(
                            "adopt", **adopt_fields
                        )
                    except MemberDownError:
                        # One bounded retry: a transfer dropped by a
                        # transient fault redials and resends; a member
                        # that is really gone fails again and aborts.
                        await asyncio.sleep(0.05)
                        await self._conns[target.member_id].call(
                            "adopt", **adopt_fields
                        )
                    try:
                        await source.call(
                            "drop", session=wire_name, tenant=route.tenant
                        )
                    except (ServeError, MemberDownError, OSError):
                        pass
                    route.members[index] = target.member_id
                    route.epoch += 1
                    moved += 1
        finally:
            for route, index, _, _ in moves:
                route.resume(index)
        self._sessions_migrated += moved
        return moved

    async def join(self, member_id: str, host: str, port: int) -> Dict[str, Any]:
        """Add a member to the running ring and rebalance onto it.

        Pings the newcomer first (an unreachable member never enters the
        ring), then — under the topology lock — adds it to the
        membership (a new epoch), computes the slots whose ring owner it
        became (≈ ``K/(N+1)`` of ``K`` keys, all moving *to* it) and
        migrates them with :meth:`_migrate`'s pause-and-drain.  Ingest to
        unaffected keys never blocks.  Returns
        ``{"joined", "member", "sessions_moved", "epoch"}``.
        """
        if not isinstance(member_id, str) or not member_id:
            raise InvalidParameterError("'join' needs a non-empty member id")
        if not isinstance(host, str) or not host:
            raise InvalidParameterError("'join' needs a non-empty host")
        if not isinstance(port, int) or isinstance(port, bool) or not (
            0 < port < 65536
        ):
            raise InvalidParameterError(f"'join' needs a TCP port, got {port!r}")
        member = Member(member_id, host, port)
        connection = MemberConnection(member, **self._conn_kwargs)
        connection.chaos = self._chaos
        try:
            await connection.ping()
        except MemberDownError as exc:
            await connection.close()
            raise ClusterError(
                f"cannot join {member_id!r}: the member does not answer at "
                f"{host}:{port} ({exc})"
            ) from exc
        async with self._topology_lock:
            if member_id in (m.member_id for m in self._membership.members()):
                await connection.close()
                raise InvalidParameterError(
                    f"member {member_id!r} is already in the cluster"
                )
            self._membership.add_member(member)
            self._conns[member_id] = connection
            self._rebalances += 1
            self._rebalance_active = True
            try:
                # On a partial failure the newcomer keeps its ring arcs:
                # slots that did not move stay on their old members
                # (routes are authoritative) and keep serving.
                moved = await self._migrate(self._affected_slots())
            finally:
                self._rebalance_active = False
            return {
                "joined": True,
                "member": member_id,
                "sessions_moved": moved,
                "epoch": self._membership.epoch,
            }

    async def decommission(self, member_id: str) -> Dict[str, Any]:
        """Drain a live member's sessions to ring successors and remove it.

        The member must be healthy — its sessions stream out through a
        final flush + forced checkpoint, so nothing is lost (compare
        fail-over, which recovers a *dead* member from its last
        checkpoint and cannot save rows applied since).  A down member
        should :meth:`fail_over` instead.  The last member cannot be
        decommissioned.  Returns
        ``{"decommissioned", "member", "sessions_moved", "epoch"}``.
        """
        async with self._topology_lock:
            member = self._membership.get(member_id)
            if not member.healthy:
                raise ClusterError(
                    f"member {member_id!r} is down; decommission drains a "
                    "live member — use fail_over to recover a dead one"
                )
            if len(self._membership.alive()) < 2:
                raise ClusterError(
                    f"cannot decommission {member_id!r}: no other healthy "
                    "member to drain its sessions to"
                )
            hosted = [
                (route, index, wire_name, owner)
                for route in self._routes.values()
                for index, wire_name, owner in route.slots()
                if owner == member_id
            ]
            if hosted and self._shared_root is None:
                raise ClusterError(
                    "live rebalance needs a shared_checkpoint_root: frames "
                    "stream between members through the shared checkpoint "
                    "directory"
                )
            self._membership.remove_member(member_id)
            self._rebalances += 1
            self._rebalance_active = True
            try:
                moved = await self._migrate(hosted)
            finally:
                self._rebalance_active = False
            connection = self._conns.pop(member_id, None)
            if connection is not None:
                await connection.close()
            return {
                "decommissioned": True,
                "member": member_id,
                "sessions_moved": moved,
                "epoch": self._membership.epoch,
            }

    # ------------------------------------------------------------------
    # Forwarding plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _key(request: Dict[str, Any]) -> Tuple[str, str]:
        name = request.get("session")
        if not isinstance(name, str) or not name:
            raise InvalidParameterError(
                "requests addressing a session need a non-empty 'session' field"
            )
        return str(request.get("tenant", DEFAULT_TENANT)), name

    def _route(self, request: Dict[str, Any]) -> SessionRoute:
        tenant, name = self._key(request)
        route = self._routes.get((tenant, name))
        if route is None:
            raise SessionNotFoundError(
                f"no cluster session {tenant!r}/{name!r} "
                f"({len(self._routes)} session(s) routed)"
            )
        return route

    async def _forward(
        self, route: SessionRoute, index: int, op: str, **fields
    ) -> Dict[str, Any]:
        """One op to the member hosting shard ``index``, retrying on moves.

        Waits on the slot's migration gate first (pause-and-drain: a
        blocking op on a moving slot queues until the move completes),
        then snapshots ``(member, epoch)`` and sends.  Three outcomes
        re-route instead of failing:

        * :class:`MemberDownError` — :meth:`fail_over` re-homes the slot
          and the op retries on the new owner (if fail-over did not move
          the slot, the original error propagates);
        * :class:`SessionNotFoundError` with a *changed* route epoch —
          the op raced a migration flip (sent to the source after its
          ``drop``); the retry lands on the new owner.  An unchanged
          epoch means the session is genuinely gone and the error is
          real;
        * a missing connection — the snapshot raced a decommission's
          connection teardown; re-read the flipped route.
        """
        fields = dict(
            fields, session=route.wire_name(index), tenant=route.tenant
        )
        last_error: Optional[Exception] = None
        for _ in range(3):
            await route.wait_ready(index)
            member_id = route.members[index]
            epoch = route.epoch
            connection = self._conns.get(member_id)
            if connection is None:
                await asyncio.sleep(0)  # let the topology flip settle
                continue
            try:
                return await connection.call(op, **fields)
            except SessionNotFoundError:
                if route.epoch != epoch:
                    continue
                raise
            except MemberDownError as exc:
                last_error = exc
                await self.fail_over(member_id)
                if route.members[index] == member_id and route.epoch == epoch:
                    raise
        raise ClusterError(
            f"could not forward {op!r} for {route.tenant!r}/"
            f"{route.wire_name(index)!r}: the route kept moving"
        ) from last_error

    async def _forward_all(
        self, route: SessionRoute, op: str, **fields
    ) -> List[Dict[str, Any]]:
        """The op to every shard slot concurrently, in shard order."""
        return list(
            await asyncio.gather(
                *(
                    self._forward(route, index, op, **fields)
                    for index, _, _ in route.slots()
                )
            )
        )

    async def _gather_shard_states(
        self, route: SessionRoute
    ) -> List[Tuple[Dict[Any, float], float]]:
        """Per-shard ``(bins, total_weight)`` for the unbiased gather-merge."""

        async def one(index: int) -> Tuple[Dict[Any, float], float]:
            pairs = await self._forward(route, index, "estimates")
            total = await self._forward(route, index, "total")
            return (
                protocol.decode_pairs(pairs["pairs"]),
                float(total["estimate"]),
            )

        return list(
            await asyncio.gather(*(one(index) for index, _, _ in route.slots()))
        )

    @staticmethod
    def _sum_scalars(results: Sequence[Dict[str, Any]]) -> Dict[str, float]:
        """Sum per-shard scalar reads: estimates add, and — the shards
        being independent — variances add too (§4's error model)."""
        return {
            "estimate": float(sum(r["estimate"] for r in results)),
            "variance": float(sum(r["variance"] for r in results)),
        }

    # ------------------------------------------------------------------
    # Ops: cluster administration
    # ------------------------------------------------------------------
    async def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "pong": True,
            "sessions": len(self._routes),
            "members": {
                "total": len(self._membership),
                "alive": len(self._membership.alive()),
            },
        }

    async def _op_cluster_info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        ring = self._membership.ring
        return {
            "cluster": {
                "members": [m.as_dict() for m in self._membership.members()],
                "ring": {"replicas": ring.replicas, "seed": ring.seed},
                "epoch": self._membership.epoch,
                "sessions": [route.describe() for route in self._routes.values()],
                "failovers": self._failovers,
                "sessions_rehydrated": self._sessions_rehydrated,
                "rebalances": self._rebalances,
                "sessions_migrated": self._sessions_migrated,
                "deferred_failovers": self._deferred_failovers,
                "rebalance_active": self._rebalance_active,
                "last_failover_error": self._last_failover_error,
                "shared_checkpoint_root": (
                    None if self._shared_root is None else str(self._shared_root)
                ),
            }
        }

    async def _op_join(self, request: Dict[str, Any]) -> Dict[str, Any]:
        port = request.get("port")
        if isinstance(port, float) and port.is_integer():
            port = int(port)  # JSON numbers may arrive as floats
        return await self.join(request.get("member"), request.get("host"), port)

    async def _op_decommission(self, request: Dict[str, Any]) -> Dict[str, Any]:
        member_id = request.get("member")
        if not isinstance(member_id, str) or not member_id:
            raise InvalidParameterError(
                "'decommission' needs a non-empty member id"
            )
        return await self.decommission(member_id)

    async def _op_checkpoint(self, request: Dict[str, Any]) -> Dict[str, Any]:
        force = bool(request.get("force", False))
        totals = await asyncio.gather(
            *(
                self._conns[member.member_id].call(
                    "checkpoint", force=force or None
                )
                for member in self._membership.alive()
            )
        )
        return {"sessions": int(sum(r["sessions"] for r in totals))}

    async def _op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        detail = bool(request.get("detail", False))

        async def one(member: Member) -> Tuple[str, Any]:
            try:
                result = await self._conns[member.member_id].call(
                    "metrics", detail=detail or None
                )
                return member.member_id, result["metrics"]
            except MemberDownError:
                return member.member_id, None

        per_member = dict(
            await asyncio.gather(*(one(m) for m in self._membership.alive()))
        )
        return {
            "metrics": {
                "cluster": {
                    "connections_served": self.connections_served,
                    "sessions": len(self._routes),
                    "members_alive": len(self._membership.alive()),
                    "failovers": self._failovers,
                    "sessions_rehydrated": self._sessions_rehydrated,
                    "rebalances": self._rebalances,
                    "sessions_migrated": self._sessions_migrated,
                },
                "members": per_member,
            }
        }

    # ------------------------------------------------------------------
    # Ops: session lifecycle
    # ------------------------------------------------------------------
    def _create_fields(self, request: Dict[str, Any]) -> Dict[str, Any]:
        fields = {
            key: request[key]
            for key in _CREATE_PASSTHROUGH
            if request.get(key) is not None
        }
        params = dict(request.get("params") or {})
        params.pop("shards", None)
        if params:
            fields["params"] = params
        return fields

    @staticmethod
    def _shard_count(request: Dict[str, Any]) -> Optional[int]:
        shards = request.get("shards")
        if shards is None:
            shards = (request.get("params") or {}).get("shards")
        if shards is None:
            return None
        shards = int(shards)
        if shards < 1:
            raise InvalidParameterError(f"shards must be >= 1, got {shards}")
        return shards

    async def _op_create(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant, name = self._key(request)
        if (tenant, name) in self._routes:
            raise InvalidParameterError(
                f"session {tenant!r}/{name!r} already exists; drop it first "
                "or serve under a different name"
            )
        if not isinstance(request.get("spec"), str):
            raise InvalidParameterError("'create' needs a spec name")
        if request.get("size") is None:
            raise InvalidParameterError("'create' needs a size")
        shards = self._shard_count(request)
        fields = self._create_fields(request)
        base_seed = request.get("seed")
        meta = {
            "spec": request["spec"],
            "size": request["size"],
            "backend": request.get("backend"),
            "window": request.get("window"),
            "seed": base_seed,
        }
        route = SessionRoute(
            tenant=tenant,
            name=name,
            members=["?"] * (shards or 1),
            shards=shards,
            seed=int(base_seed or 0),
            meta=meta,
        )
        created: List[Tuple[int, str]] = []
        try:
            for index, wire_name, _ in route.slots():
                member = self._membership.route(route.ring_key(index))
                shard_fields = dict(fields)
                if base_seed is not None and shards is not None:
                    # Shard i streams with seed+i, exactly like the
                    # in-process sharded executor.
                    shard_fields["seed"] = int(base_seed) + index
                elif base_seed is not None:
                    shard_fields["seed"] = int(base_seed)
                await self._conns[member.member_id].call(
                    "create",
                    session=wire_name,
                    tenant=tenant,
                    **shard_fields,
                )
                route.members[index] = member.member_id
                created.append((index, member.member_id))
        except Exception:
            # Best-effort rollback so a half-created sharded session does
            # not squat member-side names the client never saw succeed.
            for index, member_id in created:
                try:
                    await self._conns[member_id].call(
                        "drop", session=route.wire_name(index), tenant=tenant
                    )
                except (ServeError, MemberDownError, OSError):
                    pass
            raise
        self._routes[(tenant, name)] = route
        return {"created": True, "info": route.describe()}

    async def _op_adopt(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Adopt a serialized frame cluster-wide: place on the ring owner."""
        tenant, name = self._key(request)
        if (tenant, name) in self._routes:
            raise InvalidParameterError(
                f"session {tenant!r}/{name!r} already exists; drop it first "
                "or serve under a different name"
            )
        member = self._membership.route((tenant, name))
        fields = {
            key: value
            for key, value in request.items()
            if key not in ("id", "op")
        }
        result = await self._conns[member.member_id].call("adopt", **fields)
        self._routes[(tenant, name)] = SessionRoute(
            tenant=tenant,
            name=name,
            members=[member.member_id],
            meta={"spec": request.get("spec"), "backend": request.get("backend")},
        )
        return result

    async def _op_drop(self, request: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(request)
        del self._routes[(route.tenant, route.name)]
        # Best effort on the members: a down member's copy is gone with
        # its registry anyway, and the route removal is what unblocks the
        # name for re-creation.
        for index, wire_name, member_id in route.slots():
            try:
                await self._conns[member_id].call(
                    "drop", session=wire_name, tenant=route.tenant
                )
            except (ServeError, MemberDownError, OSError):
                pass
        return {"dropped": True}

    async def _op_list(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = request.get("tenant")
        return {
            "sessions": [
                route.describe()
                for route in self._routes.values()
                if tenant is None or route.tenant == tenant
            ]
        }

    async def _op_info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(request)
        infos = await self._forward_all(route, "info")
        shard_infos = [result["info"] for result in infos]
        info = dict(shard_infos[0])
        info.update(
            name=route.name,
            tenant=route.tenant,
            rows_processed=sum(
                int(shard.get("rows_processed", 0)) for shard in shard_infos
            ),
            total_weight=float(
                sum(shard.get("total_weight", 0.0) for shard in shard_infos)
            ),
            cluster={
                "shards": route.shards,
                "members": list(route.members),
                "shard_sessions": shard_infos if route.sharded else None,
            },
        )
        return {"info": info}

    # ------------------------------------------------------------------
    # Ops: ingest (scatter)
    # ------------------------------------------------------------------
    async def _op_update(self, request: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(request)
        item = protocol.decode_item(request.get("item"))
        return await self._forward(
            route,
            route.shard_of(item),
            "update",
            item=request.get("item"),
            weight=request.get("weight"),
            timestamp=request.get("timestamp"),
        )

    async def _op_update_batch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(request)
        raw_items = request.get("items")
        if not isinstance(raw_items, list):
            raise InvalidParameterError("'items' must be a JSON array of labels")
        passthrough = dict(
            weights=request.get("weights"),
            timestamps=request.get("timestamps"),
            block=request.get("block"),
        )
        non_blocking = request.get("block") is False
        if not route.sharded:
            if non_blocking and route.migrating(0):
                raise RouteMovedError(
                    f"session {route.tenant!r}/{route.name!r} is migrating; "
                    "nothing was enqueued — retry after the move"
                )
            return await self._forward(
                route, 0, "update_batch", items=raw_items, **passthrough
            )
        items = [protocol.decode_item(item) for item in raw_items]
        slices = scatter_batch(
            items,
            request.get("weights"),
            request.get("timestamps"),
            route.shards,
            seed=route.seed,
        )
        sends = [
            (index, shard_items, shard_weights, shard_ts)
            for index, (shard_items, shard_weights, shard_ts) in enumerate(slices)
            if shard_items
        ]
        if non_blocking and any(route.migrating(index) for index, _, _, _ in sends):
            # Checked before anything is sent: the whole batch is
            # rejected atomically, so "no effect — always safe to retry"
            # holds even when only one target shard is moving.
            raise RouteMovedError(
                f"session {route.tenant!r}/{route.name!r} has a shard "
                "migrating; nothing was enqueued — retry after the move"
            )
        results = await asyncio.gather(
            *(
                self._forward(
                    route,
                    index,
                    "update_batch",
                    items=[protocol.encode_item(item) for item in shard_items],
                    weights=shard_weights,
                    timestamps=shard_ts,
                    block=request.get("block"),
                )
                for index, shard_items, shard_weights, shard_ts in sends
            )
        )
        return {
            "enqueued": int(sum(r["enqueued"] for r in results)),
            "queue_depth": max(
                (int(r.get("queue_depth", 0)) for r in results), default=0
            ),
        }

    async def _op_flush(self, request: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(request)
        results = await self._forward_all(route, "flush")
        return {"rows_applied": int(sum(r["rows_applied"] for r in results))}

    # ------------------------------------------------------------------
    # Ops: reads (gather)
    # ------------------------------------------------------------------
    async def _op_estimate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(request)
        item = protocol.decode_item(request.get("item"))
        # Disjoint shards: the owning shard holds the label's entire
        # weight, so one forward answers the point query exactly as a
        # single sketch would.
        return await self._forward(
            route, route.shard_of(item), "estimate", item=request.get("item")
        )

    async def _op_estimates(self, request: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(request)
        results = await self._forward_all(route, "estimates")
        pairs: List[List[Any]] = []
        for result in results:
            pairs.extend(result["pairs"])
        return {"pairs": pairs}

    async def _op_subset_sum(self, request: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(request)
        candidates = request.get("candidates")
        if not isinstance(candidates, list):
            raise InvalidParameterError(
                "the wire 'subset_sum' op takes a 'candidates' array (arbitrary "
                "predicates cannot travel over JSON; use the in-process client "
                "for callable predicates)"
            )
        if not route.sharded:
            return await self._forward(route, 0, "subset_sum", candidates=candidates)
        by_shard: Dict[int, List[Any]] = {}
        for raw in candidates:
            by_shard.setdefault(
                route.shard_of(protocol.decode_item(raw)), []
            ).append(raw)
        if not by_shard:
            return {"estimate": 0.0, "variance": 0.0}
        results = await asyncio.gather(
            *(
                self._forward(route, index, "subset_sum", candidates=shard_candidates)
                for index, shard_candidates in sorted(by_shard.items())
            )
        )
        return self._sum_scalars(results)

    async def _op_total(self, request: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(request)
        return self._sum_scalars(await self._forward_all(route, "total"))

    async def _op_heavy_hitters(self, request: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(request)
        phi = float(request.get("phi", 0.01))
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        if not route.sharded:
            return await self._forward(route, 0, "heavy_hitters", phi=phi)
        merged = merge_shard_states(await self._gather_shard_states(route))
        pairs = ranked_pairs(merged, threshold=phi * merged.total_weight)
        return {"pairs": protocol.encode_pairs(pairs)}

    async def _op_top_k(self, request: Dict[str, Any]) -> Dict[str, Any]:
        route = self._route(request)
        k = int(request.get("k", 10))
        if k < 0:
            raise InvalidParameterError("k must be non-negative")
        if not route.sharded:
            return await self._forward(route, 0, "top_k", k=k)
        merged = merge_shard_states(await self._gather_shard_states(route))
        return {"pairs": protocol.encode_pairs(ranked_pairs(merged, k=k))}
