"""Key-sharded cluster sessions: routing records and scatter/gather math.

A cluster session is either *single* (one ordinary served session on the
ring-chosen member) or *key-sharded*: ``create`` with ``shards: k``
splits the label space across ``k`` internal sessions named
``{name}@shard{i}``, each placed on the ring by its own key — so shards
spread across members, and a member's death moves only its shards.
Labels are partitioned by the same stable hash the sharded executor uses
(:func:`repro.distributed.partition.stable_shard`), making the per-shard
sketches *disjoint*: every label's whole weight lives in exactly one
shard.

Disjointness is what makes the paper's math exact on gather:

* a subset-sum (or total) is the sum of per-shard subset-sums, and —
  the shards being independent sketches — its variance is the **sum of
  the per-shard variances** (the disaggregated-subset-sum error model
  of §4 applied across shards);
* frequent-item reads gather every shard's retained bins and combine
  them with the paper's unbiased merge
  (:func:`repro.core.merge.merge_many_unbiased`).  The gather passes
  ``capacity = `` the union size, and the unbiased reduction leaves a
  within-capacity bin map untouched, so the merged snapshot is the
  *exact* disjoint union — the merge machinery adds no sampling noise
  on the read path;
* totals are preserved exactly: Space Saving never loses mass, and the
  disjoint union sums the per-shard totals.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._typing import Item
from repro.core.merge import merge_many_unbiased
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.distributed.partition import stable_shard
from repro.errors import InvalidParameterError

__all__ = ["SessionRoute", "scatter_batch", "merge_shard_states", "ranked_pairs"]


@dataclass
class SessionRoute:
    """Where one cluster session's shards live.

    ``shards=None`` marks a single (unsharded) session whose one slot is
    ``members[0]``; otherwise ``members[i]`` hosts wire session
    ``{name}@shard{i}``.  ``seed`` is the label-partitioning hash seed
    (the session's create seed, defaulting to 0), **not** the ring seed —
    scatter must match the shard layout chosen at create time even if the
    ring is configured differently.

    **Rebalance state.**  ``epoch`` records the membership epoch the
    slot assignment was last computed under; the router bumps it whenever
    it flips a slot (fail-over, join, decommission), so a forwarding path
    that cached ``(member, epoch)`` before awaiting can tell a *stale
    route* from a genuinely missing session.  Each slot also carries a
    **migration gate**: ``pause(i)`` closes slot ``i`` while its frame
    streams to a new owner, ``resume(i)`` reopens it, and blocking
    senders ``await wait_ready(i)`` — pause-and-drain scoped to the one
    moving shard, never the whole session.
    """

    tenant: str
    name: str
    members: List[str]
    shards: Optional[int] = None
    seed: int = 0
    #: Extra creation fields replayed on fail-over adoption (ttl, spec...).
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Membership epoch of the current slot assignment.
    epoch: int = 0
    #: Per-slot migration gates (slot index -> cleared Event while moving).
    _gates: Dict[int, asyncio.Event] = field(
        default_factory=dict, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        expected = 1 if self.shards is None else self.shards
        if self.shards is not None and self.shards < 1:
            raise InvalidParameterError(f"shards must be >= 1, got {self.shards}")
        if len(self.members) != expected:
            raise InvalidParameterError(
                f"route for {self.tenant!r}/{self.name!r} needs {expected} "
                f"member slot(s), got {len(self.members)}"
            )

    @property
    def sharded(self) -> bool:
        return self.shards is not None

    def wire_name(self, index: int = 0) -> str:
        """The member-side session name of shard ``index``."""
        if not self.sharded:
            return self.name
        return f"{self.name}@shard{index}"

    def ring_key(self, index: int = 0) -> Tuple[str, str]:
        """The consistent-hash routing key of shard ``index``."""
        return (self.tenant, self.wire_name(index))

    def shard_of(self, item: Item) -> int:
        """The shard owning ``item`` (0 for single sessions)."""
        if not self.sharded:
            return 0
        return stable_shard(item, self.shards, seed=self.seed)

    def slots(self) -> List[Tuple[int, str, str]]:
        """All ``(shard_index, wire_name, member_id)`` placements."""
        return [
            (index, self.wire_name(index), member_id)
            for index, member_id in enumerate(self.members)
        ]

    # -- migration gates ----------------------------------------------
    def pause(self, index: int) -> None:
        """Close slot ``index``: blocking senders queue on the gate."""
        self._gates.setdefault(index, asyncio.Event()).clear()

    def resume(self, index: int) -> None:
        """Reopen slot ``index``, releasing every waiter."""
        gate = self._gates.pop(index, None)
        if gate is not None:
            gate.set()

    def migrating(self, index: int) -> bool:
        """Whether slot ``index`` is currently paused for migration."""
        gate = self._gates.get(index)
        return gate is not None and not gate.is_set()

    async def wait_ready(self, index: int) -> None:
        """Block until slot ``index`` is open (no-op when not migrating)."""
        gate = self._gates.get(index)
        if gate is not None:
            await gate.wait()

    def describe(self) -> Dict[str, Any]:
        info = dict(self.meta)
        info.update(
            tenant=self.tenant,
            name=self.name,
            shards=self.shards,
            members=list(self.members),
            epoch=self.epoch,
            migrating=[index for index, _, _ in self.slots() if self.migrating(index)],
        )
        return info


def scatter_batch(
    items: Sequence[Item],
    weights: Optional[Sequence[float]],
    timestamps: Optional[Sequence[float]],
    num_shards: int,
    *,
    seed: int = 0,
) -> List[Tuple[List[Item], Optional[List[float]], Optional[List[float]]]]:
    """Partition an aligned batch by item hash, keeping all three columns.

    The timestamped sibling of
    :func:`repro.distributed.partition.hash_partition_batch` (windowed
    sessions need timestamps to travel with their rows): returns one
    ``(items, weights, timestamps)`` triple per shard, preserving the
    within-shard arrival order.  Empty shards come back with empty lists
    so callers can skip the network round trip entirely.
    """
    if num_shards < 1:
        raise InvalidParameterError(f"num_shards must be >= 1, got {num_shards}")
    for label, column in (("weights", weights), ("timestamps", timestamps)):
        if column is not None and len(column) != len(items):
            raise InvalidParameterError(
                f"items and {label} must align: got {len(items)} items "
                f"and {len(column)} {label}"
            )
    part_items: List[List[Item]] = [[] for _ in range(num_shards)]
    part_weights: Optional[List[List[float]]] = (
        None if weights is None else [[] for _ in range(num_shards)]
    )
    part_ts: Optional[List[List[float]]] = (
        None if timestamps is None else [[] for _ in range(num_shards)]
    )
    for index, item in enumerate(items):
        shard = stable_shard(item, num_shards, seed=seed)
        part_items[shard].append(item)
        if part_weights is not None:
            part_weights[shard].append(float(weights[index]))
        if part_ts is not None:
            part_ts[shard].append(float(timestamps[index]))
    return [
        (
            part_items[shard],
            None if part_weights is None else part_weights[shard],
            None if part_ts is None else part_ts[shard],
        )
        for shard in range(num_shards)
    ]


def merge_shard_states(
    shard_states: Sequence[Tuple[Dict[Item, float], float]],
) -> UnbiasedSpaceSaving:
    """The paper's unbiased merge over gathered per-shard bin maps.

    ``shard_states`` is one ``(bins, total_weight)`` pair per shard (the
    wire ``estimates`` pairs and ``total`` estimate).  Each pair becomes
    a snapshot sketch via ``from_bins`` and the snapshots merge through
    :func:`merge_many_unbiased` with ``capacity`` = the union size — the
    unbiased reduction is then the identity, so the result is the exact
    disjoint union of the shards with the total preserved exactly.
    """
    if not shard_states:
        raise InvalidParameterError("merge_shard_states needs at least one shard")
    snapshots = [
        UnbiasedSpaceSaving.from_bins(
            max(1, len(bins)), bins, total_weight=total, seed=0
        )
        for bins, total in shard_states
    ]
    union_capacity = max(1, sum(len(bins) for bins, _ in shard_states))
    return merge_many_unbiased(snapshots, capacity=union_capacity, seed=0)


def ranked_pairs(
    sketch: UnbiasedSpaceSaving,
    *,
    k: Optional[int] = None,
    threshold: Optional[float] = None,
) -> List[Tuple[Item, float]]:
    """Retained bins ranked the way the query layer ranks grouped results.

    Descending count, ties broken by ``repr(item)`` — the ordering
    :class:`repro.distributed.ensemble.DisjointUnionQueries` and the
    query engine use, so cluster reads rank identically to local ones.
    ``threshold`` keeps only strictly-positive bins at/above it (the
    heavy-hitter filter); ``k`` truncates.
    """
    pairs = [
        (item, count)
        for item, count in sketch.estimates().items()
        if threshold is None or (count >= threshold and count > 0)
    ]
    pairs.sort(key=lambda pair: (-pair[1], repr(pair[0])))
    return pairs if k is None else pairs[:k]
