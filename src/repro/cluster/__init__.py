"""Multi-node cluster serving for the sketch server.

One :class:`~repro.cluster.router.ClusterRouter` fronts N
:class:`~repro.serve.server.SketchServer` members behind the same
JSON-lines protocol a single server speaks, so an unmodified
:class:`~repro.serve.client.TCPServeClient` works against either:

* **Placement** — a consistent-hash ring
  (:class:`~repro.cluster.membership.HashRing`, ~64 virtual nodes per
  member over the package's stable 64-bit label hash) maps each
  ``(tenant, name)`` to a member; membership change moves only
  ``≈ K/N`` of ``K`` keys.
* **Key-sharded sessions** — ``create`` with ``shards: k`` splits one
  logical session's label space across ``k`` members; ingest scatters
  by label hash, and global reads gather with the paper's
  disjoint-union math: subset-sum estimates *and variances* sum across
  shards, frequent-item reads go through the unbiased merge, and totals
  are preserved exactly (:mod:`repro.cluster.shard_session`).
* **Replica fail-over** — members checkpoint under a shared directory;
  when one dies, the router re-maps its hash range to ring successors
  and rehydrates its sessions there via the wire ``adopt`` op, resuming
  bit-exactly from the last checkpoint
  (:meth:`~repro.cluster.router.ClusterRouter.fail_over`).
* **Elasticity** — the wire ``join`` op adds a member to the running
  ring and streams the ≈ ``K/N`` moved shard slots to it (pause-and-
  drain per slot; ingest to unaffected keys never blocks), and
  ``decommission`` drains a member to its ring successors losslessly
  before removing it.  Ring generations are **epochs**
  (:attr:`~repro.cluster.membership.ClusterMembership.epoch`);
  :func:`~repro.cluster.membership.ring_delta` computes the moved-key
  set between two rings.

See ``docs/cluster.md`` for the topology, variance math and fail-over
lifecycle.
"""

from repro.cluster.client import MemberConnection
from repro.cluster.membership import (
    DEFAULT_REPLICAS,
    ClusterMembership,
    HashRing,
    Member,
    ring_delta,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.shard_session import (
    SessionRoute,
    merge_shard_states,
    ranked_pairs,
    scatter_batch,
)

__all__ = [
    "DEFAULT_REPLICAS",
    "ClusterMembership",
    "ClusterRouter",
    "HashRing",
    "Member",
    "MemberConnection",
    "SessionRoute",
    "merge_shard_states",
    "ranked_pairs",
    "ring_delta",
    "scatter_batch",
]
