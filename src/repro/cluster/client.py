"""Router-side connections to cluster members.

A :class:`MemberConnection` wraps one member's
:class:`~repro.serve.client.TCPServeClient` with lazy (re)connection and
a uniform failure surface: any transport-level failure — dial refused
after the retry budget, a mid-request timeout, the peer dropping the
socket — invalidates the cached connection and raises
:class:`~repro.errors.MemberDownError`, which is the single signal the
router's fail-over logic reacts to.  *Application* errors coming back in
protocol envelopes (``SessionNotFoundError``, quota errors, …) pass
through untouched: a member answering with a typed error is alive.

For deterministic failure testing, a connection accepts an optional
**chaos hook** — an async callable awaited with ``(member_id, op)``
before every request leaves.  The hook can delay (sleep), drop (raise
:class:`MemberDownError`), or kill (stop the member's server) at scripted
points; ``tests/support/chaos.py`` builds seeded, replayable scripts on
top of this seam.  Production code never sets it.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Optional

from repro.errors import MemberDownError, ServeError, ServerClosedError
from repro.serve.client import TCPServeClient

from repro.cluster.membership import Member

__all__ = ["MemberConnection"]


class MemberConnection:
    """A lazily-dialed, auto-invalidating client for one cluster member."""

    def __init__(
        self,
        member: Member,
        *,
        retries: int = 2,
        backoff: float = 0.05,
        request_timeout: Optional[float] = None,
    ) -> None:
        self._member = member
        self._retries = retries
        self._backoff = backoff
        self._request_timeout = request_timeout
        self._client: Optional[TCPServeClient] = None
        self._lock = asyncio.Lock()
        #: Optional fault-injection hook ``async (member_id, op) -> None``,
        #: awaited before each request is sent (test seam; see module doc).
        self.chaos: Optional[Callable[[str, str], Awaitable[None]]] = None

    @property
    def member(self) -> Member:
        return self._member

    @property
    def connected(self) -> bool:
        return self._client is not None

    def _down(self, exc: BaseException) -> MemberDownError:
        return MemberDownError(
            f"member {self._member.member_id!r} at "
            f"{self._member.host}:{self._member.port} is unreachable: {exc}"
        )

    async def _ensure(self) -> TCPServeClient:
        if self._client is None:
            async with self._lock:
                if self._client is None:
                    try:
                        self._client = await TCPServeClient.connect(
                            self._member.host,
                            self._member.port,
                            retries=self._retries,
                            backoff=self._backoff,
                            request_timeout=self._request_timeout,
                        )
                    except (OSError, ServerClosedError) as exc:
                        raise self._down(exc) from exc
        return self._client

    async def invalidate(self) -> None:
        """Drop the cached connection (best effort); next call redials."""
        client, self._client = self._client, None
        if client is not None:
            try:
                await client.close()
            except OSError:
                pass

    async def call(self, op: str, **fields) -> Dict[str, Any]:
        """One protocol op against the member; transport loss raises
        :class:`MemberDownError` (application errors re-raise unchanged)."""
        if self.chaos is not None:
            await self.chaos(self._member.member_id, op)
        client = await self._ensure()
        try:
            return await client.request(op, **fields)
        except MemberDownError:
            raise
        except (OSError, ConnectionError, ServerClosedError) as exc:
            await self.invalidate()
            raise self._down(exc) from exc
        except ServeError as exc:
            # A *plain* ServeError from the TCP client is transport-level
            # (closed connection, request timeout) — the connection is no
            # longer usable either way.  Subclasses are typed remote
            # errors from a live member and propagate untouched.
            if type(exc) is ServeError:
                await self.invalidate()
                raise self._down(exc) from exc
            raise

    async def ping(self) -> Dict[str, Any]:
        """Health probe: one ``ping`` round trip."""
        return await self.call("ping")

    async def close(self) -> None:
        await self.invalidate()

    def __repr__(self) -> str:
        return (
            f"MemberConnection({self._member.member_id!r}, "
            f"connected={self.connected})"
        )
