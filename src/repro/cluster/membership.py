"""Cluster membership: the consistent-hash ring and member health state.

The ring places every member at ``replicas`` pseudo-random points (virtual
nodes) on a 64-bit circle, using the package's stable keyed hash
(:func:`repro.distributed.partition.stable_hash_64`) for both member
points and keys — so routing is a pure function of the member set, the
replica count and the seed, identical across processes and router
restarts.  A key is owned by the first member point at or after the key's
hash, wrapping around; removing one member hands exactly that member's
arcs to its ring successors (≈ ``K/N`` of ``K`` keys move), and adding
one claims ≈ ``K/(N+1)`` — the classic consistent-hashing stability
property the unit tests assert.

:class:`ClusterMembership` layers liveness on top: each
:class:`Member` carries an address and a health flag, and routing walks
the ring's preference order skipping members marked down — which is all
fail-over needs to re-map a dead member's hash range deterministically.

Membership is *elastic*: :meth:`ClusterMembership.add_member` and
:meth:`ClusterMembership.remove_member` rebuild the ring and bump the
**epoch** — a monotone counter identifying one ring generation.  Every
route the router hands out is stamped with the epoch it was computed
under, so an in-flight request can detect that the partition moved
beneath it.  :func:`ring_delta` computes exactly which keys change owner
between two rings — the ≈ ``K/N`` migration set a live ``join`` or
``decommission`` must stream.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.distributed.partition import stable_hash_64
from repro.errors import ClusterError, InvalidParameterError

__all__ = [
    "HashRing",
    "Member",
    "ClusterMembership",
    "DEFAULT_REPLICAS",
    "ring_delta",
]

#: Virtual nodes per member.  64 keeps the largest/smallest member load
#: ratio within ~1.3x for small clusters while the ring stays tiny
#: (N * 64 points, bisected in O(log) per lookup).
DEFAULT_REPLICAS = 64


class HashRing:
    """A consistent-hash ring over opaque member ids.

    Pure and immutable: two rings built from the same ``(member_ids,
    replicas, seed)`` — in any member order — route every key identically.
    Build a new ring to model membership change; the stability tests
    compare ``owner`` maps across such rebuilds.
    """

    def __init__(
        self,
        member_ids: Iterable[str],
        *,
        replicas: int = DEFAULT_REPLICAS,
        seed: int = 0,
    ) -> None:
        members = sorted(set(member_ids))
        if not members:
            raise InvalidParameterError("a hash ring needs at least one member")
        if replicas < 1:
            raise InvalidParameterError(f"replicas must be >= 1, got {replicas}")
        self._members: Tuple[str, ...] = tuple(members)
        self._replicas = int(replicas)
        self._seed = int(seed)
        points: List[Tuple[int, str]] = []
        for member_id in members:
            for replica in range(replicas):
                points.append(
                    (stable_hash_64(("vnode", member_id, replica), seed=seed), member_id)
                )
        points.sort()  # ties (astronomically rare) break by member id
        self._hashes: List[int] = [point for point, _ in points]
        self._owners: List[str] = [member_id for _, member_id in points]

    @property
    def members(self) -> Tuple[str, ...]:
        return self._members

    @property
    def replicas(self) -> int:
        return self._replicas

    @property
    def seed(self) -> int:
        return self._seed

    def key_position(self, key: Any) -> int:
        """The 64-bit ring position of a routing key."""
        return stable_hash_64(key, seed=self._seed)

    def _start_index(self, key: Any) -> int:
        index = bisect.bisect_left(self._hashes, self.key_position(key))
        return index % len(self._hashes)

    def owner(self, key: Any) -> str:
        """The member owning ``key``: first point at/after its hash, wrapping."""
        return self._owners[self._start_index(key)]

    def preference(self, key: Any, n: Optional[int] = None) -> List[str]:
        """Distinct members in ring-walk order from ``key``'s position.

        The first entry is :meth:`owner`; each next entry is the member
        that would inherit the key if everything before it disappeared —
        the deterministic fail-over succession the router follows.
        ``n`` truncates the walk (default: all members).
        """
        wanted = len(self._members) if n is None else min(n, len(self._members))
        start = self._start_index(key)
        order: List[str] = []
        seen = set()
        for offset in range(len(self._owners)):
            member_id = self._owners[(start + offset) % len(self._owners)]
            if member_id not in seen:
                seen.add(member_id)
                order.append(member_id)
                if len(order) == wanted:
                    break
        return order

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return (
            f"HashRing(members={len(self._members)}, "
            f"replicas={self._replicas}, seed={self._seed})"
        )


@dataclass
class Member:
    """One cluster member: a :class:`~repro.serve.server.SketchServer` endpoint."""

    member_id: str
    host: str
    port: int
    healthy: bool = True
    #: Consecutive failed health probes (reset to 0 on any success).
    failures: int = field(default=0, compare=False)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "member_id": self.member_id,
            "host": self.host,
            "port": self.port,
            "healthy": self.healthy,
            "failures": self.failures,
        }


class ClusterMembership:
    """The ring plus per-member liveness: what the router routes with.

    Accepts :class:`Member` objects or ``(member_id, host, port)`` tuples.
    Routing (:meth:`route`) returns the first *healthy* member in the
    ring's preference order for the key, so marking a member down is all
    it takes to re-map its entire hash range onto its ring successors.
    """

    def __init__(
        self,
        members: Sequence["Member | Tuple[str, str, int]"],
        *,
        replicas: int = DEFAULT_REPLICAS,
        seed: int = 0,
    ) -> None:
        normalized = [
            member if isinstance(member, Member) else Member(*member)
            for member in members
        ]
        ids = [member.member_id for member in normalized]
        if len(set(ids)) != len(ids):
            raise InvalidParameterError(f"duplicate member ids: {sorted(ids)}")
        self._members: Dict[str, Member] = {
            member.member_id: member for member in normalized
        }
        self._ring = HashRing(ids, replicas=replicas, seed=seed)
        self._epoch = 0

    @property
    def ring(self) -> HashRing:
        return self._ring

    @property
    def epoch(self) -> int:
        """The ring generation: bumped on every membership change.

        Liveness flips (``mark_down`` / ``mark_up``) do **not** bump the
        epoch — they re-map routing within one generation, and fail-over
        already serializes against migrations through the router's
        topology lock.
        """
        return self._epoch

    def _rebuild(self) -> None:
        self._ring = HashRing(
            list(self._members),
            replicas=self._ring.replicas,
            seed=self._ring.seed,
        )
        self._epoch += 1

    def add_member(self, member: "Member | Tuple[str, str, int]") -> Member:
        """Add a member to the ring (a new epoch begins).

        The new member joins healthy; keys whose ring owner becomes the
        newcomer route to it immediately, so the caller (the router's
        ``join``) must migrate their state *before* calling this — or
        pause the affected slots across the flip, which is what the
        router does.
        """
        member = member if isinstance(member, Member) else Member(*member)
        if member.member_id in self._members:
            raise InvalidParameterError(
                f"member {member.member_id!r} is already in the cluster"
            )
        self._members[member.member_id] = member
        self._rebuild()
        return member

    def remove_member(self, member_id: str) -> Member:
        """Remove a member from the ring entirely (a new epoch begins).

        Unlike ``mark_down`` — which keeps the member's points on the
        ring and merely skips it — removal hands its arcs to ring
        successors permanently.  The last member cannot be removed.
        """
        member = self.get(member_id)
        if len(self._members) == 1:
            raise ClusterError(
                f"cannot remove {member_id!r}: it is the cluster's last member"
            )
        del self._members[member_id]
        self._rebuild()
        return member

    def get(self, member_id: str) -> Member:
        try:
            return self._members[member_id]
        except KeyError:
            raise ClusterError(f"unknown cluster member {member_id!r}") from None

    def members(self) -> List[Member]:
        """All members, healthy or not, in id order."""
        return [self._members[member_id] for member_id in sorted(self._members)]

    def alive(self) -> List[Member]:
        """Healthy members in id order."""
        return [member for member in self.members() if member.healthy]

    def mark_down(self, member_id: str) -> Member:
        member = self.get(member_id)
        member.healthy = False
        return member

    def mark_up(self, member_id: str) -> Member:
        member = self.get(member_id)
        member.healthy = True
        member.failures = 0
        return member

    def route(self, key: Any) -> Member:
        """The healthy member owning ``key`` (ring order, skipping the down)."""
        for member_id in self._ring.preference(key):
            member = self._members[member_id]
            if member.healthy:
                return member
        raise ClusterError(
            f"no healthy member left to own key {key!r} "
            f"({len(self._members)} member(s), all down)"
        )

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return (
            f"ClusterMembership(members={len(self._members)}, "
            f"alive={len(self.alive())}, epoch={self._epoch})"
        )


def ring_delta(
    before: HashRing, after: HashRing, keys: Iterable[Any]
) -> Dict[Any, Tuple[str, str]]:
    """Which of ``keys`` change owner between two rings.

    Returns ``{key: (old_owner, new_owner)}`` for exactly the keys whose
    owner differs — the migration set of a membership change.  For a
    single join of one member into N, consistent hashing bounds the
    expected size at ≈ ``K/(N+1)`` of ``K`` keys, all moving *to* the
    newcomer; a removal moves only the removed member's keys, all *away*
    from it.  Both properties are pinned by the rebalance property suite.
    """
    moves: Dict[Any, Tuple[str, str]] = {}
    for key in keys:
        old_owner = before.owner(key)
        new_owner = after.owner(key)
        if old_owner != new_owner:
            moves[key] = (old_owner, new_owner)
    return moves
