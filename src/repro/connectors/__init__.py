"""Streaming connectors and the exactly-once mini-batch pipeline driver.

Everything before this package consumed pre-materialized arrays; the
connectors make the "continuous stream of updates" setting real.  Three
sources implement one offset-addressable contract
(:class:`SourceProtocol`):

* :class:`LogSource` — a Kafka-style partitioned append-only log
  (stable-hash routing of items to partitions, consumer-owned offsets);
* :class:`FileTailSource` — tail a growing JSON-lines file, offsets are
  byte positions;
* :class:`SocketFirehoseSource` / :class:`FirehoseServer` — the same
  offset-addressed polls over TCP, so replayability survives the
  network hop.

On top of them, :class:`PipelineDriver` runs the Spark-DStream-shaped
mini-batch loop — poll every partition, apply through a serve client,
commit offsets only after the flush — and checkpoints the per-partition
offset table *inside* one :mod:`repro.io` envelope
(:class:`DriverCheckpoint`) next to the session's serialized sketch
frame, RNG state included.  Kill the driver anywhere, call
:meth:`PipelineDriver.restore`, and the resumed pipeline replays from
the exact recorded offsets, producing answers bit-identical to a run
that never crashed.

See ``docs/connectors.md`` for the full lifecycle and the exactly-once
contract.
"""

from repro.connectors.base import SourceBatch, SourceProtocol, rows_to_columns
from repro.connectors.driver import DriverCheckpoint, PipelineDriver
from repro.connectors.file_tail import FileTailSource
from repro.connectors.firehose import FirehoseServer, SocketFirehoseSource
from repro.connectors.log import LogSource

__all__ = [
    "SourceBatch",
    "SourceProtocol",
    "rows_to_columns",
    "LogSource",
    "FileTailSource",
    "FirehoseServer",
    "SocketFirehoseSource",
    "DriverCheckpoint",
    "PipelineDriver",
]
