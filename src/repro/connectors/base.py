"""The source contract every streaming connector implements.

A *source* is a partitioned, offset-addressable supplier of timestamped
rows.  The contract is deliberately Kafka-shaped:

* :meth:`SourceProtocol.partitions` names the partitions (stable string
  ids — a log partition, a tailed file, a firehose channel);
* :meth:`SourceProtocol.poll` reads up to ``max_rows`` rows of one
  partition **starting at an explicit offset** and returns them as a
  :class:`SourceBatch` carrying the offset to resume from.

Offsets are owned by the *consumer*, never the source: the same
``(partition, offset)`` poll always returns the same rows (until the
partition is truncated, which polls refuse with
:class:`~repro.errors.StaleOffsetError`).  That one property is what
makes exactly-once resume possible — the pipeline driver records its
per-partition offsets inside the :mod:`repro.io` checkpoint frame next
to the sketch state, and a restart simply re-polls from the recorded
positions, replaying the stream bit-identically.

Rows are ``(item, weight, timestamp)`` triples — the same shape the
timestamped generators in :mod:`repro.streams.generators` produce and
windowed sessions consume — but a :class:`SourceBatch` stores them as
three parallel columns so a batch can flow straight into
``update_batch(items, weights, timestamps)`` without a transpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Protocol, Sequence, Tuple, runtime_checkable

from repro._typing import Item
from repro.errors import InvalidParameterError

__all__ = ["SourceBatch", "SourceProtocol", "rows_to_columns"]


def rows_to_columns(
    rows: Iterable[Tuple[Item, float, float]],
) -> Tuple[List[Item], List[float], List[float]]:
    """Split ``(item, weight, ts)`` triples into the three batch columns."""
    items: List[Item] = []
    weights: List[float] = []
    timestamps: List[float] = []
    for item, weight, ts in rows:
        items.append(item)
        weights.append(float(weight))
        timestamps.append(float(ts))
    return items, weights, timestamps


@dataclass(frozen=True)
class SourceBatch:
    """One poll's worth of rows from one partition.

    ``next_offset`` is the offset to poll next — equal to the polled
    offset when the batch is empty (the partition had nothing new), and
    strictly greater otherwise.  The three columns are always the same
    length.
    """

    partition: str
    items: List[Item] = field(default_factory=list)
    weights: List[float] = field(default_factory=list)
    timestamps: List[float] = field(default_factory=list)
    next_offset: int = 0

    def __post_init__(self) -> None:
        if not (len(self.items) == len(self.weights) == len(self.timestamps)):
            raise InvalidParameterError(
                "SourceBatch columns must align: "
                f"{len(self.items)} items, {len(self.weights)} weights, "
                f"{len(self.timestamps)} timestamps"
            )

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    @classmethod
    def from_rows(
        cls,
        partition: str,
        rows: Iterable[Tuple[Item, float, float]],
        next_offset: int,
    ) -> "SourceBatch":
        """Build a batch from ``(item, weight, ts)`` triples."""
        items, weights, timestamps = rows_to_columns(rows)
        return cls(
            partition=partition,
            items=items,
            weights=weights,
            timestamps=timestamps,
            next_offset=next_offset,
        )


@runtime_checkable
class SourceProtocol(Protocol):
    """What the pipeline driver requires of a streaming source.

    Implementations must make :meth:`poll` **deterministic in its
    arguments**: polling ``(partition, offset)`` twice returns the same
    rows, and a poll at an offset past the partition's current end
    raises :class:`~repro.errors.StaleOffsetError` instead of inventing
    data.  Polling an unknown partition raises
    :class:`~repro.errors.UnknownPartitionError`.
    """

    def partitions(self) -> Sequence[str]:
        """The stable partition ids this source holds, in stable order."""
        ...

    def poll(self, partition: str, offset: int, max_rows: int) -> SourceBatch:
        """Read up to ``max_rows`` rows of ``partition`` from ``offset``."""
        ...
