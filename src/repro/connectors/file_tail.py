"""A file-tailing connector: one growing JSON-lines file as a source.

:class:`FileTailSource` reads timestamped rows from an append-only
JSON-lines file — the classic "tail the event log" integration.  Each
line is one record::

    {"item": "ad-17", "weight": 1.0, "ts": 12.5}

``item`` travels through the same :func:`repro.io.codec.encode_item`
encoding the wire protocol uses, so tuple labels survive; ``weight`` and
``ts`` default to ``1.0`` / ``0.0`` when omitted.

The file is a single partition whose **offset is a byte position**, so a
resumed consumer seeks straight to where it stopped — no line counting,
no re-reading the prefix.  A poll returns only *complete* lines: a
partial line still being written at the end of the file stays unread
until its newline arrives (tail semantics), which keeps every returned
batch replayable.  If the file shrinks below a recorded offset the poll
raises :class:`~repro.errors.StaleOffsetError` — the file was truncated
or rotated, and resuming from the stale byte position would decode
garbage.

:meth:`FileTailSource.write_rows` is the matching producer helper (used
by tests and the soak bench to stage workloads on disk).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Sequence, Tuple

from repro._typing import Item
from repro.errors import (
    ConnectorError,
    InvalidParameterError,
    StaleOffsetError,
    UnknownPartitionError,
)
from repro.io.codec import decode_item, encode_item
from repro.connectors.base import SourceBatch

__all__ = ["FileTailSource"]

Row = Tuple[Item, float, float]


class FileTailSource:
    """Tail one JSON-lines file of ``(item, weight, ts)`` records.

    Parameters
    ----------
    path:
        The file to tail.  It does not need to exist yet — polls before
        creation return empty batches at offset 0.
    partition:
        The partition id this source reports; defaults to the file name.
    """

    def __init__(self, path, *, partition: str | None = None) -> None:
        self._path = Path(path)
        self._partition = partition if partition is not None else self._path.name

    @property
    def path(self) -> Path:
        return self._path

    # ------------------------------------------------------------------
    # Producer helper
    # ------------------------------------------------------------------
    def write_rows(self, rows: Iterable[Row]) -> int:
        """Append rows to the tailed file as JSON lines; returns rows written."""
        count = 0
        with self._path.open("a", encoding="utf-8") as handle:
            for item, weight, ts in rows:
                record = {
                    "item": encode_item(item),
                    "weight": float(weight),
                    "ts": float(ts),
                }
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
                count += 1
        return count

    # ------------------------------------------------------------------
    # SourceProtocol surface
    # ------------------------------------------------------------------
    def partitions(self) -> Sequence[str]:
        return [self._partition]

    def poll(self, partition: str, offset: int, max_rows: int) -> SourceBatch:
        if partition != self._partition:
            raise UnknownPartitionError(
                f"file source tails partition {self._partition!r}, "
                f"not {partition!r}"
            )
        if offset < 0:
            raise InvalidParameterError(f"offset must be >= 0, got {offset}")
        if max_rows < 1:
            raise InvalidParameterError(f"max_rows must be >= 1, got {max_rows}")
        if not self._path.exists():
            if offset > 0:
                raise StaleOffsetError(
                    f"offset {offset} recorded for {self._path}, but the "
                    "file no longer exists: it was rotated or deleted; "
                    "re-seed the consumer"
                )
            return SourceBatch(partition=partition, next_offset=0)
        size = os.path.getsize(self._path)
        if offset > size:
            raise StaleOffsetError(
                f"offset {offset} is past the end of {self._path} "
                f"({size} bytes): the file was truncated since the offset "
                "was recorded; re-seed the consumer"
            )
        rows = []
        with self._path.open("rb") as handle:
            handle.seek(offset)
            position = offset
            while len(rows) < max_rows:
                line = handle.readline()
                if not line.endswith(b"\n"):
                    break  # incomplete tail line: wait for its newline
                position += len(line)
                stripped = line.strip()
                if stripped:
                    rows.append(self._decode_record(stripped, position))
        return SourceBatch.from_rows(partition, rows, position)

    @staticmethod
    def _decode_record(line: bytes, position: int) -> Row:
        try:
            record = json.loads(line.decode("utf-8"))
            item = decode_item(record["item"])
        except (ValueError, KeyError, UnicodeDecodeError) as error:
            raise ConnectorError(
                f"malformed JSON-lines record ending at byte {position}: {error}"
            ) from error
        return (
            item,
            float(record.get("weight", 1.0)),
            float(record.get("ts", 0.0)),
        )

    def __repr__(self) -> str:
        return f"FileTailSource({str(self._path)!r})"
