"""The mini-batch pipeline driver: source → served session, exactly once.

:class:`PipelineDriver` is the Spark-DStream-shaped piece that turns a
passive :class:`~repro.connectors.base.SourceProtocol` into a live
pipeline.  Each **tick** polls every partition once (up to
``batch_rows`` rows each), pushes the batches into a served session
through a :class:`~repro.serve.client.ServeClient` or
:class:`~repro.serve.client.TCPServeClient`, and — critically — commits
a partition's offset only *after* its rows have been flushed through the
session's single-writer queue.  At every point the driver can observe,
its offset table therefore describes exactly the rows the sketch has
absorbed.

**The exactly-once contract.**  :meth:`PipelineDriver.checkpoint` writes
one :mod:`repro.io` envelope (a :class:`DriverCheckpoint`) holding the
per-partition offset table *next to* the session's serialized sketch
frame — which itself carries the sketch's RNG state.  Because offsets
and sketch state travel in the same atomically-replaced frame, a crash
can never separate them: :meth:`PipelineDriver.restore` re-adopts the
sketch frame into a (fresh or surviving) server and resumes polling from
the recorded offsets, so every row between the checkpoint and the crash
is replayed exactly once and the resumed run is **bit-identical** to an
uninterrupted one — the same guarantee the mid-stream restore tests pin
for bare sketches, extended to the whole pipeline.

A source whose partition rewound underneath its recorded offset (log
truncation, file rotation) fails the first resumed poll with
:class:`~repro.errors.StaleOffsetError` rather than replaying from a
position that no longer means anything.
"""

from __future__ import annotations

from typing import Any, Awaitable, Callable, Dict, Optional

import numpy as np

from repro.errors import ConnectorError, InvalidParameterError, SerializationError
from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.io.serializable import SerializableSketch
from repro.connectors.base import SourceProtocol

__all__ = ["DriverCheckpoint", "PipelineDriver"]

#: Default tenant name; kept literal so :mod:`repro.connectors` imports
#: without dragging in the serving layer (it matches
#: :data:`repro.serve.registry.DEFAULT_TENANT`).
_DEFAULT_TENANT = "default"


class DriverCheckpoint(SerializableSketch):
    """One pipeline checkpoint: per-partition offsets + the sketch frame.

    Serialized through the standard :mod:`repro.io` envelope (and
    registered with the type registry, so ``repro.io.load_bytes`` /
    :func:`repro.io.load_checkpoint` dispatch it like any sketch
    payload): the offset manifest, tick/row counters and session
    identity ride in the envelope's ``meta`` header, while the session's
    own serialized frame — a complete nested envelope, RNG state
    included — rides as the ``frame`` byte array next to it.
    """

    def __init__(
        self,
        *,
        offsets: Dict[str, int],
        frame: bytes,
        session: str,
        tenant: str = _DEFAULT_TENANT,
        spec: Optional[str] = None,
        backend: Optional[str] = None,
        rows_applied: int = 0,
        ticks: int = 0,
        rows_ingested: int = 0,
        tick_cursor: Optional[str] = None,
    ) -> None:
        self.offsets = {str(key): int(value) for key, value in offsets.items()}
        for partition, offset in self.offsets.items():
            if offset < 0:
                raise InvalidParameterError(
                    f"offset for partition {partition!r} must be >= 0, "
                    f"got {offset}"
                )
        self.frame = bytes(frame)
        self.session = str(session)
        self.tenant = str(tenant)
        self.spec = spec
        self.backend = backend
        self.rows_applied = int(rows_applied)
        self.ticks = int(ticks)
        self.rows_ingested = int(rows_ingested)
        #: Last partition committed in the in-progress tick (``None`` at a
        #: tick boundary).  A restore resumes the interrupted tick *after*
        #: this partition, so the resumed run's partition interleave — and
        #: therefore the sketch's row order and RNG draws — is identical
        #: to an uninterrupted run's.
        self.tick_cursor = None if tick_cursor is None else str(tick_cursor)

    # -- repro.io serialization hooks ----------------------------------
    def _serial_state(self):
        meta = {
            "offsets": self.offsets,
            "session": self.session,
            "tenant": self.tenant,
            "spec": self.spec,
            "backend": self.backend,
            "rows_applied": self.rows_applied,
            "ticks": self.ticks,
            "rows_ingested": self.rows_ingested,
            "tick_cursor": self.tick_cursor,
        }
        arrays = {"frame": np.frombuffer(self.frame, dtype=np.uint8)}
        return meta, arrays

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        frame = arrays.get("frame")
        if frame is None:
            raise SerializationError(
                "driver checkpoint payload is missing its sketch frame"
            )
        return cls(
            offsets=dict(meta.get("offsets", {})),
            frame=np.asarray(frame, dtype=np.uint8).tobytes(),
            session=meta.get("session", "pipeline"),
            tenant=meta.get("tenant", _DEFAULT_TENANT),
            spec=meta.get("spec"),
            backend=meta.get("backend"),
            rows_applied=meta.get("rows_applied", 0),
            ticks=meta.get("ticks", 0),
            rows_ingested=meta.get("rows_ingested", 0),
            tick_cursor=meta.get("tick_cursor"),
        )

    def __repr__(self) -> str:
        return (
            f"DriverCheckpoint(session={self.tenant!r}/{self.session!r}, "
            f"ticks={self.ticks}, rows={self.rows_ingested}, "
            f"offsets={self.offsets})"
        )


class PipelineDriver:
    """Pull batches from a source into a served session, tick by tick.

    Parameters
    ----------
    source:
        Any :class:`~repro.connectors.base.SourceProtocol`.
    client:
        A :class:`~repro.serve.client.ServeClient` or
        :class:`~repro.serve.client.TCPServeClient`; the driver only uses
        the shared method surface (``update_batch`` / ``flush`` /
        ``info`` / ``export`` / ``adopt``), so it is transparent to
        whether the session lives in process or across a socket.
    session, tenant:
        The served session the pipeline feeds.  It must already exist
        (create it through the client, or arrive via :meth:`restore`).
    batch_rows:
        Maximum rows polled from each partition per tick.
    checkpoint_path:
        Where :meth:`checkpoint` writes the offset+frame envelope
        (``None`` disables checkpointing; :meth:`run` then never
        checkpoints).
    checkpoint_every:
        Ticks between automatic checkpoints during :meth:`run`.
    on_partition_applied:
        Optional async hook ``(partition, rows)`` awaited after a
        partition's batch has been applied **and its offset committed**
        — the safe points where a mid-tick checkpoint observes a
        consistent (sketch, offsets) pair.  Tests use it to kill or
        checkpoint the driver mid-tick.
    with_timestamps:
        Whether batches carry their timestamps into ``update_batch``.
        The default (``None``) asks the served session: windowed
        sessions get timestamped rows, plain ones get (item, weight)
        pairs — a plain session *rejects* timestamped batches, and the
        serving layer's poison-batch isolation would swallow them.

    The driver assumes it is the session's only writer: after every
    flush it checks the server's applied-row counter advanced by
    exactly the batch it sent, and raises
    :class:`~repro.errors.ConnectorError` on any shortfall (a poison
    batch the serving layer dropped, or a concurrent writer) instead of
    committing an offset the sketch never absorbed.
    """

    def __init__(
        self,
        source: SourceProtocol,
        client,
        *,
        session: str,
        tenant: str = _DEFAULT_TENANT,
        batch_rows: int = 1_000,
        checkpoint_path=None,
        checkpoint_every: int = 1,
        on_partition_applied: Optional[
            Callable[[str, int], Awaitable[None]]
        ] = None,
        with_timestamps: Optional[bool] = None,
    ) -> None:
        if batch_rows < 1:
            raise InvalidParameterError(
                f"batch_rows must be >= 1, got {batch_rows}"
            )
        if checkpoint_every < 1:
            raise InvalidParameterError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._source = source
        self._client = client
        self._session = str(session)
        self._tenant = str(tenant)
        self._batch_rows = int(batch_rows)
        self._checkpoint_path = checkpoint_path
        self._checkpoint_every = int(checkpoint_every)
        self._on_partition_applied = on_partition_applied
        self._with_timestamps = with_timestamps
        #: Server-side applied-row counter after the last verified flush;
        #: resolved from ``info()`` on the first tick.
        self._applied_rows: Optional[int] = None
        #: Last partition committed in the current tick (``None`` between
        #: ticks).  Checkpointed, so a restore finishes the interrupted
        #: tick from the next partition instead of starting the sweep
        #: over — which would reorder rows relative to an uninterrupted
        #: run and break bit-identical resume.
        self._tick_cursor: Optional[str] = None
        #: Committed per-partition offsets: rows at positions below the
        #: offset have been applied (and flushed) to the session.
        self.offsets: Dict[str, int] = {
            partition: 0 for partition in source.partitions()
        }
        self.ticks = 0
        self.rows_ingested = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def session(self) -> str:
        return self._session

    @property
    def tenant(self) -> str:
        return self._tenant

    @property
    def checkpoint_path(self):
        return self._checkpoint_path

    def describe(self) -> Dict[str, Any]:
        """The driver's progress snapshot (JSON-safe)."""
        return {
            "session": self._session,
            "tenant": self._tenant,
            "ticks": self.ticks,
            "rows_ingested": self.rows_ingested,
            "offsets": dict(self.offsets),
            "batch_rows": self._batch_rows,
        }

    def __repr__(self) -> str:
        return (
            f"PipelineDriver(session={self._tenant!r}/{self._session!r}, "
            f"ticks={self.ticks}, rows={self.rows_ingested})"
        )

    # ------------------------------------------------------------------
    # The mini-batch loop
    # ------------------------------------------------------------------
    async def _resolve_session_profile(self) -> None:
        """First-contact handshake: window mode + applied-row baseline.

        One ``info()`` round trip answers both lazily-resolved facts:
        whether the session is windowed (and therefore wants timestamped
        batches), and how many rows the server has already applied — the
        baseline the per-flush integrity check advances from.
        """
        if self._with_timestamps is not None and self._applied_rows is not None:
            return
        info = await self._client.info(self._session, tenant=self._tenant)
        if self._with_timestamps is None:
            self._with_timestamps = info.get("window") is not None
        if self._applied_rows is None:
            serving = info.get("serving") or {}
            self._applied_rows = int(serving.get("rows_applied", 0))

    async def tick(self) -> int:
        """Poll every partition once and apply what arrived; returns rows.

        Partitions are visited in sorted order (determinism: a resumed
        run interleaves partitions exactly as the original did).  For
        each partition the sequence is poll → ``update_batch`` →
        ``flush`` → commit offset, with no suspension point between the
        flush completing and the commit — so whenever control is yielded
        (including to the ``on_partition_applied`` hook), ``offsets``
        exactly matches the session's applied rows.
        """
        await self._resolve_session_profile()
        rows_this_tick = 0
        resume_after = self._tick_cursor
        for partition in sorted(self._source.partitions()):
            if resume_after is not None and partition <= resume_after:
                continue  # already committed by the interrupted tick
            offset = self.offsets.get(partition, 0)
            batch = self._source.poll(partition, offset, self._batch_rows)
            if batch:
                await self._client.update_batch(
                    self._session,
                    batch.items,
                    batch.weights,
                    batch.timestamps if self._with_timestamps else None,
                    tenant=self._tenant,
                )
                applied = await self._client.flush(
                    self._session, tenant=self._tenant
                )
                expected = self._applied_rows + len(batch)
                if int(applied) != expected:
                    raise ConnectorError(
                        f"exactly-once violated on partition {partition!r}: "
                        f"expected {expected} applied rows after the flush, "
                        f"server reports {applied} — a batch was dropped "
                        "server-side or another writer shares this session; "
                        "the offset was NOT committed"
                    )
                self._applied_rows = expected
                self.offsets[partition] = batch.next_offset
                self.rows_ingested += len(batch)
                rows_this_tick += len(batch)
            else:
                self.offsets[partition] = batch.next_offset
            self._tick_cursor = partition
            if self._on_partition_applied is not None:
                await self._on_partition_applied(partition, len(batch))
        self._tick_cursor = None
        self.ticks += 1
        return rows_this_tick

    async def run(
        self, *, max_ticks: Optional[int] = None, final_checkpoint: bool = True
    ) -> Dict[str, Any]:
        """Tick until the source is drained (or ``max_ticks`` elapsed).

        A tick in which *every* partition returns an empty batch means
        the pipeline has caught up with the source; the loop then stops.
        With a ``checkpoint_path`` configured, a checkpoint is written
        every ``checkpoint_every`` ticks and (with ``final_checkpoint``)
        once more after the last tick, so a subsequent :meth:`restore`
        resumes at the drained frontier.  Returns :meth:`describe`.
        """
        ran = 0
        while max_ticks is None or ran < max_ticks:
            # A tick resumed mid-sweep only covers the partitions after
            # the cursor; its row count says nothing about the ones the
            # interrupted tick already handled, so it cannot end the run.
            partial = self._tick_cursor is not None
            rows = await self.tick()
            ran += 1
            if self._checkpoint_path is not None and (
                self.ticks % self._checkpoint_every == 0
            ):
                await self.checkpoint()
            if rows == 0 and not partial:
                break
        if final_checkpoint and self._checkpoint_path is not None:
            await self.checkpoint()
        return self.describe()

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    async def checkpoint(self, path=None) -> DriverCheckpoint:
        """Write the (offsets, sketch frame) envelope atomically.

        The session is flushed first, so the exported frame covers every
        committed row; the offset table snapshot and the frame therefore
        describe the same stream position.  Returns the checkpoint
        object written (``path`` defaults to the configured
        ``checkpoint_path``).
        """
        target = path if path is not None else self._checkpoint_path
        if target is None:
            raise InvalidParameterError(
                "no checkpoint path: pass one here or configure "
                "checkpoint_path on the driver"
            )
        await self._client.flush(self._session, tenant=self._tenant)
        export = await self._client.export(self._session, tenant=self._tenant)
        checkpoint = DriverCheckpoint(
            offsets=dict(self.offsets),
            frame=export["frame"],
            session=self._session,
            tenant=self._tenant,
            spec=export.get("spec"),
            backend=export.get("backend"),
            rows_applied=export.get("rows_applied", 0),
            ticks=self.ticks,
            rows_ingested=self.rows_ingested,
            tick_cursor=self._tick_cursor,
        )
        save_checkpoint(checkpoint, target)
        return checkpoint

    @classmethod
    async def restore(
        cls,
        path,
        source: SourceProtocol,
        client,
        *,
        batch_rows: int = 1_000,
        checkpoint_path=None,
        checkpoint_every: int = 1,
        on_partition_applied: Optional[
            Callable[[str, int], Awaitable[None]]
        ] = None,
    ) -> "PipelineDriver":
        """Rebuild a driver (and its served session) from a checkpoint.

        The sketch frame is re-adopted into the server behind ``client``
        under its original ``(tenant, session)`` key — RNG state and all
        — and the driver resumes from the recorded per-partition
        offsets.  Feeding the restored pipeline the remainder of the
        source produces answers bit-identical to a run that never
        crashed.  ``checkpoint_path`` defaults to ``path`` so the
        resumed driver keeps checkpointing where the original did.
        """
        checkpoint = load_checkpoint(path, expected_type=DriverCheckpoint)
        await client.adopt(
            checkpoint.session,
            checkpoint.frame,
            tenant=checkpoint.tenant,
            spec=checkpoint.spec,
            backend=checkpoint.backend,
            rows_applied=checkpoint.rows_applied,
        )
        driver = cls(
            source,
            client,
            session=checkpoint.session,
            tenant=checkpoint.tenant,
            batch_rows=batch_rows,
            checkpoint_path=checkpoint_path if checkpoint_path is not None else path,
            checkpoint_every=checkpoint_every,
            on_partition_applied=on_partition_applied,
        )
        # Recorded offsets win; partitions the source grew since the
        # checkpoint start at 0 (the dict comprehension in __init__
        # already seeded them).
        driver.offsets.update(checkpoint.offsets)
        driver.ticks = checkpoint.ticks
        driver.rows_ingested = checkpoint.rows_ingested
        driver._tick_cursor = checkpoint.tick_cursor
        return driver
