"""A socket-firehose connector: offset-addressed polls over TCP.

A naive socket feed ("connect and read whatever streams past") cannot
support exactly-once resume — rows seen during a crash are simply gone.
This connector therefore speaks a minimal *replayable* firehose
protocol: every poll is one JSON-lines request naming an explicit
``(partition, offset, max_rows)`` window, and the server — backed by any
:class:`~repro.connectors.base.SourceProtocol`, typically a
:class:`~repro.connectors.log.LogSource` retained on the producer side —
answers with exactly those rows.  Offsets stay consumer-owned, so the
pipeline driver's checkpointed positions replay bit-identically across
the socket just as they do in process.

* :class:`FirehoseServer` — a threaded TCP server exporting a local
  source (one request per connection; runs in a daemon thread so asyncio
  consumers never block it).
* :class:`SocketFirehoseSource` — the client side: a
  :class:`SourceProtocol` whose polls dial the server.  Typed offset
  errors (:class:`~repro.errors.StaleOffsetError`,
  :class:`~repro.errors.UnknownPartitionError`) re-raise locally.

Wire shapes (one JSON object per line)::

    -> {"op": "partitions"}
    <- {"partitions": ["p0", "p1"]}
    -> {"op": "poll", "partition": "p0", "offset": 128, "max_rows": 500}
    <- {"rows": [[item, weight, ts], ...], "next_offset": 628}
    <- {"error": {"type": "StaleOffsetError", "message": "..."}}
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Dict, Sequence, Tuple

from repro.errors import (
    ConnectorError,
    StaleOffsetError,
    UnknownPartitionError,
)
from repro.io.codec import decode_item, encode_item
from repro.connectors.base import SourceBatch, SourceProtocol

__all__ = ["FirehoseServer", "SocketFirehoseSource"]

#: Remote error type name -> local class; anything else raises the base
#: :class:`ConnectorError`.
_ERROR_TYPES = {
    "StaleOffsetError": StaleOffsetError,
    "UnknownPartitionError": UnknownPartitionError,
}

_MAX_REQUEST_BYTES = 1 << 16


class _FirehoseHandler(socketserver.StreamRequestHandler):
    """One request-response exchange per connection."""

    def handle(self) -> None:  # pragma: no cover - exercised via the source
        line = self.rfile.readline(_MAX_REQUEST_BYTES)
        if not line:
            return
        try:
            response = self._answer(json.loads(line.decode("utf-8")))
        except Exception as error:  # noqa: BLE001 - typed on the wire
            response = {
                "error": {
                    "type": type(error).__name__,
                    "message": str(error),
                }
            }
        payload = json.dumps(response, separators=(",", ":")) + "\n"
        self.wfile.write(payload.encode("utf-8"))

    def _answer(self, request: Dict[str, Any]) -> Dict[str, Any]:
        source: SourceProtocol = self.server.source  # type: ignore[attr-defined]
        op = request.get("op")
        if op == "partitions":
            return {"partitions": list(source.partitions())}
        if op == "poll":
            batch = source.poll(
                str(request["partition"]),
                int(request["offset"]),
                int(request["max_rows"]),
            )
            return {
                "rows": [
                    [encode_item(item), weight, ts]
                    for item, weight, ts in zip(
                        batch.items, batch.weights, batch.timestamps
                    )
                ],
                "next_offset": batch.next_offset,
            }
        raise ConnectorError(f"unknown firehose op {op!r}")


class FirehoseServer:
    """Export a local source over TCP for :class:`SocketFirehoseSource` polls.

    Usable as a context manager; ``address`` is the bound ``(host, port)``
    (port 0 picks an ephemeral one).  The accept loop runs in a daemon
    thread, so an asyncio pipeline driver polling through a
    :class:`SocketFirehoseSource` in the same process never deadlocks.
    """

    def __init__(
        self, source: SourceProtocol, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _FirehoseHandler)
        self._server.source = source  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"firehose:{self._server.server_address}",
            daemon=True,
        )

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "FirehoseServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> "FirehoseServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()


class SocketFirehoseSource:
    """A :class:`SourceProtocol` over a remote :class:`FirehoseServer`.

    Each poll is one short-lived connection (request, response, close),
    so the source holds no state between polls — crash-and-restart needs
    nothing but the consumer's recorded offsets.
    """

    def __init__(
        self, host: str, port: int, *, connect_timeout: float = 5.0
    ) -> None:
        self._host = str(host)
        self._port = int(port)
        self._timeout = float(connect_timeout)

    def partitions(self) -> Sequence[str]:
        response = self._request({"op": "partitions"})
        return [str(name) for name in response["partitions"]]

    def poll(self, partition: str, offset: int, max_rows: int) -> SourceBatch:
        response = self._request(
            {
                "op": "poll",
                "partition": partition,
                "offset": int(offset),
                "max_rows": int(max_rows),
            }
        )
        rows = [
            (decode_item(item), float(weight), float(ts))
            for item, weight, ts in response["rows"]
        ]
        return SourceBatch.from_rows(partition, rows, int(response["next_offset"]))

    def _request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        payload = json.dumps(request, separators=(",", ":")) + "\n"
        try:
            with socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            ) as conn:
                conn.sendall(payload.encode("utf-8"))
                with conn.makefile("rb") as reader:
                    line = reader.readline()
        except OSError as error:
            raise ConnectorError(
                f"firehose at {self._host}:{self._port} unreachable: {error}"
            ) from error
        if not line:
            raise ConnectorError(
                f"firehose at {self._host}:{self._port} closed without answering"
            )
        response = json.loads(line.decode("utf-8"))
        error = response.get("error")
        if error is not None:
            exc_class = _ERROR_TYPES.get(error.get("type"), ConnectorError)
            raise exc_class(error.get("message", "remote firehose error"))
        return response

    def __repr__(self) -> str:
        return f"SocketFirehoseSource({self._host!r}, {self._port})"
