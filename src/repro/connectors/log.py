"""A partitioned append-only log source (the Kafka-shaped connector).

:class:`LogSource` holds N named partitions of ``(item, weight, ts)``
records.  Producers ``append``/``extend`` rows — routed to a partition by
the package's stable label hash, so all rows of one item land in one
partition, mirroring how key-sharded serve sessions split the same
space — and consumers ``poll(partition, offset, max_rows)`` with offsets
they track themselves.  The log never advances a consumer's position:
the same poll always returns the same rows, which is the property the
exactly-once pipeline driver builds on.

``truncate`` models the failure the exactly-once contract must refuse:
a partition losing its tail (retention kicking in, a log being
recreated).  Polls at offsets past the new end raise
:class:`~repro.errors.StaleOffsetError` instead of silently resuming
from fabricated positions.

>>> source = LogSource(num_partitions=2, seed=7)
>>> source.extend([("a", 1.0, 0.5), ("b", 1.0, 1.0), ("a", 2.0, 2.0)])
3
>>> sorted(source.end_offsets().items())  # all of one item in one partition
[('p0', 1), ('p1', 2)]
>>> batch = source.poll("p1", 0, 10)
>>> (batch.items, batch.next_offset)
(['a', 'a'], 2)
>>> source.poll("p1", 2, 10).next_offset  # caught up: empty, same offset
2
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro._typing import Item
from repro.distributed.partition import stable_shard
from repro.errors import (
    InvalidParameterError,
    StaleOffsetError,
    UnknownPartitionError,
)
from repro.connectors.base import SourceBatch

__all__ = ["LogSource"]

Row = Tuple[Item, float, float]


class LogSource:
    """An in-memory partitioned append-only log implementing the source contract.

    Parameters
    ----------
    num_partitions:
        Partition count; partitions are named ``p0 .. p{n-1}``.  Sized to
        the serving tier's shard count in the usual deployment, so the
        hash route that picks a log partition is congruent with the one
        that picks a session shard.
    seed:
        Seed of the stable label hash routing appended rows.
    """

    def __init__(self, num_partitions: int = 1, *, seed: int = 0) -> None:
        if num_partitions < 1:
            raise InvalidParameterError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self._seed = int(seed)
        self._partitions: Dict[str, List[Row]] = {
            f"p{index}": [] for index in range(num_partitions)
        }

    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Row],
        *,
        num_partitions: int = 1,
        seed: int = 0,
    ) -> "LogSource":
        """A log pre-loaded with an existing timestamped stream."""
        source = cls(num_partitions, seed=seed)
        source.extend(rows)
        return source

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def append(
        self,
        item: Item,
        weight: float = 1.0,
        timestamp: float = 0.0,
        *,
        partition: Optional[str] = None,
    ) -> str:
        """Append one row; returns the partition it landed in.

        Without an explicit ``partition`` the row routes by the stable
        hash of its item, so a given item always lands in the same
        partition (and therefore replays in the same order).
        """
        if partition is None:
            index = stable_shard(item, len(self._partitions), seed=self._seed)
            partition = f"p{index}"
        self._log(partition).append((item, float(weight), float(timestamp)))
        return partition

    def extend(self, rows: Iterable[Row]) -> int:
        """Append many ``(item, weight, ts)`` rows; returns rows appended."""
        count = 0
        for item, weight, ts in rows:
            self.append(item, weight, ts)
            count += 1
        return count

    def truncate(self, partition: str, end_offset: int) -> None:
        """Drop every row of ``partition`` at or past ``end_offset``.

        Models retention/recreation: consumers holding offsets beyond the
        new end will have their next poll refused with
        :class:`~repro.errors.StaleOffsetError`.
        """
        if end_offset < 0:
            raise InvalidParameterError(
                f"end_offset must be >= 0, got {end_offset}"
            )
        log = self._log(partition)
        del log[end_offset:]

    # ------------------------------------------------------------------
    # Consumer side (the SourceProtocol surface)
    # ------------------------------------------------------------------
    def partitions(self) -> Sequence[str]:
        return sorted(self._partitions)

    def end_offsets(self) -> Dict[str, int]:
        """Current end offset (== row count) of every partition."""
        return {name: len(log) for name, log in self._partitions.items()}

    def poll(self, partition: str, offset: int, max_rows: int) -> SourceBatch:
        log = self._log(partition)
        if offset < 0:
            raise InvalidParameterError(f"offset must be >= 0, got {offset}")
        if max_rows < 1:
            raise InvalidParameterError(f"max_rows must be >= 1, got {max_rows}")
        if offset > len(log):
            raise StaleOffsetError(
                f"offset {offset} is past the end of partition "
                f"{partition!r} (end offset {len(log)}): the partition "
                "rewound since the offset was recorded; re-seed the "
                "consumer instead of replaying from a stale position"
            )
        rows = log[offset : offset + max_rows]
        return SourceBatch.from_rows(partition, rows, offset + len(rows))

    def _log(self, partition: str) -> List[Row]:
        try:
            return self._partitions[partition]
        except KeyError:
            raise UnknownPartitionError(
                f"source has no partition {partition!r} "
                f"(partitions: {sorted(self._partitions)})"
            ) from None

    def __repr__(self) -> str:
        sizes = ", ".join(
            f"{name}:{len(log)}" for name, log in sorted(self._partitions.items())
        )
        return f"LogSource({sizes})"
