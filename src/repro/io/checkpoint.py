"""File-backed checkpoint/restore for long-running streams.

A sketch consuming an unbounded stream should survive a process restart
without replaying the stream from the beginning.  The functions here wrap
the binary serialization contract in atomic file persistence:

* :func:`save_checkpoint` writes ``sketch.to_bytes()`` to a temporary
  sibling file and renames it over the target, so a crash mid-write never
  leaves a truncated checkpoint — the previous complete checkpoint (if
  any) stays intact.
* :func:`load_checkpoint` reads a checkpoint back, either through a
  specific class (validating the payload type) or through the registry
  when the caller does not know what was saved.

Because serialized payloads carry the RNG state, restoring a *seeded*
sketch and feeding it the rest of the stream produces exactly the state
an uninterrupted run would have reached — the epoch-stream integration
tests assert this bit-for-bit.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path
from typing import Any, Optional, Type

from repro.errors import SerializationError
from repro.io.registry import load_bytes

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(sketch: Any, path) -> Path:
    """Atomically persist ``sketch`` (any serializable sketch) to ``path``.

    Returns the path written.  The parent directory is created if needed.
    The frame is staged under a unique temporary name in the target's
    directory (so concurrent writers cannot clobber each other's staging
    file), fsynced, and renamed over the target in one step.
    """
    to_bytes = getattr(sketch, "to_bytes", None)
    if to_bytes is None:
        raise SerializationError(
            f"{type(sketch).__name__} does not implement the serialization "
            "contract (no to_bytes method)"
        )
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    # A per-writer unique staging name (O_EXCL) keeps concurrent
    # checkpointers of the same path from clobbering each other's staging
    # file; opening with mode 0o666 lets the process umask apply as a plain
    # open() would, without mutating any global state.
    staging_name = str(target) + f".{os.getpid()}.{uuid.uuid4().hex}.tmp"
    descriptor = os.open(
        staging_name, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666
    )
    try:
        with os.fdopen(descriptor, "wb") as staging:
            staging.write(to_bytes())
            staging.flush()
            os.fsync(staging.fileno())
        os.replace(staging_name, target)
    except BaseException:
        try:
            os.unlink(staging_name)
        except OSError:
            pass
        raise
    return target


def load_checkpoint(path, *, expected_type: Optional[Type] = None) -> Any:
    """Restore a sketch from a checkpoint file.

    Parameters
    ----------
    path:
        The checkpoint file written by :func:`save_checkpoint`.
    expected_type:
        When given, the payload must have been produced by this class
        (``expected_type.from_bytes`` validates and loads it); when
        ``None`` the registry dispatches on the payload's type field.
    """
    data = Path(path).read_bytes()
    if expected_type is not None:
        return expected_type.from_bytes(data)
    return load_bytes(data)
