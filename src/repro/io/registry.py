"""Type-dispatched loading of serialized sketch payloads.

A payload names the class that produced it, so a reader that does not know
the type in advance (a checkpoint directory, a message queue of shard
states) can route it through this registry: :func:`load_bytes` and
:func:`load_dict` peek at the envelope's ``type`` field and hand the state
to the right class.

The registry maps type names to module paths and resolves them lazily, so
importing :mod:`repro.io` never drags in every sketch module (and the
sketch modules can import the serialization mixin without a cycle).
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, Type

from repro.errors import SerializationError
from repro.io.codec import envelope_from_dict, unpack_envelope

__all__ = ["load_bytes", "load_dict", "resolve_sketch_type", "registered_types"]

#: type name -> module defining it.  Every class listed here mixes in
#: :class:`repro.io.serializable.SerializableSketch`.
_SKETCH_MODULES: Dict[str, str] = {
    "UnbiasedSpaceSaving": "repro.core.unbiased_space_saving",
    "DeterministicSpaceSaving": "repro.core.deterministic_space_saving",
    "MisraGriesSketch": "repro.frequent.misra_gries",
    "CountMinSketch": "repro.frequent.countmin",
    "CountSketch": "repro.frequent.count_sketch",
    "LossyCountingSketch": "repro.frequent.lossy_counting",
    "StickySamplingSketch": "repro.frequent.sticky_sampling",
    "BottomKSketch": "repro.sampling.bottom_k",
    "PrioritySample": "repro.sampling.priority",
    "StreamingPrioritySampler": "repro.sampling.priority",
    "ReservoirSampler": "repro.sampling.reservoir",
    "ShardedSketch": "repro.distributed.sharded",
    "ParallelSketchExecutor": "repro.distributed.parallel",
    "TumblingWindowSketch": "repro.windows.windowed",
    "SlidingWindowSketch": "repro.windows.windowed",
    "DecayedWindowSketch": "repro.windows.decayed",
    # Not a sketch, but the same envelope contract: the pipeline driver's
    # checkpoint frame (per-partition offset manifest + nested sketch
    # frame), so checkpoint directories mixing sketches and driver
    # frames stay loadable through one dispatcher.
    "DriverCheckpoint": "repro.connectors.driver",
}


def registered_types() -> Dict[str, str]:
    """Snapshot of the ``type name -> module`` registry."""
    return dict(_SKETCH_MODULES)


def resolve_sketch_type(type_name: str) -> Type:
    """Import and return the class registered under ``type_name``."""
    module_path = _SKETCH_MODULES.get(type_name)
    if module_path is None:
        raise SerializationError(
            f"unknown sketch type {type_name!r}; "
            f"registered types: {sorted(_SKETCH_MODULES)}"
        )
    module = importlib.import_module(module_path)
    return getattr(module, type_name)


def load_bytes(data: bytes) -> Any:
    """Reconstruct a sketch from a binary envelope of any registered type."""
    type_name, _, meta, arrays = unpack_envelope(data)
    cls = resolve_sketch_type(type_name)
    return cls._from_serial_state(meta, arrays)


def load_dict(payload: Dict[str, Any]) -> Any:
    """Reconstruct a sketch from a dict envelope of any registered type."""
    type_name, _, meta, arrays = envelope_from_dict(payload)
    cls = resolve_sketch_type(type_name)
    return cls._from_serial_state(meta, arrays)
