"""The serialization contract mixed into every serializable sketch.

:class:`SerializableSketch` turns the two hooks a sketch implements —
``_serial_state()`` and ``_from_serial_state()`` — into the full public
round-trip API:

* ``to_bytes()`` / ``from_bytes(data)`` — versioned binary frames with a
  numpy fast path for counter arrays (see :mod:`repro.io.codec`);
* ``to_dict()`` / ``from_dict(payload)`` — the JSON-compatible dict form
  of the same envelope;
* ``save_checkpoint(path)`` / ``load_checkpoint(path)`` — atomic
  file-backed persistence for long streams.

The contract both directions must honor: a deserialized sketch answers
every query (point estimates, subset sums, heavy hitters) bit-identically
to the instance that produced the payload, and — because the RNG state
rides along — a *seeded* sketch continues ingesting the remainder of its
stream exactly as the original would have.

``from_bytes``/``from_dict`` called on a concrete class insist the payload
was produced by that class; use :func:`repro.io.load_bytes` or
:func:`repro.io.load_dict` when the type is not known in advance.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple, Type, TypeVar

import numpy as np

from repro.errors import SerializationError
from repro.io.codec import (
    envelope_from_dict,
    envelope_to_dict,
    pack_envelope,
    unpack_envelope,
)

__all__ = ["SerializableSketch"]

S = TypeVar("S", bound="SerializableSketch")


class SerializableSketch:
    """Mixin providing the versioned ``to_bytes``/``from_bytes`` contract."""

    # -- hooks implemented by each sketch --------------------------------
    def _serial_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """Reduce the sketch to ``(meta, arrays)``.

        ``meta`` must be JSON-safe (item labels passed through
        :func:`repro.io.codec.encode_item`); ``arrays`` holds the bulky
        numeric state as named numpy arrays.
        """
        raise NotImplementedError

    @classmethod
    def _from_serial_state(
        cls: Type[S], meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> S:
        """Rebuild a live sketch from the output of :meth:`_serial_state`."""
        raise NotImplementedError

    # -- public round-trip API -------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the versioned binary envelope."""
        meta, arrays = self._serial_state()
        return pack_envelope(type(self).__name__, meta, arrays)

    @classmethod
    def from_bytes(cls: Type[S], data: bytes) -> S:
        """Reconstruct a sketch of this class from :meth:`to_bytes` output."""
        type_name, _, meta, arrays = unpack_envelope(data)
        cls._check_payload_type(type_name)
        return cls._from_serial_state(meta, arrays)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to the JSON-compatible dict envelope."""
        meta, arrays = self._serial_state()
        return envelope_to_dict(type(self).__name__, meta, arrays)

    @classmethod
    def from_dict(cls: Type[S], payload: Dict[str, Any]) -> S:
        """Reconstruct a sketch of this class from :meth:`to_dict` output."""
        type_name, _, meta, arrays = envelope_from_dict(payload)
        cls._check_payload_type(type_name)
        return cls._from_serial_state(meta, arrays)

    @classmethod
    def _check_payload_type(cls, type_name: str) -> None:
        if type_name != cls.__name__:
            raise SerializationError(
                f"payload holds a {type_name}, not a {cls.__name__}; "
                "use repro.io.load_bytes / load_dict for type-dispatched loading"
            )

    # -- checkpointing ----------------------------------------------------
    def save_checkpoint(self, path) -> None:
        """Atomically write this sketch's binary state to ``path``."""
        from repro.io.checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @classmethod
    def load_checkpoint(cls: Type[S], path) -> S:
        """Load a checkpoint previously written by a sketch of this class."""
        from repro.io.checkpoint import load_checkpoint

        return load_checkpoint(path, expected_type=cls)
