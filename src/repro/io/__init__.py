"""Sketch serialization: versioned round-trips across process boundaries.

The paper's mergeability result only pays off operationally once sketch
state can *leave* the process that built it — shipped from mappers to a
reducer, checkpointed to disk, or round-tripped through a message queue.
This package is that layer:

* :mod:`repro.io.codec` — the versioned envelope format (binary frames
  with a numpy fast path for counter arrays; a JSON-compatible dict twin).
* :mod:`repro.io.serializable` — the :class:`SerializableSketch` mixin
  giving every sketch ``to_bytes``/``from_bytes``/``to_dict``/``from_dict``
  plus checkpoint helpers.
* :mod:`repro.io.registry` — :func:`load_bytes` / :func:`load_dict`,
  which dispatch a payload to the class that produced it.
* :mod:`repro.io.checkpoint` — atomic :func:`save_checkpoint` /
  :func:`load_checkpoint` for long-running streams.

Round-trip guarantee: a deserialized sketch answers every query
bit-identically to the original, and a seeded sketch continues its stream
exactly as the original would have (the RNG state travels with it).
"""

from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.io.codec import SCHEMA_VERSION
from repro.io.registry import load_bytes, load_dict, registered_types, resolve_sketch_type
from repro.io.serializable import SerializableSketch

__all__ = [
    "SCHEMA_VERSION",
    "SerializableSketch",
    "load_bytes",
    "load_dict",
    "load_checkpoint",
    "save_checkpoint",
    "registered_types",
    "resolve_sketch_type",
]
