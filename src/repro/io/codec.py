"""Versioned sketch-state envelopes: the wire format of :mod:`repro.io`.

Every serializable sketch reduces its state to two pieces:

* ``meta`` — a JSON-safe dictionary of scalars, item labels and small
  lists (configuration, counters, RNG state);
* ``arrays`` — named numpy arrays holding the bulky numeric state
  (counter values, CountMin/Count Sketch tables, rank vectors).

This module packs those pieces into a self-describing envelope in two
interchangeable representations:

* **binary** (:func:`pack_envelope` / :func:`unpack_envelope`) — a magic
  prefix, a length-framed JSON header and the raw little-endian array
  buffers concatenated after it.  Counter arrays round-trip as straight
  ``ndarray.tobytes()`` blobs, so serializing a capacity-10⁵ sketch costs
  one JSON dump plus a few memcpys.
* **dict** (:func:`envelope_to_dict` / :func:`envelope_from_dict`) — a
  plain JSON-compatible dictionary with arrays expanded to lists, for
  debugging, logging and text-based transports.

Both carry a ``schema_version`` field.  Readers accept any version up to
:data:`SCHEMA_VERSION` (older layouts stay loadable as the format grows)
and refuse newer ones with a clear error instead of misparsing them.

Item labels are arbitrary hashable Python values, so they travel in the
JSON header through :func:`encode_item` / :func:`decode_item`, which
round-trip the types the streams actually produce — ``str``, ``int``,
``float``, ``bool``, ``None`` and arbitrarily nested tuples of those
(composite keys like ``(user, ad)``).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.errors import SerializationError

__all__ = [
    "SCHEMA_VERSION",
    "MAGIC",
    "encode_item",
    "decode_item",
    "rng_state_to_jsonable",
    "rng_state_from_jsonable",
    "pack_envelope",
    "unpack_envelope",
    "envelope_to_dict",
    "envelope_from_dict",
]

#: Current layout version written by this library.  Bump when the meaning
#: of ``meta`` / ``arrays`` entries changes; readers keep accepting every
#: older version.
SCHEMA_VERSION = 1

#: Leading magic of every binary envelope.
MAGIC = b"RPRO"

_HEADER_LEN = struct.Struct("<I")

#: ``(type_name, schema_version, meta, arrays)`` — one decoded envelope.
Envelope = Tuple[str, int, Dict[str, Any], Dict[str, np.ndarray]]


# ----------------------------------------------------------------------
# Item labels
# ----------------------------------------------------------------------
def encode_item(item: Any) -> Any:
    """Encode one item label into a JSON-safe value.

    Scalars (``str``, ``int``, ``float``, ``bool``, ``None``) pass through
    unchanged; tuples become ``{"__t__": [...]}`` markers so they decode
    back to tuples (JSON would silently turn them into lists, breaking
    hashability and equality with the live sketch's keys).  Numpy scalar
    labels (a sketch fed rows straight off an array) are lowered to their
    Python equivalents, which compare and hash identically.
    """
    if isinstance(item, np.generic):
        item = item.item()
    if item is None or isinstance(item, (bool, int, float, str)):
        return item
    if isinstance(item, tuple):
        return {"__t__": [encode_item(part) for part in item]}
    raise SerializationError(
        f"item labels of type {type(item).__name__!r} are not serializable; "
        "supported label types are str, int, float, bool, None and tuples thereof"
    )


def decode_item(payload: Any) -> Any:
    """Invert :func:`encode_item`."""
    if isinstance(payload, dict):
        if "__t__" in payload:
            return tuple(decode_item(part) for part in payload["__t__"])
        raise SerializationError(f"unrecognized encoded item {payload!r}")
    return payload


# ----------------------------------------------------------------------
# RNG state
# ----------------------------------------------------------------------
def rng_state_to_jsonable(state: Tuple[Any, ...]) -> List[Any]:
    """Flatten a ``random.Random.getstate()`` tuple into JSON-safe lists.

    Carrying the Mersenne Twister state across a checkpoint makes a
    restored seeded sketch continue its stream bit-identically to an
    uninterrupted run — every future label-replacement draw matches.
    """
    version, internal, gauss_next = state
    return [version, list(internal), gauss_next]


def rng_state_from_jsonable(payload: List[Any]) -> Tuple[Any, ...]:
    """Rebuild the tuple form ``random.Random.setstate`` expects."""
    version, internal, gauss_next = payload
    return (version, tuple(internal), gauss_next)


# ----------------------------------------------------------------------
# Envelope construction / validation
# ----------------------------------------------------------------------
def _check_schema_version(version: Any) -> int:
    if not isinstance(version, int) or version < 1:
        raise SerializationError(f"invalid schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise SerializationError(
            f"payload uses schema_version {version}, newer than the "
            f"supported version {SCHEMA_VERSION}; upgrade the library to load it"
        )
    return version


# ----------------------------------------------------------------------
# Binary representation
# ----------------------------------------------------------------------
def pack_envelope(
    type_name: str, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> bytes:
    """Pack one sketch state into the framed binary envelope."""
    descriptors = []
    buffers = []
    for name, array in arrays.items():
        contiguous = np.ascontiguousarray(array)
        descriptors.append(
            {
                "name": name,
                "dtype": contiguous.dtype.str,
                "shape": list(contiguous.shape),
                "nbytes": int(contiguous.nbytes),
            }
        )
        buffers.append(contiguous.tobytes())
    header = {
        "schema_version": SCHEMA_VERSION,
        "type": type_name,
        "meta": meta,
        "arrays": descriptors,
    }
    try:
        header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise SerializationError(f"sketch metadata is not JSON-safe: {error}") from error
    return b"".join(
        [MAGIC, _HEADER_LEN.pack(len(header_bytes)), header_bytes, *buffers]
    )


def unpack_envelope(data: bytes) -> Envelope:
    """Decode a binary envelope back into ``(type, version, meta, arrays)``.

    Array buffers are copied out of ``data`` so the reconstructed sketch
    owns writable storage regardless of where the bytes came from.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SerializationError(
            f"expected a bytes-like payload, got {type(data).__name__}"
        )
    data = bytes(data)
    prefix_len = len(MAGIC) + _HEADER_LEN.size
    if len(data) < prefix_len or data[: len(MAGIC)] != MAGIC:
        raise SerializationError("not a repro sketch payload (bad magic prefix)")
    (header_len,) = _HEADER_LEN.unpack_from(data, len(MAGIC))
    body_start = prefix_len + header_len
    if len(data) < body_start:
        raise SerializationError("truncated payload: incomplete header")
    try:
        header = json.loads(data[prefix_len:body_start].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SerializationError(f"corrupt payload header: {error}") from error
    version = _check_schema_version(header.get("schema_version"))
    type_name = header.get("type")
    if not isinstance(type_name, str):
        raise SerializationError("payload header is missing its sketch type")
    arrays: Dict[str, np.ndarray] = {}
    offset = body_start
    for descriptor in header.get("arrays", []):
        try:
            name = descriptor["name"]
            nbytes = int(descriptor["nbytes"])
            if nbytes < 0:
                raise SerializationError(
                    f"corrupt payload: negative size for array {name!r}"
                )
            if offset + nbytes > len(data):
                raise SerializationError(
                    f"truncated payload: array {name!r} is incomplete"
                )
            dtype = np.dtype(descriptor["dtype"])
            if dtype.itemsize == 0:
                raise SerializationError(
                    f"corrupt payload: zero-size dtype for array {name!r}"
                )
            count = nbytes // dtype.itemsize
            flat = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
            arrays[name] = flat.reshape(descriptor["shape"]).copy()
        except SerializationError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(
                f"corrupt payload: bad array descriptor {descriptor!r}: {error}"
            ) from error
        offset += nbytes
    return type_name, version, header.get("meta", {}), arrays


# ----------------------------------------------------------------------
# Dict representation
# ----------------------------------------------------------------------
def envelope_to_dict(
    type_name: str, meta: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> Dict[str, Any]:
    """Build the JSON-compatible dict form of one sketch state."""
    return {
        "schema_version": SCHEMA_VERSION,
        "type": type_name,
        "meta": meta,
        "arrays": {
            name: {
                "dtype": np.asarray(array).dtype.str,
                "shape": list(np.asarray(array).shape),
                "data": np.asarray(array).tolist(),
            }
            for name, array in arrays.items()
        },
    }


def envelope_from_dict(payload: Dict[str, Any]) -> Envelope:
    """Decode the dict form back into ``(type, version, meta, arrays)``."""
    if not isinstance(payload, dict):
        raise SerializationError(
            f"expected a dict payload, got {type(payload).__name__}"
        )
    version = _check_schema_version(payload.get("schema_version"))
    type_name = payload.get("type")
    if not isinstance(type_name, str):
        raise SerializationError("payload is missing its sketch type")
    arrays: Dict[str, np.ndarray] = {}
    for name, descriptor in payload.get("arrays", {}).items():
        try:
            arrays[name] = np.asarray(
                descriptor["data"], dtype=np.dtype(descriptor["dtype"])
            ).reshape(descriptor["shape"])
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(
                f"corrupt payload: bad array entry {name!r}: {error}"
            ) from error
    return type_name, version, payload.get("meta", {}), arrays
