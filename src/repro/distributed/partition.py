"""Stream partitioning strategies for distributed ingestion.

A distributed deployment splits the raw event stream across workers, each of
which builds its own sketch; the partitioning strategy determines what kind
of stream each worker sees.  Hash partitioning by item key gives each worker
an i.i.d.-like stream over a subset of items; round-robin gives each worker
a thinned copy of the global stream; partitioning by a sort key produces the
partially-sorted, pathological-for-Deterministic-Space-Saving streams that
§6.3 warns about (data "partitioned by some key where the partitions are
processed in order").  All three are implemented so the distributed tests
and benchmarks can exercise the friendly and unfriendly cases alike.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro._typing import Item
from repro.errors import InvalidParameterError

__all__ = [
    "hash_partition",
    "hash_partition_batch",
    "round_robin_partition",
    "key_range_partition",
    "stable_shard",
    "stable_hash_64",
]


def _stable_hash(item: Item, seed: int) -> int:
    digest = hashlib.blake2b(
        repr(item).encode("utf-8"),
        digest_size=8,
        key=seed.to_bytes(8, "little", signed=False),
    ).digest()
    return struct.unpack("<Q", digest)[0]


def stable_hash_64(item: Item, *, seed: int = 0) -> int:
    """The package's stable 64-bit label hash (keyed blake2b of ``repr``).

    This is the hash underneath :func:`stable_shard` and
    :func:`hash_partition_batch`, exposed directly for consumers that
    need raw ring positions rather than modular shard indices — the
    cluster tier's consistent-hash ring
    (:class:`repro.cluster.membership.HashRing`) places both members and
    keys with it.  Deterministic across processes, machines and Python
    versions (no ``PYTHONHASHSEED`` dependence).
    """
    return _stable_hash(item, seed)


def hash_partition(
    rows: Iterable[Item], num_partitions: int, *, seed: int = 0
) -> List[List[Item]]:
    """Partition rows by a stable hash of their item key.

    All rows of a given item land in the same partition, which is the usual
    arrangement when the pre-aggregation key is also the shuffle key.
    """
    if num_partitions < 1:
        raise InvalidParameterError("num_partitions must be positive")
    partitions: List[List[Item]] = [[] for _ in range(num_partitions)]
    for row in rows:
        partitions[_stable_hash(row, seed) % num_partitions].append(row)
    return partitions


def stable_shard(item: Item, num_partitions: int, *, seed: int = 0) -> int:
    """Stable shard index of an item: the routing function of the sharded executor.

    All rows of a given item map to the same shard for any fixed seed, so a
    hash-sharded ensemble of sketches holds disjoint item sets.
    """
    if num_partitions < 1:
        raise InvalidParameterError("num_partitions must be positive")
    return _stable_hash(item, seed) % num_partitions


def hash_partition_batch(
    items: Sequence[Item],
    weights: Optional[Sequence[float]],
    num_partitions: int,
    *,
    seed: int = 0,
) -> List[Tuple[List[Item], Optional[List[float]]]]:
    """Partition an aligned ``(items, weights)`` batch by item hash.

    The weighted analogue of :func:`hash_partition` used by the batched
    sharded executor: returns one ``(items, weights)`` pair per partition
    (``weights`` is ``None`` throughout when no weights were supplied),
    preserving the within-partition arrival order.
    """
    if num_partitions < 1:
        raise InvalidParameterError("num_partitions must be positive")
    if weights is not None and len(items) != len(weights):
        raise InvalidParameterError(
            f"items and weights must align: got {len(items)} items "
            f"and {len(weights)} weights"
        )
    part_items: List[List[Item]] = [[] for _ in range(num_partitions)]
    part_weights: Optional[List[List[float]]] = (
        None if weights is None else [[] for _ in range(num_partitions)]
    )
    for index, item in enumerate(items):
        shard = _stable_hash(item, seed) % num_partitions
        part_items[shard].append(item)
        if part_weights is not None:
            part_weights[shard].append(float(weights[index]))
    if part_weights is None:
        return [(chunk, None) for chunk in part_items]
    return list(zip(part_items, part_weights))


def round_robin_partition(rows: Iterable[Item], num_partitions: int) -> List[List[Item]]:
    """Deal rows to partitions in round-robin order.

    Every partition sees a thinned version of the global stream, so each
    partition's stream has (approximately) the same item distribution as the
    whole — the friendliest case for per-partition sketching.
    """
    if num_partitions < 1:
        raise InvalidParameterError("num_partitions must be positive")
    partitions: List[List[Item]] = [[] for _ in range(num_partitions)]
    for index, row in enumerate(rows):
        partitions[index % num_partitions].append(row)
    return partitions


def key_range_partition(
    rows: Sequence[Item],
    num_partitions: int,
    *,
    key: Optional[Callable[[Item], object]] = None,
) -> List[List[Item]]:
    """Partition rows into contiguous ranges of a sort key.

    Sorting by item (the default key) and cutting into contiguous blocks
    reproduces the "data partitioned by some key, partitions processed in
    order" pathology of §6.3: when the per-partition sketches are merged (or
    a single sketch consumes the partitions back to back), items seen only in
    early partitions are at risk of being forgotten by biased sketches.
    """
    if num_partitions < 1:
        raise InvalidParameterError("num_partitions must be positive")
    key = key or (lambda row: repr(row))
    ordered = sorted(rows, key=key)
    partitions: List[List[Item]] = [[] for _ in range(num_partitions)]
    block = max(1, (len(ordered) + num_partitions - 1) // num_partitions)
    for index, row in enumerate(ordered):
        partitions[min(index // block, num_partitions - 1)].append(row)
    return partitions
