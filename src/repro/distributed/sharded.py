"""Sharded sketch executor: scale-out ingestion via hash partitioning.

The paper's mergeability result (§5.5, Theorem 2) means a fleet of Unbiased
Space Saving sketches can each ingest a disjoint slice of the traffic and
still be combined into a single unbiased sketch.  :class:`ShardedSketch`
turns that result into a usable scale-out API:

* **Ingestion** routes every row (or batch) to one of ``num_shards``
  internal sketches by a stable hash of the item label, so all rows of a
  given item land on the same shard.  Batches are collapsed once globally
  (:func:`repro.core.batching.collapse_batch`), hashed once per *distinct*
  item, and handed to each shard's ``update_batch``.
* **Point queries** need no merge at all: because shards hold disjoint item
  sets, the owning shard's estimate *is* the ensemble estimate, and subset
  sums/heavy hitters are answered from the disjoint union of shard states.
* **Merging** down to a single capacity-``m`` sketch goes through the
  existing :mod:`repro.core.merge` machinery
  (:func:`~repro.core.merge.merge_many_unbiased`), preserving unbiasedness.

In-process the shards are plain Python objects, but the API mirrors what a
multi-process or multi-node deployment needs: independent per-shard state,
batch routing, and a merge step that only moves sketch-sized summaries.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro._typing import Item, ItemPredicate
from repro.core.batching import collapse_batch
from repro.core.merge import merge_many_unbiased
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.core.variance import EstimateWithError
from repro.distributed.partition import hash_partition_batch, stable_shard
from repro.errors import InvalidParameterError

__all__ = ["ShardedSketch"]

#: Builds the sketch for one shard given ``(shard_index, shard_seed)``.
ShardFactory = Callable[[int, Optional[int]], UnbiasedSpaceSaving]


class ShardedSketch:
    """Hash-partitioned ensemble of Unbiased Space Saving shards.

    Parameters
    ----------
    capacity:
        Capacity of each shard's sketch, and the default capacity of the
        merged sketch returned by :meth:`merged`.
    num_shards:
        Number of shards ``N``.  The ensemble retains up to
        ``N * capacity`` bins before merging.
    seed:
        Base seed.  When given, shard ``i`` receives ``seed + i`` (fully
        reproducible) and the routing hash uses ``seed``; when ``None`` the
        shards stay entropy-seeded and routing hashes with seed 0.
    merge_method:
        Reduction used by :meth:`merged`; see
        :func:`repro.core.merge.reduce_bins_unbiased`.
    shard_factory:
        Optional ``(shard_index, shard_seed) -> sketch`` override for
        building the per-shard sketches, e.g. to pass ``store="heap"``.

    Example
    -------
    >>> sharded = ShardedSketch(capacity=8, num_shards=4, seed=0)
    >>> _ = sharded.update_batch(["a", "b", "a", "c"] * 25)
    >>> sharded.rows_processed
    100
    >>> sharded.estimate("a")
    50.0
    """

    def __init__(
        self,
        capacity: int,
        num_shards: int,
        *,
        seed: Optional[int] = None,
        merge_method: str = "pps",
        shard_factory: Optional[ShardFactory] = None,
    ) -> None:
        if num_shards < 1:
            raise InvalidParameterError("num_shards must be positive")
        self._capacity = int(capacity)
        self._num_shards = int(num_shards)
        self._seed = seed
        self._hash_seed = seed if seed is not None else 0
        self._merge_method = merge_method
        if shard_factory is None:
            shard_factory = lambda index, shard_seed: UnbiasedSpaceSaving(  # noqa: E731
                capacity, seed=shard_seed
            )
        # With no seed the shards stay entropy-seeded (like the scalar
        # sketch); with one, shard i gets seed + i for full reproducibility.
        self._shards: Tuple[UnbiasedSpaceSaving, ...] = tuple(
            shard_factory(index, None if seed is None else seed + index)
            for index in range(num_shards)
        )
        self._rows_processed = 0
        self._total_weight = 0.0
        self._version = 0
        self._merged_cache: Optional[Tuple[int, int, UnbiasedSpaceSaving]] = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Per-shard (and default merged) bin capacity."""
        return self._capacity

    @property
    def num_shards(self) -> int:
        """Number of shards in the ensemble."""
        return self._num_shards

    @property
    def shards(self) -> Tuple[UnbiasedSpaceSaving, ...]:
        """The per-shard sketches (do not mutate them directly)."""
        return self._shards

    @property
    def rows_processed(self) -> int:
        """Raw rows ingested across all shards.

        Per-shard ``rows_processed`` counts the collapsed updates each shard
        received; this ensemble-level counter tracks raw rows.
        """
        return self._rows_processed

    @property
    def total_weight(self) -> float:
        """Total ingested weight across all shards."""
        return self._total_weight

    def shard_index(self, item: Item) -> int:
        """The shard an item routes to (stable across processes)."""
        return stable_shard(item, self._num_shards, seed=self._hash_seed)

    def shard_for(self, item: Item) -> UnbiasedSpaceSaving:
        """The shard sketch that owns ``item``."""
        return self._shards[self.shard_index(item)]

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Route one raw row to its owning shard."""
        self.shard_for(item).update(item, weight)
        self._rows_processed += 1
        self._total_weight += weight
        self._version += 1

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
    ) -> "ShardedSketch":
        """Collapse a batch once, then scatter it across the shards.

        The batch is pre-aggregated globally so the routing hash runs once
        per *distinct* item; each shard then ingests its slice through its
        own ``update_batch``.  Query answers are identical to feeding the
        same collapsed pairs through :meth:`update` row by row.
        """
        unique, collapsed, row_count, total = collapse_batch(items, weights)
        if not unique:
            return self
        partitions = hash_partition_batch(
            unique, collapsed, self._num_shards, seed=self._hash_seed
        )
        for sketch, (shard_items, shard_weights) in zip(self._shards, partitions):
            if not shard_items:
                continue
            # The global collapse already made the pairs unique, so feed them
            # through the no-recollapse path when the shard offers one.
            ingest = getattr(sketch, "_ingest_collapsed", None)
            if ingest is not None:
                ingest(
                    shard_items,
                    shard_weights,
                    len(shard_items),
                    float(sum(shard_weights)),
                )
            else:
                sketch.update_batch(shard_items, shard_weights)
        self._rows_processed += row_count
        self._total_weight += total
        self._version += 1
        return self

    # ------------------------------------------------------------------
    # Queries over the disjoint union (no merge required)
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Point estimate from the owning shard (unbiased; 0 when absent)."""
        return self.shard_for(item).estimate(item)

    def estimates(self) -> Dict[Item, float]:
        """All retained items across shards (disjoint union)."""
        combined: Dict[Item, float] = {}
        for sketch in self._shards:
            combined.update(sketch.estimates())
        return combined

    def __len__(self) -> int:
        return sum(len(sketch.estimates()) for sketch in self._shards)

    def __contains__(self, item: Item) -> bool:
        return item in self.shard_for(item).estimates()

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Unbiased subset sum over the union of the shards' data."""
        return float(
            sum(sketch.subset_sum(predicate) for sketch in self._shards)
        )

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum with variance: shard estimates are independent, so
        their equation-5 variance estimates add."""
        estimate = 0.0
        variance = 0.0
        for sketch in self._shards:
            shard_result = sketch.subset_sum_with_error(predicate)
            estimate += shard_result.estimate
            variance += shard_result.variance
        return EstimateWithError(estimate=estimate, variance=variance)

    def top_k(self, k: int) -> List[Tuple[Item, float]]:
        """The ``k`` largest estimated counts across the ensemble."""
        if k < 0:
            raise InvalidParameterError("k must be non-negative")
        ranked = sorted(self.estimates().items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:k]

    def heavy_hitters(self, phi: float) -> Dict[Item, float]:
        """Items at or above relative frequency ``phi`` of the *global* weight."""
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        threshold = phi * self._total_weight
        return {
            item: count
            for item, count in self.estimates().items()
            if count >= threshold and count > 0
        }

    def total_estimate(self) -> float:
        """Exact total ingested weight (each shard preserves its total)."""
        return float(sum(sketch.total_estimate() for sketch in self._shards))

    # ------------------------------------------------------------------
    # Merging through the core machinery
    # ------------------------------------------------------------------
    def merged(
        self,
        capacity: Optional[int] = None,
        *,
        seed: Optional[int] = None,
    ) -> UnbiasedSpaceSaving:
        """Merge all shards into one unbiased sketch via ``merge_many_unbiased``.

        The result is cached per ``(state, capacity)`` so repeated queries
        between updates reuse the same merge; pass ``seed`` to override the
        reduction seed (which also bypasses the cache).
        """
        target = capacity or self._capacity
        if seed is None and self._merged_cache is not None:
            version, cached_capacity, cached = self._merged_cache
            if version == self._version and cached_capacity == target:
                return cached
        merged = merge_many_unbiased(
            self._shards,
            capacity=target,
            method=self._merge_method,
            seed=self._seed if seed is None else seed,
        )
        if seed is None:
            self._merged_cache = (self._version, target, merged)
        return merged
