"""Sharded sketch executor: scale-out ingestion via hash partitioning.

The paper's mergeability result (§5.5, Theorem 2) means a fleet of Unbiased
Space Saving sketches can each ingest a disjoint slice of the traffic and
still be combined into a single unbiased sketch.  :class:`ShardedSketch`
turns that result into a usable scale-out API:

* **Ingestion** routes every row (or batch) to one of ``num_shards``
  internal sketches by a stable hash of the item label, so all rows of a
  given item land on the same shard.  Batches are collapsed once globally
  (:func:`repro.core.batching.collapse_batch`), hashed once per *distinct*
  item, and handed to each shard's ``update_batch``.
* **Point queries** need no merge at all: because shards hold disjoint item
  sets, the owning shard's estimate *is* the ensemble estimate, and subset
  sums/heavy hitters are answered from the disjoint union of shard states.
* **Merging** down to a single capacity-``m`` sketch goes through the
  existing :mod:`repro.core.merge` machinery
  (:func:`~repro.core.merge.merge_many_unbiased`), preserving unbiasedness.

In-process the shards are plain Python objects, but the API mirrors what a
multi-process or multi-node deployment needs: independent per-shard state,
batch routing, and a merge step that only moves sketch-sized summaries.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple

import numpy as np

from repro._typing import Item
from repro.core.batching import collapse_batch
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.distributed.ensemble import DisjointUnionQueries
from repro.distributed.partition import hash_partition_batch, stable_shard
from repro.errors import InvalidParameterError
from repro.io.serializable import SerializableSketch

__all__ = ["ShardedSketch"]

#: Builds the sketch for one shard given ``(shard_index, shard_seed)``.
ShardFactory = Callable[[int, Optional[int]], UnbiasedSpaceSaving]


class ShardedSketch(DisjointUnionQueries, SerializableSketch):
    """Hash-partitioned ensemble of Unbiased Space Saving shards.

    Parameters
    ----------
    capacity:
        Capacity of each shard's sketch, and the default capacity of the
        merged sketch returned by :meth:`merged`.
    num_shards:
        Number of shards ``N``.  The ensemble retains up to
        ``N * capacity`` bins before merging.
    seed:
        Base seed.  When given, shard ``i`` receives ``seed + i`` (fully
        reproducible) and the routing hash uses ``seed``; when ``None`` the
        shards stay entropy-seeded and routing hashes with seed 0.
    merge_method:
        Reduction used by :meth:`merged`; see
        :func:`repro.core.merge.reduce_bins_unbiased`.
    shard_factory:
        Optional ``(shard_index, shard_seed) -> sketch`` override for
        building the per-shard sketches, e.g. to pass ``store="heap"``.

    Example
    -------
    >>> sharded = ShardedSketch(capacity=8, num_shards=4, seed=0)
    >>> _ = sharded.update_batch(["a", "b", "a", "c"] * 25)
    >>> sharded.rows_processed
    100
    >>> sharded.estimate("a")
    50.0
    """

    def __init__(
        self,
        capacity: int,
        num_shards: int,
        *,
        seed: Optional[int] = None,
        merge_method: str = "pps",
        shard_factory: Optional[ShardFactory] = None,
    ) -> None:
        if num_shards < 1:
            raise InvalidParameterError("num_shards must be positive")
        self._capacity = int(capacity)
        self._num_shards = int(num_shards)
        self._seed = seed
        self._hash_seed = seed if seed is not None else 0
        self._merge_method = merge_method
        if shard_factory is None:
            shard_factory = lambda index, shard_seed: UnbiasedSpaceSaving(  # noqa: E731
                capacity, seed=shard_seed
            )
        # With no seed the shards stay entropy-seeded (like the scalar
        # sketch); with one, shard i gets seed + i for full reproducibility.
        self._shards: Tuple[UnbiasedSpaceSaving, ...] = tuple(
            shard_factory(index, None if seed is None else seed + index)
            for index in range(num_shards)
        )
        self._rows_processed = 0
        self._total_weight = 0.0
        self._version = 0
        self._merged_cache: Optional[Tuple[int, int, UnbiasedSpaceSaving]] = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Per-shard (and default merged) bin capacity."""
        return self._capacity

    @property
    def num_shards(self) -> int:
        """Number of shards in the ensemble."""
        return self._num_shards

    @property
    def shards(self) -> Tuple[UnbiasedSpaceSaving, ...]:
        """The per-shard sketches (do not mutate them directly)."""
        return self._shards

    @property
    def rows_processed(self) -> int:
        """Raw rows ingested across all shards.

        Per-shard ``rows_processed`` counts the collapsed updates each shard
        received; this ensemble-level counter tracks raw rows.
        """
        return self._rows_processed

    @property
    def total_weight(self) -> float:
        """Total ingested weight across all shards."""
        return self._total_weight

    def shard_index(self, item: Item) -> int:
        """The shard an item routes to (stable across processes)."""
        return stable_shard(item, self._num_shards, seed=self._hash_seed)

    def shard_for(self, item: Item) -> UnbiasedSpaceSaving:
        """The shard sketch that owns ``item``."""
        return self._shards[self.shard_index(item)]

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Route one raw row to its owning shard."""
        self.shard_for(item).update(item, weight)
        self._rows_processed += 1
        self._total_weight += weight
        self._version += 1

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
    ) -> "ShardedSketch":
        """Collapse a batch once, then scatter it across the shards.

        The batch is pre-aggregated globally so the routing hash runs once
        per *distinct* item; each shard then ingests its slice through its
        own ``update_batch``.  Query answers are identical to feeding the
        same collapsed pairs through :meth:`update` row by row.
        """
        unique, collapsed, row_count, total = collapse_batch(items, weights)
        if not unique:
            return self
        partitions = hash_partition_batch(
            unique, collapsed, self._num_shards, seed=self._hash_seed
        )
        for sketch, (shard_items, shard_weights) in zip(self._shards, partitions):
            if not shard_items:
                continue
            # The global collapse already made the pairs unique, so feed them
            # through the no-recollapse path when the shard offers one.
            ingest = getattr(sketch, "_ingest_collapsed", None)
            if ingest is not None:
                ingest(
                    shard_items,
                    shard_weights,
                    len(shard_items),
                    float(sum(shard_weights)),
                )
            else:
                sketch.update_batch(shard_items, shard_weights)
        self._rows_processed += row_count
        self._total_weight += total
        self._version += 1
        return self

    # ------------------------------------------------------------------
    # Queries: the disjoint-union surface comes from DisjointUnionQueries
    # (estimate, estimates, subset sums, heavy hitters, top_k,
    # total_estimate, merged) via these two hooks.
    # ------------------------------------------------------------------
    def _query_shards(self) -> Tuple[UnbiasedSpaceSaving, ...]:
        return self._shards

    def _owning_shard(self, item: Item) -> UnbiasedSpaceSaving:
        return self.shard_for(item)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self._capacity}, "
            f"num_shards={self._num_shards}, rows_processed={self._rows_processed}, "
            f"total_weight={self._total_weight:g})"
        )

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        meta = {
            "capacity": self._capacity,
            "num_shards": self._num_shards,
            "seed": self._seed,
            "hash_seed": self._hash_seed,
            "merge_method": self._merge_method,
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
        }
        # Each shard serializes itself; its frame rides along as raw bytes
        # (a uint8 array), so the ensemble reuses the envelope unchanged.
        arrays = {
            f"shard_{index}": np.frombuffer(shard.to_bytes(), dtype=np.uint8)
            for index, shard in enumerate(self._shards)
        }
        return meta, arrays

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        # Shard frames are restored through the registry so a custom
        # shard_factory producing any registered sketch type round-trips.
        from repro.io.registry import load_bytes

        sketch = cls.__new__(cls)
        sketch._capacity = int(meta["capacity"])
        sketch._num_shards = int(meta["num_shards"])
        sketch._seed = meta["seed"]
        sketch._hash_seed = int(meta["hash_seed"])
        sketch._merge_method = meta["merge_method"]
        sketch._shards = tuple(
            load_bytes(arrays[f"shard_{index}"].tobytes())
            for index in range(sketch._num_shards)
        )
        sketch._rows_processed = int(meta["rows_processed"])
        sketch._total_weight = float(meta["total_weight"])
        sketch._version = 0
        sketch._merged_cache = None
        return sketch
