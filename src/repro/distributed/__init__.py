"""Distributed ingestion: partitioning, sharded execution and map-reduce merges.

Three layers of the scale-out story live here:

* :mod:`repro.distributed.partition` — strategies for splitting a raw event
  stream across workers (hash, round-robin, key-range), including the
  weighted batch variant used by the sharded executor.
* :mod:`repro.distributed.sharded` — :class:`ShardedSketch`, a live
  hash-partitioned ensemble of Unbiased Space Saving sketches with batched
  ingestion and merge-backed global queries.
* :mod:`repro.distributed.parallel` — :class:`ParallelSketchExecutor`,
  the same ensemble driven across process boundaries: shards live as
  serialized byte frames and batches fan out to a multiprocessing pool.
* :mod:`repro.distributed.mapreduce` — the simulated scatter/gather
  pipeline (§5.5's deployment story): sketch each partition, then merge.
"""

from repro.distributed.mapreduce import (
    DistributedSubsetSum,
    reduce_sketches,
    sketch_partitions,
    tree_merge,
)
from repro.distributed.parallel import ParallelSketchExecutor
from repro.distributed.partition import (
    hash_partition,
    hash_partition_batch,
    key_range_partition,
    round_robin_partition,
    stable_shard,
)
from repro.distributed.sharded import ShardedSketch

__all__ = [
    "DistributedSubsetSum",
    "ParallelSketchExecutor",
    "ShardedSketch",
    "reduce_sketches",
    "sketch_partitions",
    "tree_merge",
    "hash_partition",
    "hash_partition_batch",
    "key_range_partition",
    "round_robin_partition",
    "stable_shard",
]
