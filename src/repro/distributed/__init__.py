"""Distributed ingestion: partitioning strategies and simulated map-reduce merges."""

from repro.distributed.mapreduce import (
    DistributedSubsetSum,
    reduce_sketches,
    sketch_partitions,
    tree_merge,
)
from repro.distributed.partition import (
    hash_partition,
    key_range_partition,
    round_robin_partition,
)

__all__ = [
    "DistributedSubsetSum",
    "reduce_sketches",
    "sketch_partitions",
    "tree_merge",
    "hash_partition",
    "key_range_partition",
    "round_robin_partition",
]
