"""Simulated map-reduce sketch aggregation (§5.5's deployment story).

In a map-reduce (or any scatter/gather) framework, each mapper builds a
small sketch over its shard of the raw events and only the sketches travel
over the network; the reducer merges them into one sketch that answers
queries over the union of the data.  This module simulates that pipeline
in-process:

* :func:`sketch_partitions` — the map phase: one Unbiased Space Saving
  sketch per partition.
* :func:`reduce_sketches` — the reduce phase: a single k-way unbiased merge.
* :func:`tree_merge` — a hierarchical (pairwise) merge, the shape a
  multi-level aggregation tree or a combiner stage produces.
* :class:`DistributedSubsetSum` — the end-to-end convenience wrapper used by
  the distributed example and the integration tests.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro._typing import Item, ItemPredicate
from repro.core.merge import merge_many_unbiased, merge_unbiased
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError
from repro.streams.generators import iterate_rows

__all__ = [
    "sketch_partitions",
    "reduce_sketches",
    "tree_merge",
    "DistributedSubsetSum",
]


def sketch_partitions(
    partitions: Sequence[Iterable[Item]],
    capacity: int,
    *,
    seed: Optional[int] = None,
) -> List[UnbiasedSpaceSaving]:
    """Map phase: build one Unbiased Space Saving sketch per partition."""
    if not partitions:
        raise InvalidParameterError("at least one partition is required")
    base_seed = seed if seed is not None else 0
    sketches = []
    for index, partition in enumerate(partitions):
        sketch = UnbiasedSpaceSaving(capacity, seed=base_seed + index)
        for row in iterate_rows(partition):
            sketch.update(row)
        sketches.append(sketch)
    return sketches


def reduce_sketches(
    sketches: Sequence[UnbiasedSpaceSaving],
    *,
    capacity: Optional[int] = None,
    method: str = "pps",
    seed: Optional[int] = None,
) -> UnbiasedSpaceSaving:
    """Reduce phase: merge all mapper sketches in a single unbiased reduction."""
    return merge_many_unbiased(sketches, capacity=capacity, method=method, seed=seed)


def tree_merge(
    sketches: Sequence[UnbiasedSpaceSaving],
    *,
    capacity: Optional[int] = None,
    method: str = "pps",
    seed: Optional[int] = None,
) -> UnbiasedSpaceSaving:
    """Merge sketches pairwise in a balanced tree.

    Each level halves the number of sketches; every pairwise merge is
    unbiased, so the root remains unbiased, but each level adds its own
    reduction noise — the trade-off against :func:`reduce_sketches` that the
    ablation benchmark measures.
    """
    if not sketches:
        raise InvalidParameterError("at least one sketch is required")
    rng = random.Random(seed)
    level = list(sketches)
    while len(level) > 1:
        next_level = []
        for index in range(0, len(level) - 1, 2):
            next_level.append(
                merge_unbiased(
                    level[index],
                    level[index + 1],
                    capacity=capacity,
                    method=method,
                    seed=rng.randrange(2**31),
                )
            )
        if len(level) % 2 == 1:
            next_level.append(level[-1])
        level = next_level
    return level[0]


class DistributedSubsetSum:
    """End-to-end distributed pipeline: partition, sketch, merge, query.

    Example
    -------
    >>> pipeline = DistributedSubsetSum(capacity=64, num_partitions=4, seed=0)
    >>> sketch = pipeline.run(["a", "b", "a", "c"] * 50)
    >>> sketch.rows_processed
    200
    """

    def __init__(
        self,
        capacity: int,
        num_partitions: int,
        *,
        merge_method: str = "pps",
        merge_strategy: str = "flat",
        seed: Optional[int] = None,
    ) -> None:
        if num_partitions < 1:
            raise InvalidParameterError("num_partitions must be positive")
        if merge_strategy not in ("flat", "tree"):
            raise InvalidParameterError("merge_strategy must be 'flat' or 'tree'")
        self._capacity = capacity
        self._num_partitions = num_partitions
        self._merge_method = merge_method
        self._merge_strategy = merge_strategy
        self._seed = seed
        self._merged: Optional[UnbiasedSpaceSaving] = None

    def run(self, rows: Iterable[Item]) -> UnbiasedSpaceSaving:
        """Execute the full pipeline over a row stream and return the merged sketch."""
        partitions: List[List[Item]] = [[] for _ in range(self._num_partitions)]
        for index, row in enumerate(iterate_rows(rows)):
            partitions[index % self._num_partitions].append(row)
        mapper_sketches = sketch_partitions(partitions, self._capacity, seed=self._seed)
        if self._merge_strategy == "flat":
            self._merged = reduce_sketches(
                mapper_sketches,
                capacity=self._capacity,
                method=self._merge_method,
                seed=self._seed,
            )
        else:
            self._merged = tree_merge(
                mapper_sketches,
                capacity=self._capacity,
                method=self._merge_method,
                seed=self._seed,
            )
        return self._merged

    @property
    def merged_sketch(self) -> UnbiasedSpaceSaving:
        """The merged sketch produced by the last :meth:`run` call."""
        if self._merged is None:
            raise InvalidParameterError("run() must be called before querying")
        return self._merged

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Subset sum estimate from the merged sketch."""
        return self.merged_sketch.subset_sum(predicate)

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum with uncertainty from the merged sketch."""
        return self.merged_sketch.subset_sum_with_error(predicate)
