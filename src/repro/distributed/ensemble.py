"""Shared query surface for hash-partitioned sketch ensembles.

``ShardedSketch`` (in-process shards) and ``ParallelSketchExecutor``
(shards as serialized frames on a worker pool) answer queries the same
way: point lookups go to the owning shard, global queries aggregate over
the disjoint union of shard states, and a single merged sketch comes from
:func:`repro.core.merge.merge_many_unbiased`.  :class:`DisjointUnionQueries`
holds that logic once, parameterized by two hooks:

* :meth:`_query_shards` — the live shard sketches to aggregate over;
* :meth:`_owning_shard` — the shard holding a given item.

Hosts must also provide ``_capacity``, ``_total_weight``, ``_seed``,
``_merge_method``, ``_version`` (bumped on every update) and
``_merged_cache`` — the attributes both executors already maintain.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro._typing import Item, ItemPredicate
from repro.core.batching import iter_weighted_rows
from repro.core.merge import merge_many_unbiased
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError

__all__ = ["DisjointUnionQueries"]


class DisjointUnionQueries:
    """Disjoint-union queries and merge caching over an ensemble of shards."""

    # -- hooks the host implements ----------------------------------------
    def _query_shards(self) -> Sequence[UnbiasedSpaceSaving]:
        """The live per-shard sketches global queries aggregate over."""
        raise NotImplementedError

    def _owning_shard(self, item: Item) -> UnbiasedSpaceSaving:
        """The shard sketch that owns ``item`` (for point lookups)."""
        raise NotImplementedError

    # -- ingestion convenience ---------------------------------------------
    def extend(self, rows) -> "DisjointUnionQueries":
        """Consume an iterable of rows (bare items or ``(item, weight)`` pairs).

        The ensemble counterpart of ``FrequentItemSketch.extend``, so
        executors expose the same one-surface ingestion spelling as the
        inline sketches (hosts provide ``update``).
        """
        for item, weight in iter_weighted_rows(rows):
            self.update(item, weight)  # type: ignore[attr-defined]
        return self

    # -- point and union queries ------------------------------------------
    def estimate(self, item: Item) -> float:
        """Point estimate from the owning shard (unbiased; 0 when absent)."""
        return self._owning_shard(item).estimate(item)

    def estimates(self) -> Dict[Item, float]:
        """All retained items across shards (disjoint union)."""
        combined: Dict[Item, float] = {}
        for shard in self._query_shards():
            combined.update(shard.estimates())
        return combined

    def __len__(self) -> int:
        return sum(len(shard.estimates()) for shard in self._query_shards())

    def __contains__(self, item: Item) -> bool:
        return item in self._owning_shard(item).estimates()

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Unbiased subset sum over the union of the shards' data."""
        return float(
            sum(shard.subset_sum(predicate) for shard in self._query_shards())
        )

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum with variance: shard estimates are independent, so
        their equation-5 variance estimates add."""
        estimate = 0.0
        variance = 0.0
        for shard in self._query_shards():
            shard_result = shard.subset_sum_with_error(predicate)
            estimate += shard_result.estimate
            variance += shard_result.variance
        return EstimateWithError(estimate=estimate, variance=variance)

    def top_k(self, k: int) -> List[Tuple[Item, float]]:
        """The ``k`` largest estimated counts across the ensemble."""
        if k < 0:
            raise InvalidParameterError("k must be non-negative")
        ranked = sorted(self.estimates().items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:k]

    def heavy_hitters(self, phi: float) -> Dict[Item, float]:
        """Items at or above relative frequency ``phi`` of the *global* weight."""
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        threshold = phi * self._total_weight
        return {
            item: count
            for item, count in self.estimates().items()
            if count >= threshold and count > 0
        }

    def total_estimate(self) -> float:
        """Exact total ingested weight (each shard preserves its total)."""
        return float(sum(shard.total_estimate() for shard in self._query_shards()))

    # -- merging through the core machinery --------------------------------
    def merged(self, capacity=None, *, seed=None) -> UnbiasedSpaceSaving:
        """Merge all shards into one unbiased sketch via ``merge_many_unbiased``.

        The result is cached per ``(state, capacity)`` so repeated queries
        between updates reuse the same merge; pass ``seed`` to override the
        reduction seed (which also bypasses the cache).
        """
        target = capacity or self._capacity
        if seed is None and self._merged_cache is not None:
            version, cached_capacity, cached = self._merged_cache
            if version == self._version and cached_capacity == target:
                return cached
        merged = merge_many_unbiased(
            self._query_shards(),
            capacity=target,
            method=self._merge_method,
            seed=self._seed if seed is None else seed,
        )
        if seed is None:
            self._merged_cache = (self._version, target, merged)
        return merged
