"""Multiprocess parallel sketch executor.

:class:`~repro.distributed.sharded.ShardedSketch` proved the scale-out
shape in-process; this module carries the same shape across *process
boundaries*, which is what the paper's mergeability theorem (§5.5) is
ultimately for.  :class:`ParallelSketchExecutor` keeps every shard as a
**serialized byte frame** (the :mod:`repro.io` envelope) and, for each
batch, fans the hash-partitioned slices out to a :mod:`multiprocessing`
pool: a worker deserializes its shard, ingests its slice, reserializes,
and ships the new state back.  Nothing but sketch-sized summaries and the
batch slices ever cross the process boundary — the map-side-combine
pattern of a distributed deployment, exercised for real.

Determinism is preserved end to end: shards are seeded exactly like
``ShardedSketch`` (shard ``i`` gets ``seed + i``), batches are collapsed
and routed identically, and the RNG state rides inside each shard frame —
so on the same seeded workload the executor's estimates are **equal** to
``ShardedSketch``'s, shard for shard, regardless of how many processes
the work was spread over.  Queries deserialize the current shard frames
once (cached until the next update) and answer through the same
disjoint-union logic; :meth:`merged` goes through
:func:`repro.core.merge.merge_many_unbiased`.

With ``num_workers=0`` (or on a single-CPU host, the default) the
executor runs the identical serialize → ingest → reserialize cycle
inline, which keeps tests and CI deterministic and pool-free while still
exercising the full wire path.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro._typing import Item
from repro.core.batching import collapse_batch
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.distributed.ensemble import DisjointUnionQueries
from repro.distributed.partition import hash_partition_batch, stable_shard
from repro.errors import InvalidParameterError
from repro.io.serializable import SerializableSketch

__all__ = ["ParallelSketchExecutor"]


def _apply_serialized_batch(
    state: bytes,
    items: List[Item],
    weights: List[float],
    row_count: int,
    total: float,
) -> bytes:
    """Worker body: deserialize one shard, ingest a collapsed slice, reserialize.

    Module-level (not a closure) so every start method, including spawn,
    can pickle it.  The slice arrives already collapsed and routed, so the
    no-recollapse ingestion path applies it directly.
    """
    sketch = UnbiasedSpaceSaving.from_bytes(state)
    sketch._ingest_collapsed(items, weights, row_count, total)
    return sketch.to_bytes()


class ParallelSketchExecutor(DisjointUnionQueries, SerializableSketch):
    """Hash-partitioned Unbiased Space Saving shards on a process pool.

    Drop-in for :class:`~repro.distributed.sharded.ShardedSketch`: the
    ingestion and query surface is the same, so callers can swap executors
    without touching query code.

    Parameters
    ----------
    capacity:
        Capacity of each shard's sketch (and the default merged capacity).
    num_shards:
        Number of shards; shard ``i`` is seeded ``seed + i`` when ``seed``
        is given, exactly like ``ShardedSketch``.
    seed:
        Base seed for shards, routing hash and merge reduction.
    merge_method:
        Reduction used by :meth:`merged`; see
        :func:`repro.core.merge.reduce_bins_unbiased`.
    num_workers:
        Pool size.  ``None`` (default) uses ``min(num_shards, cpu_count)``;
        any value below 2 runs the wire path inline without spawning
        processes (identical results, no pool overhead).
    mp_context:
        Optional :func:`multiprocessing.get_context` method name
        (``"fork"``, ``"spawn"``, ``"forkserver"``); ``None`` uses the
        platform default.

    Example
    -------
    >>> with ParallelSketchExecutor(capacity=8, num_shards=4, seed=0) as executor:
    ...     _ = executor.update_batch(["a", "b", "a", "c"] * 25)
    ...     executor.estimate("a")
    50.0
    """

    def __init__(
        self,
        capacity: int,
        num_shards: int,
        *,
        seed: Optional[int] = None,
        merge_method: str = "pps",
        num_workers: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        if num_shards < 1:
            raise InvalidParameterError("num_shards must be positive")
        self._capacity = int(capacity)
        self._num_shards = int(num_shards)
        self._seed = seed
        self._hash_seed = seed if seed is not None else 0
        self._merge_method = merge_method
        if num_workers is None:
            num_workers = min(num_shards, os.cpu_count() or 1)
        self._num_workers = int(num_workers)
        self._mp_context = mp_context
        self._pool = None
        self._shard_states: List[bytes] = [
            UnbiasedSpaceSaving(
                capacity, seed=None if seed is None else seed + index
            ).to_bytes()
            for index in range(num_shards)
        ]
        self._rows_processed = 0
        self._total_weight = 0.0
        self._version = 0
        self._shards_cache: Optional[Tuple[int, Tuple[UnbiasedSpaceSaving, ...]]] = None
        self._single_shard_cache: Dict[int, Tuple[int, UnbiasedSpaceSaving]] = {}
        self._merged_cache: Optional[Tuple[int, int, UnbiasedSpaceSaving]] = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Per-shard (and default merged) bin capacity."""
        return self._capacity

    @property
    def num_shards(self) -> int:
        """Number of shards in the ensemble."""
        return self._num_shards

    @property
    def num_workers(self) -> int:
        """Configured pool size (values below 2 mean inline execution)."""
        return self._num_workers

    @property
    def rows_processed(self) -> int:
        """Raw rows ingested across all shards."""
        return self._rows_processed

    @property
    def total_weight(self) -> float:
        """Total ingested weight across all shards."""
        return self._total_weight

    def shard_index(self, item: Item) -> int:
        """The shard an item routes to (stable across processes)."""
        return stable_shard(item, self._num_shards, seed=self._hash_seed)

    def shard_states(self) -> List[bytes]:
        """The current serialized shard frames (copies of the references)."""
        return list(self._shard_states)

    @property
    def shards(self) -> Tuple[UnbiasedSpaceSaving, ...]:
        """Deserialized views of the current shard frames.

        A property to mirror ``ShardedSketch.shards``.  The views are
        cached until the next update; unlike ``ShardedSketch`` they are
        *copies* of the authoritative byte frames, so mutating them never
        changes the executor's state.
        """
        if self._shards_cache is not None and self._shards_cache[0] == self._version:
            return self._shards_cache[1]
        shards = tuple(
            UnbiasedSpaceSaving.from_bytes(state) for state in self._shard_states
        )
        self._shards_cache = (self._version, shards)
        return shards

    def shard_for(self, item: Item) -> UnbiasedSpaceSaving:
        """A deserialized view of the shard that owns ``item``."""
        return self._shard(self.shard_index(item))

    def _shard(self, index: int) -> UnbiasedSpaceSaving:
        """Deserialize one shard frame (for point queries), with caching.

        Point lookups only need the owning shard, so decoding all
        ``num_shards`` frames through :meth:`shards` would waste
        O(num_shards) work per query; this decodes (and caches) just one.
        """
        if self._shards_cache is not None and self._shards_cache[0] == self._version:
            return self._shards_cache[1][index]
        cached = self._single_shard_cache.get(index)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        shard = UnbiasedSpaceSaving.from_bytes(self._shard_states[index])
        self._single_shard_cache[index] = (self._version, shard)
        return shard

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._num_workers < 2:
            return None
        if self._pool is None:
            context = multiprocessing.get_context(self._mp_context)
            self._pool = context.Pool(processes=self._num_workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down; the executor stays queryable."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelSketchExecutor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Route one raw row through the batch path."""
        self.update_batch([item], [weight])

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
    ) -> "ParallelSketchExecutor":
        """Collapse a batch once, scatter the slices to the worker pool.

        The batch is pre-aggregated globally (one routing hash per
        distinct item), partitioned with the same stable hash as
        ``ShardedSketch``, and each non-empty slice is shipped to a worker
        together with its shard's current byte frame; the returned frames
        become the new shard states.  Shards with no rows in the batch are
        not touched (and cost no serialization work).
        """
        unique, collapsed, row_count, total = collapse_batch(items, weights)
        if not unique:
            return self
        partitions = hash_partition_batch(
            unique, collapsed, self._num_shards, seed=self._hash_seed
        )
        jobs = [
            (index, shard_items, shard_weights)
            for index, (shard_items, shard_weights) in enumerate(partitions)
            if shard_items
        ]
        arguments = [
            (
                self._shard_states[index],
                shard_items,
                shard_weights,
                len(shard_items),
                float(sum(shard_weights)),
            )
            for index, shard_items, shard_weights in jobs
        ]
        pool = self._ensure_pool()
        if pool is None:
            new_states = [_apply_serialized_batch(*argument) for argument in arguments]
        else:
            new_states = pool.starmap(_apply_serialized_batch, arguments)
        for (index, _, __), state in zip(jobs, new_states):
            self._shard_states[index] = state
        self._rows_processed += row_count
        self._total_weight += total
        self._version += 1
        return self

    # ------------------------------------------------------------------
    # Queries: the disjoint-union surface comes from DisjointUnionQueries
    # (estimate, estimates, subset sums, heavy hitters, top_k,
    # total_estimate, merged) via these two hooks.
    # ------------------------------------------------------------------
    def _query_shards(self) -> Tuple[UnbiasedSpaceSaving, ...]:
        return self.shards

    def _owning_shard(self, item: Item) -> UnbiasedSpaceSaving:
        return self._shard(self.shard_index(item))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self._capacity}, "
            f"num_shards={self._num_shards}, num_workers={self._num_workers}, "
            f"rows_processed={self._rows_processed}, "
            f"total_weight={self._total_weight:g})"
        )

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        meta = {
            "capacity": self._capacity,
            "num_shards": self._num_shards,
            "seed": self._seed,
            "hash_seed": self._hash_seed,
            "merge_method": self._merge_method,
            "num_workers": self._num_workers,
            "mp_context": self._mp_context,
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
        }
        # Shards are already byte frames; they ride along as uint8 arrays.
        arrays = {
            f"shard_{index}": np.frombuffer(state, dtype=np.uint8)
            for index, state in enumerate(self._shard_states)
        }
        return meta, arrays

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        executor = cls.__new__(cls)
        executor._capacity = int(meta["capacity"])
        executor._num_shards = int(meta["num_shards"])
        executor._seed = meta["seed"]
        executor._hash_seed = int(meta["hash_seed"])
        executor._merge_method = meta["merge_method"]
        executor._num_workers = int(meta["num_workers"])
        executor._mp_context = meta["mp_context"]
        executor._pool = None
        executor._shard_states = [
            arrays[f"shard_{index}"].tobytes()
            for index in range(executor._num_shards)
        ]
        executor._rows_processed = int(meta["rows_processed"])
        executor._total_weight = float(meta["total_weight"])
        executor._version = 0
        executor._shards_cache = None
        executor._single_shard_cache = {}
        executor._merged_cache = None
        return executor
