"""Shared type aliases and small helper protocols used across the package.

The sketches in this package are deliberately agnostic about what an "item"
is: anything hashable (an ad id, a ``(user, ad)`` tuple, an IP-pair string,
an integer drawn from a synthetic distribution) can be used as a key.  These
aliases keep signatures readable without forcing a concrete key type.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping, Tuple

#: Any hashable key identifying the unit of analysis (user, ad, IP pair, ...).
Item = Hashable

#: A predicate over items used to express arbitrary subset-sum filters.
ItemPredicate = Callable[[Item], bool]

#: A mapping from item to its (estimated or exact) aggregate value.
CountMapping = Mapping[Item, float]

#: A single ``(item, weight)`` pair in a weighted row stream.
WeightedRow = Tuple[Item, float]

#: An iterable of raw stream rows (one row per event, disaggregated).
RowStream = Iterable[Item]

#: An iterable of weighted rows.
WeightedRowStream = Iterable[WeightedRow]
