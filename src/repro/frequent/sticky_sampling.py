"""Sticky Sampling (Manku & Motwani 2002).

Sticky Sampling is the randomized companion of Lossy Counting: items are
admitted to the counter set by coin flips whose success probability halves
as the stream grows, and at each rate change every retained counter is
diminished by a geometric number of coin flips (simulating the counts it
would have missed under the new, lower rate).  With probability ``1 − δ``
every item of frequency at least ``ε·N`` is reported and undercounts are at
most ``ε·N``.

The paper mentions the sketch only to set it aside (worse practical
performance and weaker guarantees than the alternatives); it is implemented
here so the frequent-item baseline suite is complete and the comparison can
be reproduced rather than taken on faith.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro._typing import Item
from repro.core.base import FrequentItemSketch
from repro.errors import InvalidParameterError, UnsupportedUpdateError

__all__ = ["StickySamplingSketch"]


class StickySamplingSketch(FrequentItemSketch):
    """Sticky Sampling with support ``epsilon`` and failure probability ``delta``.

    Parameters
    ----------
    epsilon:
        Error / support parameter; counters track items of frequency ε·N.
    delta:
        Failure probability of the guarantee.
    seed:
        Seed for the admission and diminution coin flips.

    Example
    -------
    >>> sketch = StickySamplingSketch(epsilon=0.1, delta=0.01, seed=5)
    >>> _ = sketch.update_stream(["x"] * 50 + ["y"] * 3)
    >>> sketch.estimate("x") > 0
    True
    """

    def __init__(
        self,
        epsilon: float,
        delta: float = 0.01,
        *,
        seed: Optional[int] = None,
    ) -> None:
        if not 0 < epsilon < 1:
            raise InvalidParameterError("epsilon must lie in (0, 1)")
        if not 0 < delta < 1:
            raise InvalidParameterError("delta must lie in (0, 1)")
        # t = (1/ε)·log(1/(support·δ)) rows per sampling "window"; the classic
        # presentation uses support = ε for the window size.
        window = int(math.ceil((1.0 / epsilon) * math.log(1.0 / (epsilon * delta))))
        super().__init__(max(1, window), seed=seed)
        self._epsilon = epsilon
        self._delta = delta
        self._window = max(1, window)
        self._sampling_rate = 1.0
        self._next_rate_change = 2 * self._window
        self._counters: Dict[Item, int] = {}

    @property
    def epsilon(self) -> float:
        """The configured support/error parameter."""
        return self._epsilon

    @property
    def delta(self) -> float:
        """The configured failure probability."""
        return self._delta

    @property
    def sampling_rate(self) -> float:
        """Current admission probability ``1/r`` for unseen items."""
        return self._sampling_rate

    def __len__(self) -> int:
        return len(self._counters)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one unit row."""
        if weight != 1:
            raise UnsupportedUpdateError("Sticky Sampling supports unit-weight rows only")
        self._record_update(1.0)
        if self._rows_processed > self._next_rate_change:
            self._halve_rate()
        if item in self._counters:
            self._counters[item] += 1
            return
        if self._rng.random() < self._sampling_rate:
            self._counters[item] = 1

    def _halve_rate(self) -> None:
        """Halve the sampling rate and diminish every counter accordingly.

        For each retained counter a sequence of fair coin flips is tossed;
        the counter loses one for every consecutive failure and the item is
        dropped if the counter reaches zero — exactly the adjustment that
        makes the retained state look as if the stream had been sampled at
        the new rate from the start.
        """
        self._sampling_rate /= 2.0
        self._next_rate_change *= 2
        survivors: Dict[Item, int] = {}
        for item, count in self._counters.items():
            while count > 0 and self._rng.random() < 0.5:
                count -= 1
            if count > 0:
                survivors[item] = count
        self._counters = survivors

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Observed (undercounted) frequency of ``item``; 0 when absent."""
        return float(self._counters.get(item, 0))

    def estimates(self) -> Dict[Item, float]:
        return {item: float(count) for item, count in self._counters.items()}

    def frequent_items(self, support: float) -> Dict[Item, float]:
        """Retained items whose count is at least ``(support − ε) · N``."""
        if not 0 < support <= 1:
            raise InvalidParameterError("support must lie in (0, 1]")
        threshold = (support - self._epsilon) * self._rows_processed
        return {
            item: float(count)
            for item, count in self._counters.items()
            if count >= threshold
        }
