"""Sticky Sampling (Manku & Motwani 2002).

Sticky Sampling is the randomized companion of Lossy Counting: items are
admitted to the counter set by coin flips whose success probability halves
as the stream grows, and at each rate change every retained counter is
diminished by a geometric number of coin flips (simulating the counts it
would have missed under the new, lower rate).  With probability ``1 − δ``
every item of frequency at least ``ε·N`` is reported and undercounts are at
most ``ε·N``.

The paper mentions the sketch only to set it aside (worse practical
performance and weaker guarantees than the alternatives); it is implemented
here so the frequent-item baseline suite is complete and the comparison can
be reproduced rather than taken on faith.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

import numpy as np

from repro._typing import Item
from repro.core.base import FrequentItemSketch
from repro.core.batching import unit_rows
from repro.errors import InvalidParameterError, UnsupportedUpdateError
from repro.io.codec import (
    decode_item,
    encode_item,
    rng_state_from_jsonable,
    rng_state_to_jsonable,
)
from repro.io.serializable import SerializableSketch

__all__ = ["StickySamplingSketch"]


class StickySamplingSketch(FrequentItemSketch, SerializableSketch):
    """Sticky Sampling with support ``epsilon`` and failure probability ``delta``.

    Parameters
    ----------
    epsilon:
        Error / support parameter; counters track items of frequency ε·N.
    delta:
        Failure probability of the guarantee.
    seed:
        Seed for the admission and diminution coin flips.

    Example
    -------
    >>> sketch = StickySamplingSketch(epsilon=0.1, delta=0.01, seed=5)
    >>> _ = sketch.extend(["x"] * 50 + ["y"] * 3)
    >>> sketch.estimate("x") > 0
    True
    """

    def __init__(
        self,
        epsilon: float,
        delta: float = 0.01,
        *,
        seed: Optional[int] = None,
    ) -> None:
        if not 0 < epsilon < 1:
            raise InvalidParameterError("epsilon must lie in (0, 1)")
        if not 0 < delta < 1:
            raise InvalidParameterError("delta must lie in (0, 1)")
        # t = (1/ε)·log(1/(support·δ)) rows per sampling "window"; the classic
        # presentation uses support = ε for the window size.
        window = int(math.ceil((1.0 / epsilon) * math.log(1.0 / (epsilon * delta))))
        super().__init__(max(1, window), seed=seed)
        self._epsilon = epsilon
        self._delta = delta
        self._window = max(1, window)
        self._sampling_rate = 1.0
        self._next_rate_change = 2 * self._window
        self._counters: Dict[Item, int] = {}

    @property
    def epsilon(self) -> float:
        """The configured support/error parameter."""
        return self._epsilon

    @property
    def delta(self) -> float:
        """The configured failure probability."""
        return self._delta

    @property
    def sampling_rate(self) -> float:
        """Current admission probability ``1/r`` for unseen items."""
        return self._sampling_rate

    def __len__(self) -> int:
        return len(self._counters)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one unit row."""
        if weight != 1:
            raise UnsupportedUpdateError("Sticky Sampling supports unit-weight rows only")
        self._record_update(1.0)
        if self._rows_processed > self._next_rate_change:
            self._halve_rate()
        if item in self._counters:
            self._counters[item] += 1
            return
        if self._rng.random() < self._sampling_rate:
            self._counters[item] = 1

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
    ) -> "StickySamplingSketch":
        """Batched unit-row ingestion.

        The generic ``update_batch`` collapses duplicates into weighted
        updates, which Sticky Sampling rejects (admission is a per-row coin
        flip).  This override replays the rows through a tight loop that is
        exactly equivalent to the scalar :meth:`update` loop — including the
        order of every admission and diminution draw — with the per-call
        weight validation and bookkeeping hoisted out.
        """
        rows = unit_rows(items, weights, sketch_name="Sticky Sampling")
        rng_random = self._rng.random
        for item in rows:
            self._rows_processed += 1
            if self._rows_processed > self._next_rate_change:
                self._halve_rate()
            counters = self._counters
            if item in counters:
                counters[item] += 1
            elif rng_random() < self._sampling_rate:
                counters[item] = 1
        self._total_weight += float(len(rows))
        return self

    def _halve_rate(self) -> None:
        """Halve the sampling rate and diminish every counter accordingly.

        For each retained counter a sequence of fair coin flips is tossed;
        the counter loses one for every consecutive failure and the item is
        dropped if the counter reaches zero — exactly the adjustment that
        makes the retained state look as if the stream had been sampled at
        the new rate from the start.
        """
        self._sampling_rate /= 2.0
        self._next_rate_change *= 2
        survivors: Dict[Item, int] = {}
        for item, count in self._counters.items():
            while count > 0 and self._rng.random() < 0.5:
                count -= 1
            if count > 0:
                survivors[item] = count
        self._counters = survivors

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Observed (undercounted) frequency of ``item``; 0 when absent."""
        return float(self._counters.get(item, 0))

    def estimates(self) -> Dict[Item, float]:
        return {item: float(count) for item, count in self._counters.items()}

    def frequent_items(self, support: float) -> Dict[Item, float]:
        """Retained items whose count is at least ``(support − ε) · N``."""
        if not 0 < support <= 1:
            raise InvalidParameterError("support must lie in (0, 1]")
        threshold = (support - self._epsilon) * self._rows_processed
        return {
            item: float(count)
            for item, count in self._counters.items()
            if count >= threshold
        }

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        meta = {
            "epsilon": self._epsilon,
            "delta": self._delta,
            "sampling_rate": self._sampling_rate,
            "next_rate_change": self._next_rate_change,
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
            "labels": [encode_item(item) for item in self._counters],
            "rng_state": rng_state_to_jsonable(self._rng.getstate()),
        }
        counts = np.asarray(list(self._counters.values()), dtype=np.int64)
        return meta, {"counts": counts}

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        sketch = cls(float(meta["epsilon"]), float(meta["delta"]))
        sketch._counters = {
            decode_item(label): int(count)
            for label, count in zip(meta["labels"], arrays["counts"])
        }
        sketch._sampling_rate = float(meta["sampling_rate"])
        sketch._next_rate_change = int(meta["next_rate_change"])
        sketch._rows_processed = int(meta["rows_processed"])
        sketch._total_weight = float(meta["total_weight"])
        sketch._rng.setstate(rng_state_from_jsonable(meta["rng_state"]))
        return sketch
