"""CountMin sketch (Cormode & Muthukrishnan 2005).

The CountMin sketch is the counting sketch the paper positions for the case
where the filter conditions are *known in advance* (§3): it answers point
frequency queries with additive error ``ε·N`` using ``d`` rows of ``w``
counters and pairwise-independent hash functions.  Because its estimates are
upward biased and it cannot enumerate the items it has seen, it does not
solve the disaggregated subset sum problem with arbitrary filters — the gap
Unbiased Space Saving fills — but it is an important baseline for the
ad-prediction use case (Shrivastava et al. use it for historical counts) and
is exercised by the ad-click example.

A conservative-update variant and heavy-hitter tracking via an auxiliary
heap are included, as both are standard practice in production deployments.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import struct
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro._typing import Item
from repro.core.batching import collapse_batch, iter_weighted_rows
from repro.errors import CapabilityError, InvalidParameterError, UnsupportedUpdateError
from repro.io.codec import decode_item, encode_item
from repro.io.serializable import SerializableSketch

__all__ = ["CountMinSketch"]


def _hash64(item: Item, seed: int) -> int:
    """Stable 64-bit hash of an item under a given seed."""
    digest = hashlib.blake2b(
        repr(item).encode("utf-8"),
        digest_size=8,
        key=seed.to_bytes(8, "little", signed=False),
    ).digest()
    return struct.unpack("<Q", digest)[0]


class CountMinSketch(SerializableSketch):
    """CountMin sketch with optional conservative update and heavy-hitter heap.

    Parameters
    ----------
    epsilon:
        Additive error factor: point estimates exceed the truth by at most
        ``ε · total`` with probability ``1 − δ``.  Width is ``ceil(e/ε)``.
    delta:
        Failure probability.  Depth is ``ceil(ln(1/δ))``.
    conservative:
        Use conservative update (only raise the minimum counters), which
        reduces overestimation for skewed streams at the same memory.
    track_heavy_hitters:
        When a positive integer ``k``, maintain a heap of the current top-k
        estimated items so heavy hitters can be reported (CountMin alone
        cannot enumerate items).
    seed:
        Seed for the hash functions.

    Example
    -------
    >>> sketch = CountMinSketch(epsilon=0.01, delta=0.01, seed=1)
    >>> for _ in range(100):
    ...     sketch.update("popular")
    >>> sketch.estimate("popular") >= 100
    True
    """

    def __init__(
        self,
        epsilon: float = 0.001,
        delta: float = 0.01,
        *,
        width: Optional[int] = None,
        depth: Optional[int] = None,
        conservative: bool = False,
        track_heavy_hitters: int = 0,
        seed: Optional[int] = None,
    ) -> None:
        if width is None:
            if not 0 < epsilon < 1:
                raise InvalidParameterError("epsilon must lie in (0, 1)")
            width = int(math.ceil(math.e / epsilon))
        if depth is None:
            if not 0 < delta < 1:
                raise InvalidParameterError("delta must lie in (0, 1)")
            depth = int(math.ceil(math.log(1.0 / delta)))
        if width < 1 or depth < 1:
            raise InvalidParameterError("width and depth must be positive")
        self._width = width
        self._depth = depth
        self._conservative = conservative
        self._seed = seed if seed is not None else 0
        self._table = np.zeros((depth, width), dtype=np.float64)
        self._total_weight = 0.0
        self._rows_processed = 0
        self._heavy_k = int(track_heavy_hitters)
        # Heap of (estimate, item); estimates are refreshed lazily.
        self._heavy_heap: List[Tuple[float, Item]] = []
        self._heavy_members: Dict[Item, float] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of counters per hash row."""
        return self._width

    @property
    def depth(self) -> int:
        """Number of hash rows."""
        return self._depth

    @property
    def total_weight(self) -> float:
        """Total ingested weight."""
        return self._total_weight

    @property
    def rows_processed(self) -> int:
        """Number of update calls."""
        return self._rows_processed

    def _positions(self, item: Item) -> List[int]:
        return [
            _hash64(item, self._seed * 1000003 + row) % self._width
            for row in range(self._depth)
        ]

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Add ``weight`` occurrences of ``item``."""
        if weight < 0:
            raise UnsupportedUpdateError(
                "CountMin does not support deletions; use CountSketch instead"
            )
        self._rows_processed += 1
        self._total_weight += weight
        positions = self._positions(item)
        if self._conservative:
            current = min(
                self._table[row, position] for row, position in enumerate(positions)
            )
            target = current + weight
            for row, position in enumerate(positions):
                if self._table[row, position] < target:
                    self._table[row, position] = target
        else:
            for row, position in enumerate(positions):
                self._table[row, position] += weight
        if self._heavy_k:
            self._track(item)

    def update_batch(self, items, weights=None) -> "CountMinSketch":
        """Batched ingestion with a vectorized table update.

        The batch is collapsed to one ``(item, summed weight)`` pair per
        distinct item (hashing cost drops from one blake2b per raw row to one
        per distinct item) and then:

        * plain CountMin applies every collapsed increment in a single
          :func:`numpy.ufunc.at` scatter-add — exactly equivalent to the raw
          row loop because the table update is additive;
        * conservative update and heavy-hitter tracking (both
          order-dependent) apply the collapsed pairs sequentially in
          first-occurrence order, equivalent to a scalar loop over the
          collapsed pairs.

        ``rows_processed`` counts raw rows.
        """
        unique, collapsed, row_count, total = collapse_batch(items, weights)
        if not unique:
            return self
        if min(collapsed) < 0:
            raise UnsupportedUpdateError(
                "CountMin does not support deletions; use CountSketch instead"
            )
        self._rows_processed += row_count
        self._total_weight += total
        depth = self._depth
        if self._conservative or self._heavy_k:
            # Both features are order-dependent (conservative update reads
            # the table it writes; heavy tracking must observe the table as
            # it stood when each item's update landed), so apply the
            # collapsed pairs sequentially to keep the scalar-loop contract.
            for item, weight in zip(unique, collapsed):
                positions = self._positions(item)
                if self._conservative:
                    current = min(
                        self._table[row, position]
                        for row, position in enumerate(positions)
                    )
                    target = current + weight
                    for row, position in enumerate(positions):
                        if self._table[row, position] < target:
                            self._table[row, position] = target
                else:
                    for row, position in enumerate(positions):
                        self._table[row, position] += weight
                if self._heavy_k:
                    self._track(item)
        else:
            columns = np.empty((len(unique), depth), dtype=np.intp)
            for index, item in enumerate(unique):
                columns[index] = self._positions(item)
            row_indices = np.tile(np.arange(depth), len(unique))
            np.add.at(
                self._table,
                (row_indices, columns.ravel()),
                np.repeat(np.asarray(collapsed, dtype=np.float64), depth),
            )
        return self

    def extend(self, rows) -> "CountMinSketch":
        """Consume an iterable of items (or ``(item, weight)`` pairs)."""
        for item, weight in iter_weighted_rows(rows):
            self.update(item, weight)
        return self

    def _track(self, item: Item) -> None:
        """Maintain the top-k heap after an update touching ``item``."""
        estimate = self.estimate(item)
        if item in self._heavy_members:
            self._heavy_members[item] = estimate
            return
        if len(self._heavy_members) < self._heavy_k:
            self._heavy_members[item] = estimate
            heapq.heappush(self._heavy_heap, (estimate, str(item), item))
            return
        # Refresh the root before comparing: its stored estimate may be stale.
        while self._heavy_heap:
            root_estimate, _, root_item = self._heavy_heap[0]
            if root_item not in self._heavy_members:
                heapq.heappop(self._heavy_heap)
                continue
            fresh = self._heavy_members[root_item]
            if fresh > root_estimate:
                heapq.heapreplace(self._heavy_heap, (fresh, str(root_item), root_item))
                continue
            break
        if self._heavy_heap and estimate > self._heavy_heap[0][0]:
            _, __, evicted = heapq.heapreplace(
                self._heavy_heap, (estimate, str(item), item)
            )
            self._heavy_members.pop(evicted, None)
            self._heavy_members[item] = estimate

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Point estimate: the minimum counter over the ``d`` hash rows."""
        positions = self._positions(item)
        return float(
            min(self._table[row, position] for row, position in enumerate(positions))
        )

    def estimates(self, candidates: Optional[Iterable[Item]] = None) -> Dict[Item, float]:
        """Point estimates for the tracked view or an explicit candidate set.

        CountMin cannot enumerate the item universe, so enumeration needs
        either the ``track_heavy_hitters`` top-k view (the default) or an
        explicit ``candidates`` collection.

        Raises
        ------
        CapabilityError
            If ``candidates`` is omitted and tracking is disabled.
        """
        if candidates is not None:
            return {item: self.estimate(item) for item in candidates}
        if not self._heavy_k:
            raise CapabilityError(
                "CountMinSketch cannot enumerate items without tracking; "
                "construct with track_heavy_hitters > 0 or pass candidates=..."
            )
        return {item: self.estimate(item) for item in self._heavy_members}

    def heavy_hitters(self, phi: float) -> Dict[Item, float]:
        """Tracked items whose estimate is at least ``phi · total_weight``.

        Follows the :class:`~repro.core.base.FrequentItemSketch` contract
        (``phi`` in ``(0, 1]``, threshold ``phi * total_weight``, only
        positive estimates reported) over the tracked top-k view.  Requires
        ``track_heavy_hitters`` to have been enabled; CountMin by itself
        cannot enumerate the item universe.
        """
        if not self._heavy_k:
            raise CapabilityError(
                "heavy_hitters requires track_heavy_hitters > 0 at construction"
            )
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        threshold = phi * self._total_weight
        return {
            item: estimate
            for item, estimate in self.estimates().items()
            if estimate >= threshold and estimate > 0
        }

    def top_k(self, k: int) -> List[Tuple[Item, float]]:
        """The ``k`` largest estimates in the tracked view."""
        if k < 0:
            raise InvalidParameterError("k must be non-negative")
        ranked = sorted(self.estimates().items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:k]

    def __capabilities__(self) -> set:
        """Withhold enumeration capabilities when tracking is disabled."""
        caps = {"serialize"}
        if self._heavy_k:
            caps |= {"point", "heavy_hitters"}
        return caps

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(width={self._width}, depth={self._depth}, "
            f"conservative={self._conservative}, track_heavy_hitters={self._heavy_k}, "
            f"rows_processed={self._rows_processed}, "
            f"total_weight={self._total_weight:g})"
        )

    def inner_product(self, other: "CountMinSketch") -> float:
        """Upper-bound estimate of the inner product of two frequency vectors.

        Used for join size estimation; both sketches must share geometry and
        seed so that their hash functions align.
        """
        if (
            other.width != self._width
            or other.depth != self._depth
            or other._seed != self._seed
        ):
            raise InvalidParameterError("inner_product requires identically configured sketches")
        products = (self._table * other._table).sum(axis=1)
        return float(products.min())

    def error_bound(self) -> float:
        """Additive overestimation bound ``(e / width) · total_weight``."""
        return math.e / self._width * self._total_weight

    def memory_cells(self) -> int:
        """Number of counters allocated (width × depth)."""
        return self._width * self._depth

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        meta = {
            "width": self._width,
            "depth": self._depth,
            "conservative": self._conservative,
            "seed": self._seed,
            "track_heavy_hitters": self._heavy_k,
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
            "heavy_labels": [encode_item(item) for item in self._heavy_members],
        }
        arrays = {
            "table": self._table,
            "heavy_estimates": np.asarray(
                list(self._heavy_members.values()), dtype=np.float64
            ),
        }
        return meta, arrays

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        sketch = cls(
            width=int(meta["width"]),
            depth=int(meta["depth"]),
            conservative=bool(meta["conservative"]),
            track_heavy_hitters=int(meta["track_heavy_hitters"]),
            seed=int(meta["seed"]),
        )
        sketch._table = np.asarray(arrays["table"], dtype=np.float64)
        sketch._rows_processed = int(meta["rows_processed"])
        sketch._total_weight = float(meta["total_weight"])
        sketch._heavy_members = {
            decode_item(label): float(estimate)
            for label, estimate in zip(meta["heavy_labels"], arrays["heavy_estimates"])
        }
        # The lazy heap is rebuilt from the members map (the source of
        # truth); stale entries the original carried are irrelevant.
        sketch._heavy_heap = [
            (estimate, str(item), item) for item, estimate in sketch._heavy_members.items()
        ]
        heapq.heapify(sketch._heavy_heap)
        return sketch
