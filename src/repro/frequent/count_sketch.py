"""Count Sketch / AMS-style frequency estimation.

The AMS sketch (Alon, Matias & Szegedy 1999) and its per-item refinement,
the Count Sketch (Charikar, Chen & Farach-Colton), estimate item frequencies
and second moments from random ±1 projections.  The paper cites AMS next to
CountMin as the appropriate tool when the filter conditions are known before
the sketch is built (§3); it is included here both as that baseline and
because its *unbiased* point estimates make an instructive contrast with
CountMin's one-sided error in the test-suite's bias studies.

Supported operations: signed updates (turnstile streams), unbiased point
estimates via the median of row estimates, second-moment (self-join size)
estimation, and inner products between two identically configured sketches.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import struct
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro._typing import Item
from repro.core.batching import collapse_batch, iter_weighted_rows
from repro.errors import CapabilityError, InvalidParameterError
from repro.io.codec import decode_item, encode_item
from repro.io.serializable import SerializableSketch

__all__ = ["CountSketch"]


def _hash64(item: Item, seed: int) -> int:
    digest = hashlib.blake2b(
        repr(item).encode("utf-8"),
        digest_size=8,
        key=seed.to_bytes(8, "little", signed=False),
    ).digest()
    return struct.unpack("<Q", digest)[0]


class CountSketch(SerializableSketch):
    """Count Sketch with ``depth`` rows of ``width`` signed counters.

    Parameters
    ----------
    width:
        Counters per row; point-estimate standard error is about
        ``sqrt(F2 / width)`` where ``F2`` is the stream's second moment.
    depth:
        Number of independent rows; the median over rows boosts confidence.
    seed:
        Seed for the bucket and sign hash functions.
    track_keys:
        When a positive integer ``k``, maintain the current top-``k``
        estimated items in an auxiliary heap so :meth:`estimates` and
        :meth:`heavy_hitters` can enumerate without an external candidate
        set (Count Sketch alone cannot enumerate the item universe).

    Example
    -------
    >>> sketch = CountSketch(width=64, depth=5, seed=3)
    >>> for _ in range(50):
    ...     sketch.update("hot")
    >>> abs(sketch.estimate("hot") - 50) <= 50
    True
    """

    def __init__(
        self,
        width: int = 256,
        depth: int = 5,
        *,
        seed: Optional[int] = None,
        track_keys: int = 0,
    ) -> None:
        if width < 1 or depth < 1:
            raise InvalidParameterError("width and depth must be positive")
        if track_keys < 0:
            raise InvalidParameterError("track_keys must be non-negative")
        self._width = width
        self._depth = depth
        self._seed = seed if seed is not None else 0
        self._table = np.zeros((depth, width), dtype=np.float64)
        self._total_weight = 0.0
        self._rows_processed = 0
        self._track_k = int(track_keys)
        # Heap of (estimate, tie-break, item); estimates refresh lazily.
        self._tracked_heap: List[Tuple[float, str, Item]] = []
        self._tracked: Dict[Item, float] = {}

    @property
    def width(self) -> int:
        """Counters per row."""
        return self._width

    @property
    def depth(self) -> int:
        """Number of hash rows."""
        return self._depth

    @property
    def rows_processed(self) -> int:
        """Number of update calls."""
        return self._rows_processed

    @property
    def total_weight(self) -> float:
        """Net ingested weight (signed)."""
        return self._total_weight

    @property
    def track_keys(self) -> int:
        """Size of the tracked-key view (0 when tracking is disabled)."""
        return self._track_k

    def _bucket(self, item: Item, row: int) -> int:
        return _hash64(item, self._seed * 2000003 + row) % self._width

    def _sign(self, item: Item, row: int) -> int:
        return 1 if _hash64(item, self._seed * 3000017 + row) & 1 else -1

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Add a signed ``weight`` for ``item`` (deletions allowed)."""
        self._rows_processed += 1
        self._total_weight += weight
        if not self._track_k:
            for row in range(self._depth):
                self._table[row, self._bucket(item, row)] += self._sign(item, row) * weight
            return
        self._track(item, self._apply_tracked(item, weight))

    def _apply_tracked(self, item: Item, weight: float) -> float:
        """Write one signed update and return the fresh estimate.

        Reuses the bucket/sign hashes of the write for the read, so
        tracking does not double the per-update hash work.
        """
        row_values = []
        table = self._table
        for row in range(self._depth):
            bucket = self._bucket(item, row)
            sign = self._sign(item, row)
            table[row, bucket] += sign * weight
            row_values.append(sign * table[row, bucket])
        return float(np.median(row_values))

    def update_batch(self, items, weights=None) -> "CountSketch":
        """Batched ingestion: one signed table update per distinct item.

        The signed table update is purely additive, so collapsing the
        batch's duplicate items (summing their signed weights) yields a
        state exactly equal to the raw row loop while hashing each distinct
        item only once.  ``rows_processed`` counts raw rows.
        """
        unique, collapsed, row_count, total = collapse_batch(items, weights)
        self._rows_processed += row_count
        self._total_weight += total
        table = self._table
        if self._track_k:
            for item, weight in zip(unique, collapsed):
                self._track(item, self._apply_tracked(item, weight))
        else:
            for item, weight in zip(unique, collapsed):
                for row in range(self._depth):
                    table[row, self._bucket(item, row)] += self._sign(item, row) * weight
        return self

    def extend(self, rows: Iterable) -> "CountSketch":
        """Consume an iterable of items (or ``(item, weight)`` pairs)."""
        for item, weight in iter_weighted_rows(rows):
            self.update(item, weight)
        return self

    def _track(self, item: Item, estimate: float) -> None:
        """Maintain the tracked top-k heap after an update touching ``item``."""
        if item in self._tracked:
            self._tracked[item] = estimate
            return
        if len(self._tracked) < self._track_k:
            self._tracked[item] = estimate
            heapq.heappush(self._tracked_heap, (estimate, str(item), item))
            return
        # Refresh the root before comparing: its stored estimate may be stale.
        while self._tracked_heap:
            root_estimate, _, root_item = self._tracked_heap[0]
            if root_item not in self._tracked:
                heapq.heappop(self._tracked_heap)
                continue
            fresh = self._tracked[root_item]
            if fresh > root_estimate:
                heapq.heapreplace(self._tracked_heap, (fresh, str(root_item), root_item))
                continue
            break
        if self._tracked_heap and estimate > self._tracked_heap[0][0]:
            _, __, evicted = heapq.heapreplace(
                self._tracked_heap, (estimate, str(item), item)
            )
            self._tracked.pop(evicted, None)
            self._tracked[item] = estimate

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Unbiased point estimate: median over rows of signed bucket values."""
        row_estimates = [
            self._sign(item, row) * self._table[row, self._bucket(item, row)]
            for row in range(self._depth)
        ]
        return float(np.median(row_estimates))

    def row_estimates(self, item: Item) -> List[float]:
        """The per-row estimates whose median forms :meth:`estimate`."""
        return [
            float(self._sign(item, row) * self._table[row, self._bucket(item, row)])
            for row in range(self._depth)
        ]

    def second_moment(self) -> float:
        """AMS estimate of the second frequency moment ``F2 = Σ n_i²``.

        The squared L2 norm of each row is an unbiased estimate of ``F2``;
        the median over rows is reported.
        """
        row_moments = (self._table**2).sum(axis=1)
        return float(np.median(row_moments))

    def inner_product(self, other: "CountSketch") -> float:
        """Estimate of ``Σ_i n_i · m_i`` between two streams (join size)."""
        if (
            other.width != self._width
            or other.depth != self._depth
            or other._seed != self._seed
        ):
            raise InvalidParameterError("inner_product requires identically configured sketches")
        products = (self._table * other._table).sum(axis=1)
        return float(np.median(products))

    def estimate_error_bound(self) -> float:
        """Typical point-estimate standard error ``sqrt(F2 / width)``."""
        return math.sqrt(max(0.0, self.second_moment()) / self._width)

    def estimates(self, candidates: Optional[Iterable[Item]] = None) -> Dict[Item, float]:
        """Point estimates, either for the tracked-key view or for candidates.

        Count Sketch cannot enumerate the item universe, so an
        enumeration-style ``estimates()`` needs one of two sources:

        * an explicit ``candidates`` collection (e.g. the retained set of a
          Space Saving sketch run alongside) — always available;
        * the tracked-key view maintained when the sketch was built with
          ``track_keys > 0`` — the default when ``candidates`` is omitted.

        Raises
        ------
        CapabilityError
            If ``candidates`` is omitted and key tracking is disabled.
        """
        if candidates is not None:
            return {item: self.estimate(item) for item in candidates}
        if not self._track_k:
            raise CapabilityError(
                "CountSketch cannot enumerate items without a tracked-key "
                "view; construct with track_keys > 0 or pass candidates=..."
            )
        return {item: self.estimate(item) for item in self._tracked}

    def heavy_hitters(self, phi: float) -> Dict[Item, float]:
        """Tracked items with estimated relative frequency at least ``phi``.

        Follows the :class:`~repro.core.base.FrequentItemSketch` contract
        (``phi`` in ``(0, 1]``, threshold ``phi * total_weight``, only
        positive estimates reported) over the tracked-key view; requires
        ``track_keys > 0`` at construction.
        """
        if not self._track_k:
            raise CapabilityError(
                "heavy_hitters requires track_keys > 0 at construction"
            )
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        threshold = phi * self._total_weight
        return {
            item: estimate
            for item, estimate in self.estimates().items()
            if estimate >= threshold and estimate > 0
        }

    def top_k(self, k: int) -> List[Tuple[Item, float]]:
        """The ``k`` largest estimates in the tracked-key view."""
        if k < 0:
            raise InvalidParameterError("k must be non-negative")
        ranked = sorted(self.estimates().items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:k]

    def __capabilities__(self) -> set:
        """Refine the structural capabilities by configuration.

        Without a tracked-key view the sketch cannot enumerate items, so
        the ``point`` and ``heavy_hitters`` capabilities are withheld even
        though the methods exist (they raise
        :class:`~repro.errors.CapabilityError`).
        """
        caps = {"serialize"}
        if self._track_k:
            caps |= {"point", "heavy_hitters"}
        return caps

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(width={self._width}, depth={self._depth}, "
            f"track_keys={self._track_k}, rows_processed={self._rows_processed}, "
            f"total_weight={self._total_weight:g})"
        )

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        meta = {
            "width": self._width,
            "depth": self._depth,
            "seed": self._seed,
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
            "track_keys": self._track_k,
            "tracked_labels": [encode_item(item) for item in self._tracked],
        }
        return meta, {"table": self._table}

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        sketch = cls(
            width=int(meta["width"]),
            depth=int(meta["depth"]),
            seed=int(meta["seed"]),
            # Older frames predate the tracked-key view; .get keeps them loadable.
            track_keys=int(meta.get("track_keys", 0)),
        )
        sketch._table = np.asarray(arrays["table"], dtype=np.float64)
        sketch._rows_processed = int(meta["rows_processed"])
        sketch._total_weight = float(meta["total_weight"])
        # Tracked estimates are recomputed from the restored table (the
        # source of truth); the lazy heap is rebuilt from the members map.
        sketch._tracked = {
            decode_item(label): 0.0 for label in meta.get("tracked_labels", [])
        }
        for item in sketch._tracked:
            sketch._tracked[item] = sketch.estimate(item)
        sketch._tracked_heap = [
            (estimate, str(item), item) for item, estimate in sketch._tracked.items()
        ]
        heapq.heapify(sketch._tracked_heap)
        return sketch
