"""Count Sketch / AMS-style frequency estimation.

The AMS sketch (Alon, Matias & Szegedy 1999) and its per-item refinement,
the Count Sketch (Charikar, Chen & Farach-Colton), estimate item frequencies
and second moments from random ±1 projections.  The paper cites AMS next to
CountMin as the appropriate tool when the filter conditions are known before
the sketch is built (§3); it is included here both as that baseline and
because its *unbiased* point estimates make an instructive contrast with
CountMin's one-sided error in the test-suite's bias studies.

Supported operations: signed updates (turnstile streams), unbiased point
estimates via the median of row estimates, second-moment (self-join size)
estimation, and inner products between two identically configured sketches.
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Dict, List, Optional

import numpy as np

from repro._typing import Item
from repro.core.batching import collapse_batch
from repro.errors import InvalidParameterError
from repro.io.serializable import SerializableSketch

__all__ = ["CountSketch"]


def _hash64(item: Item, seed: int) -> int:
    digest = hashlib.blake2b(
        repr(item).encode("utf-8"),
        digest_size=8,
        key=seed.to_bytes(8, "little", signed=False),
    ).digest()
    return struct.unpack("<Q", digest)[0]


class CountSketch(SerializableSketch):
    """Count Sketch with ``depth`` rows of ``width`` signed counters.

    Parameters
    ----------
    width:
        Counters per row; point-estimate standard error is about
        ``sqrt(F2 / width)`` where ``F2`` is the stream's second moment.
    depth:
        Number of independent rows; the median over rows boosts confidence.
    seed:
        Seed for the bucket and sign hash functions.

    Example
    -------
    >>> sketch = CountSketch(width=64, depth=5, seed=3)
    >>> for _ in range(50):
    ...     sketch.update("hot")
    >>> abs(sketch.estimate("hot") - 50) <= 50
    True
    """

    def __init__(self, width: int = 256, depth: int = 5, *, seed: Optional[int] = None) -> None:
        if width < 1 or depth < 1:
            raise InvalidParameterError("width and depth must be positive")
        self._width = width
        self._depth = depth
        self._seed = seed if seed is not None else 0
        self._table = np.zeros((depth, width), dtype=np.float64)
        self._total_weight = 0.0
        self._rows_processed = 0

    @property
    def width(self) -> int:
        """Counters per row."""
        return self._width

    @property
    def depth(self) -> int:
        """Number of hash rows."""
        return self._depth

    @property
    def rows_processed(self) -> int:
        """Number of update calls."""
        return self._rows_processed

    @property
    def total_weight(self) -> float:
        """Net ingested weight (signed)."""
        return self._total_weight

    def _bucket(self, item: Item, row: int) -> int:
        return _hash64(item, self._seed * 2000003 + row) % self._width

    def _sign(self, item: Item, row: int) -> int:
        return 1 if _hash64(item, self._seed * 3000017 + row) & 1 else -1

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Add a signed ``weight`` for ``item`` (deletions allowed)."""
        self._rows_processed += 1
        self._total_weight += weight
        for row in range(self._depth):
            self._table[row, self._bucket(item, row)] += self._sign(item, row) * weight

    def update_batch(self, items, weights=None) -> "CountSketch":
        """Batched ingestion: one signed table update per distinct item.

        The signed table update is purely additive, so collapsing the
        batch's duplicate items (summing their signed weights) yields a
        state exactly equal to the raw row loop while hashing each distinct
        item only once.  ``rows_processed`` counts raw rows.
        """
        unique, collapsed, row_count, total = collapse_batch(items, weights)
        self._rows_processed += row_count
        self._total_weight += total
        table = self._table
        for item, weight in zip(unique, collapsed):
            for row in range(self._depth):
                table[row, self._bucket(item, row)] += self._sign(item, row) * weight
        return self

    def update_stream(self, rows) -> "CountSketch":
        """Consume an iterable of items (or ``(item, weight)`` pairs)."""
        for row in rows:
            if (
                isinstance(row, tuple)
                and len(row) == 2
                and isinstance(row[1], (int, float))
                and not isinstance(row[0], (int, float))
            ):
                self.update(row[0], float(row[1]))
            else:
                self.update(row)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Unbiased point estimate: median over rows of signed bucket values."""
        row_estimates = [
            self._sign(item, row) * self._table[row, self._bucket(item, row)]
            for row in range(self._depth)
        ]
        return float(np.median(row_estimates))

    def row_estimates(self, item: Item) -> List[float]:
        """The per-row estimates whose median forms :meth:`estimate`."""
        return [
            float(self._sign(item, row) * self._table[row, self._bucket(item, row)])
            for row in range(self._depth)
        ]

    def second_moment(self) -> float:
        """AMS estimate of the second frequency moment ``F2 = Σ n_i²``.

        The squared L2 norm of each row is an unbiased estimate of ``F2``;
        the median over rows is reported.
        """
        row_moments = (self._table**2).sum(axis=1)
        return float(np.median(row_moments))

    def inner_product(self, other: "CountSketch") -> float:
        """Estimate of ``Σ_i n_i · m_i`` between two streams (join size)."""
        if (
            other.width != self._width
            or other.depth != self._depth
            or other._seed != self._seed
        ):
            raise InvalidParameterError("inner_product requires identically configured sketches")
        products = (self._table * other._table).sum(axis=1)
        return float(np.median(products))

    def estimate_error_bound(self) -> float:
        """Typical point-estimate standard error ``sqrt(F2 / width)``."""
        return math.sqrt(max(0.0, self.second_moment()) / self._width)

    def estimates_for(self, items) -> Dict[Item, float]:
        """Point estimates for an explicit collection of candidate items.

        Count Sketch cannot enumerate items on its own; callers supply the
        candidate set (e.g. from a Space Saving sketch run alongside it).
        """
        return {item: self.estimate(item) for item in items}

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        meta = {
            "width": self._width,
            "depth": self._depth,
            "seed": self._seed,
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
        }
        return meta, {"table": self._table}

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        sketch = cls(
            width=int(meta["width"]), depth=int(meta["depth"]), seed=int(meta["seed"])
        )
        sketch._table = np.asarray(arrays["table"], dtype=np.float64)
        sketch._rows_processed = int(meta["rows_processed"])
        sketch._total_weight = float(meta["total_weight"])
        return sketch
