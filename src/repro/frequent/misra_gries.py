"""Misra-Gries (Frequent) sketch.

The Misra-Gries sketch (Misra & Gries 1982; rediscovered by Demaine et al.
and Karp et al.) keeps at most ``m`` counters.  An arriving item increments
its counter if present, takes a free counter if one exists, and otherwise
*every* counter is decremented by one (the arriving item is discarded).

Section 5.2 of the paper shows the sketch is isomorphic to Deterministic
Space Saving: the number of decrement rounds equals Space Saving's minimum
counter, and

    N̂_i^MG = (N̂_i^SS − N̂_min^SS)_+          (soft thresholding)
    N̂_i^SS = N̂_i^MG + decrements   (for non-zero counters)

Both directions are implemented so the property tests can verify the
isomorphism directly against the optimized Space Saving implementation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro._typing import Item
from repro.core.base import FrequentItemSketch
from repro.core.batching import collapse_batch
from repro.errors import InvalidParameterError, UnsupportedUpdateError
from repro.io.codec import decode_item, encode_item
from repro.io.serializable import SerializableSketch

__all__ = ["MisraGriesSketch"]


class MisraGriesSketch(FrequentItemSketch, SerializableSketch):
    """Classic Misra-Gries summary with ``m`` counters.

    Guarantees: for every item, ``true − n_tot/(m+1) ≤ estimate ≤ true``; any
    item with frequency above ``n_tot/(m+1)`` has a non-zero counter.

    The implementation keeps the decrement operation ``O(1)`` amortized by
    tracking a global ``decrement_offset``: counters are stored as offsets
    above the global value, so "decrement everything" is a single addition
    plus lazily discarding counters that reach zero.

    Example
    -------
    >>> sketch = MisraGriesSketch(capacity=2)
    >>> _ = sketch.extend(["a", "b", "a", "c", "a"])
    >>> sketch.estimate("a") >= 1
    True
    """

    def __init__(self, capacity: int, *, seed: Optional[int] = None) -> None:
        super().__init__(capacity, seed=seed)
        self._counters: Dict[Item, int] = {}
        self._decrements = 0

    @property
    def decrements(self) -> int:
        """Total number of decrement rounds applied so far.

        Equal in distribution (and, for the same stream, exactly equal) to
        Deterministic Space Saving's minimum counter — the bridge of the
        §5.2 isomorphism.
        """
        return self._decrements

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one raw row; only unit (or positive integer) weights are allowed."""
        if weight <= 0 or weight != int(weight):
            raise UnsupportedUpdateError(
                "Misra-Gries processes positive integer weights only"
            )
        remaining = int(weight)
        self._record_update(remaining)
        counters = self._counters
        while remaining > 0:
            if item in counters:
                counters[item] += remaining
                return
            if len(counters) < self._capacity:
                counters[item] = remaining
                return
            # Decrement round: reduce every counter by the smallest counter
            # value or by the remaining new weight, whichever is smaller.
            # This batches what the textbook algorithm does one unit at a time.
            min_count = min(counters.values())
            step = min(min_count, remaining)
            self._decrements += step
            remaining -= step
            for label in list(counters):
                counters[label] -= step
                if counters[label] == 0:
                    del counters[label]

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
    ) -> "MisraGriesSketch":
        """Batched ingestion: collapse duplicates, then apply weighted updates.

        Equivalent to a scalar :meth:`update` loop over the batch's collapsed
        ``(item, summed weight)`` pairs in first-occurrence order; the
        integrality requirement applies to the aggregated per-item weights.
        ``rows_processed`` counts raw rows.
        """
        unique, collapsed, row_count, total = collapse_batch(items, weights)
        if not unique:
            return self
        if any(weight <= 0 or weight != int(weight) for weight in collapsed):
            raise UnsupportedUpdateError(
                "Misra-Gries processes positive integer weights only"
            )
        counters = self._counters
        capacity = self._capacity
        for item, weight in zip(unique, collapsed):
            remaining = int(weight)
            while remaining > 0:
                if item in counters:
                    counters[item] += remaining
                    break
                if len(counters) < capacity:
                    counters[item] = remaining
                    break
                min_count = min(counters.values())
                step = min(min_count, remaining)
                self._decrements += step
                remaining -= step
                for label in list(counters):
                    counters[label] -= step
                    if counters[label] == 0:
                        del counters[label]
        self._rows_processed += row_count
        self._total_weight += total
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Lower-bound estimate of the item's count (0 when not retained)."""
        return float(self._counters.get(item, 0))

    def estimates(self) -> Dict[Item, float]:
        return {item: float(count) for item, count in self._counters.items() if count > 0}

    def error_bound(self) -> float:
        """Every estimate undercounts by at most this many occurrences."""
        return float(self._decrements)

    def guaranteed_heavy_hitters(self, phi: float) -> Dict[Item, float]:
        """Items that are provably above relative frequency ``phi``."""
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        threshold = phi * self._total_weight
        return {
            item: count for item, count in self.estimates().items() if count >= threshold
        }

    # ------------------------------------------------------------------
    # Isomorphism with Deterministic Space Saving (§5.2)
    # ------------------------------------------------------------------
    def to_space_saving_estimates(self) -> Dict[Item, float]:
        """Recover the Deterministic Space Saving estimates for retained items.

        Adds the total number of decrements back onto every non-zero
        counter, inverting the soft-thresholding relationship.
        """
        return {
            item: float(count + self._decrements)
            for item, count in self._counters.items()
            if count > 0
        }

    def merge(self, other: "MisraGriesSketch") -> "MisraGriesSketch":
        """Mergeable-summaries merge (Agarwal et al. 2013).

        Counters are summed and the result is soft-thresholded by its
        ``(m+1)``-th largest counter so at most ``m`` non-zero counters
        remain.  The merged sketch preserves the deterministic error
        guarantee of the inputs combined.
        """
        if other.capacity != self.capacity:
            raise InvalidParameterError("merged sketches must share a capacity")
        combined: Dict[Item, int] = dict(self._counters)
        for item, count in other._counters.items():
            combined[item] = combined.get(item, 0) + count
        merged = MisraGriesSketch(self._capacity)
        merged._rows_processed = self._rows_processed + other._rows_processed
        merged._total_weight = self._total_weight + other._total_weight
        merged._decrements = self._decrements + other._decrements
        if len(combined) > self._capacity:
            threshold = sorted(combined.values(), reverse=True)[self._capacity]
            merged._decrements += threshold
            combined = {
                item: count - threshold
                for item, count in combined.items()
                if count - threshold > 0
            }
        merged._counters = combined
        return merged

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        labels = [encode_item(label) for label in self._counters]
        meta = {
            "capacity": self._capacity,
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
            "decrements": self._decrements,
            "labels": labels,
        }
        counts = np.asarray(list(self._counters.values()), dtype=np.int64)
        return meta, {"counts": counts}

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        sketch = cls(int(meta["capacity"]))
        sketch._counters = {
            decode_item(label): int(count)
            for label, count in zip(meta["labels"], arrays["counts"])
        }
        sketch._rows_processed = int(meta["rows_processed"])
        sketch._total_weight = float(meta["total_weight"])
        sketch._decrements = int(meta["decrements"])
        return sketch
