"""Lossy Counting (Manku & Motwani 2002).

Lossy Counting divides the stream into buckets of width ``w = ceil(1/ε)``.
Each retained entry stores its observed count plus the maximum possible
undercount ``Δ`` (the bucket index when it was inserted); at every bucket
boundary entries whose ``count + Δ`` no longer exceeds the bucket index are
dropped.  Guarantees: every item with true frequency at least ``ε·N`` is
retained, and estimates undercount by at most ``ε·N``.

Unlike Misra-Gries / Space Saving, the number of retained counters is not
hard-bounded by a constant ``m`` — the worst case is ``O((1/ε)·log(εN))`` —
which the paper points out when comparing reduction operations (§5.2).  The
sketch is included as one of the deterministic frequent-item baselines and,
like the others, it is *biased*, making it unsuitable for disaggregated
subset sum estimation.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro._typing import Item
from repro.core.base import FrequentItemSketch
from repro.errors import InvalidParameterError, UnsupportedUpdateError

__all__ = ["LossyCountingSketch"]


class LossyCountingSketch(FrequentItemSketch):
    """Lossy Counting with error parameter ``epsilon``.

    Parameters
    ----------
    epsilon:
        Maximum relative undercount; bucket width is ``ceil(1/epsilon)``.
    capacity:
        Optional *soft* capacity used only to report a comparable "size"
        through the :class:`FrequentItemSketch` interface; by default it is
        ``ceil(1/epsilon)``.  The sketch itself never enforces it — that is
        the structural difference from Space Saving the paper highlights.

    Example
    -------
    >>> sketch = LossyCountingSketch(epsilon=0.25)
    >>> _ = sketch.update_stream(["a"] * 10 + ["b"] * 2)
    >>> sketch.estimate("a") > 0
    True
    """

    def __init__(
        self,
        epsilon: float,
        *,
        capacity: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        if not 0 < epsilon < 1:
            raise InvalidParameterError("epsilon must lie in (0, 1)")
        bucket_width = int(math.ceil(1.0 / epsilon))
        super().__init__(capacity or bucket_width, seed=seed)
        self._epsilon = epsilon
        self._bucket_width = bucket_width
        self._current_bucket = 1
        # item -> (count, delta)
        self._entries: Dict[Item, Tuple[int, int]] = {}

    @property
    def epsilon(self) -> float:
        """The configured relative error bound."""
        return self._epsilon

    @property
    def bucket_width(self) -> int:
        """Number of rows per bucket, ``ceil(1/epsilon)``."""
        return self._bucket_width

    @property
    def current_bucket(self) -> int:
        """Index of the bucket currently being filled (1-based)."""
        return self._current_bucket

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one unit row (Lossy Counting is defined for unit updates)."""
        if weight != 1:
            raise UnsupportedUpdateError("Lossy Counting supports unit-weight rows only")
        self._record_update(1.0)
        count, delta = self._entries.get(item, (0, self._current_bucket - 1))
        self._entries[item] = (count + 1, delta)
        if self._rows_processed % self._bucket_width == 0:
            self._prune()
            self._current_bucket += 1

    def _prune(self) -> None:
        """Drop entries whose maximum possible count is at most the bucket index."""
        bucket = self._current_bucket
        self._entries = {
            item: (count, delta)
            for item, (count, delta) in self._entries.items()
            if count + delta > bucket
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Observed (undercounted) frequency of ``item``; 0 when dropped."""
        entry = self._entries.get(item)
        return 0.0 if entry is None else float(entry[0])

    def upper_bound(self, item: Item) -> float:
        """Upper bound ``count + Δ`` on the item's true frequency."""
        entry = self._entries.get(item)
        return 0.0 if entry is None else float(entry[0] + entry[1])

    def estimates(self) -> Dict[Item, float]:
        return {item: float(count) for item, (count, _) in self._entries.items()}

    def error_bound(self) -> float:
        """Maximum undercount of any estimate: ``ε · N``."""
        return self._epsilon * self._rows_processed

    def frequent_items(self, support: float) -> Dict[Item, float]:
        """Items whose true frequency may exceed ``support · N``.

        Returns every retained item with observed count at least
        ``(support − ε) · N`` — the standard Lossy Counting output rule,
        which has no false negatives.
        """
        if not 0 < support <= 1:
            raise InvalidParameterError("support must lie in (0, 1]")
        threshold = (support - self._epsilon) * self._rows_processed
        return {
            item: float(count)
            for item, (count, _) in self._entries.items()
            if count >= threshold
        }
