"""Lossy Counting (Manku & Motwani 2002).

Lossy Counting divides the stream into buckets of width ``w = ceil(1/ε)``.
Each retained entry stores its observed count plus the maximum possible
undercount ``Δ`` (the bucket index when it was inserted); at every bucket
boundary entries whose ``count + Δ`` no longer exceeds the bucket index are
dropped.  Guarantees: every item with true frequency at least ``ε·N`` is
retained, and estimates undercount by at most ``ε·N``.

Unlike Misra-Gries / Space Saving, the number of retained counters is not
hard-bounded by a constant ``m`` — the worst case is ``O((1/ε)·log(εN))`` —
which the paper points out when comparing reduction operations (§5.2).  The
sketch is included as one of the deterministic frequent-item baselines and,
like the others, it is *biased*, making it unsuitable for disaggregated
subset sum estimation.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro._typing import Item
from repro.core.base import FrequentItemSketch
from repro.core.batching import unit_rows
from repro.errors import InvalidParameterError, UnsupportedUpdateError
from repro.io.codec import decode_item, encode_item
from repro.io.serializable import SerializableSketch

__all__ = ["LossyCountingSketch"]


class LossyCountingSketch(FrequentItemSketch, SerializableSketch):
    """Lossy Counting with error parameter ``epsilon``.

    Parameters
    ----------
    epsilon:
        Maximum relative undercount; bucket width is ``ceil(1/epsilon)``.
    capacity:
        Optional *soft* capacity used only to report a comparable "size"
        through the :class:`FrequentItemSketch` interface; by default it is
        ``ceil(1/epsilon)``.  The sketch itself never enforces it — that is
        the structural difference from Space Saving the paper highlights.

    Example
    -------
    >>> sketch = LossyCountingSketch(epsilon=0.25)
    >>> _ = sketch.extend(["a"] * 10 + ["b"] * 2)
    >>> sketch.estimate("a") > 0
    True
    """

    def __init__(
        self,
        epsilon: float,
        *,
        capacity: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        if not 0 < epsilon < 1:
            raise InvalidParameterError("epsilon must lie in (0, 1)")
        bucket_width = int(math.ceil(1.0 / epsilon))
        super().__init__(capacity or bucket_width, seed=seed)
        self._epsilon = epsilon
        self._bucket_width = bucket_width
        self._current_bucket = 1
        # item -> (count, delta)
        self._entries: Dict[Item, Tuple[int, int]] = {}

    @property
    def epsilon(self) -> float:
        """The configured relative error bound."""
        return self._epsilon

    @property
    def bucket_width(self) -> int:
        """Number of rows per bucket, ``ceil(1/epsilon)``."""
        return self._bucket_width

    @property
    def current_bucket(self) -> int:
        """Index of the bucket currently being filled (1-based)."""
        return self._current_bucket

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one unit row (Lossy Counting is defined for unit updates)."""
        if weight != 1:
            raise UnsupportedUpdateError("Lossy Counting supports unit-weight rows only")
        self._record_update(1.0)
        count, delta = self._entries.get(item, (0, self._current_bucket - 1))
        self._entries[item] = (count + 1, delta)
        if self._rows_processed % self._bucket_width == 0:
            self._prune()
            self._current_bucket += 1

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
    ) -> "LossyCountingSketch":
        """Batched unit-row ingestion, segmented at bucket boundaries.

        The generic ``update_batch`` collapses duplicates into weighted
        updates, which Lossy Counting rejects (it is defined for unit rows).
        This override is exactly equivalent to the scalar :meth:`update`
        loop instead: the batch is split at the bucket boundaries the scalar
        loop would have crossed, and within one bucket segment the rows of
        each item are pre-aggregated — valid because an entry's ``Δ`` is
        fixed by the bucket in which it first appears and increments within
        a segment are order-independent.  Pruning happens at the same row
        positions, so the final entry set is identical to row-at-a-time
        ingestion.
        """
        rows = unit_rows(items, weights, sketch_name="Lossy Counting")
        width = self._bucket_width
        position = 0
        total_rows = len(rows)
        while position < total_rows:
            # Re-fetch each segment: _prune() rebinds self._entries.
            entries = self._entries
            room = width - (self._rows_processed % width)
            segment = rows[position : position + room]
            position += len(segment)
            delta = self._current_bucket - 1
            aggregated: Dict[Item, int] = {}
            for item in segment:
                aggregated[item] = aggregated.get(item, 0) + 1
            for item, added in aggregated.items():
                count, entry_delta = entries.get(item, (0, delta))
                entries[item] = (count + added, entry_delta)
            self._rows_processed += len(segment)
            self._total_weight += float(len(segment))
            if self._rows_processed % width == 0:
                self._prune()
                self._current_bucket += 1
        return self

    def _prune(self) -> None:
        """Drop entries whose maximum possible count is at most the bucket index."""
        bucket = self._current_bucket
        self._entries = {
            item: (count, delta)
            for item, (count, delta) in self._entries.items()
            if count + delta > bucket
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Observed (undercounted) frequency of ``item``; 0 when dropped."""
        entry = self._entries.get(item)
        return 0.0 if entry is None else float(entry[0])

    def upper_bound(self, item: Item) -> float:
        """Upper bound ``count + Δ`` on the item's true frequency."""
        entry = self._entries.get(item)
        return 0.0 if entry is None else float(entry[0] + entry[1])

    def estimates(self) -> Dict[Item, float]:
        return {item: float(count) for item, (count, _) in self._entries.items()}

    def error_bound(self) -> float:
        """Maximum undercount of any estimate: ``ε · N``."""
        return self._epsilon * self._rows_processed

    def frequent_items(self, support: float) -> Dict[Item, float]:
        """Items whose true frequency may exceed ``support · N``.

        Returns every retained item with observed count at least
        ``(support − ε) · N`` — the standard Lossy Counting output rule,
        which has no false negatives.
        """
        if not 0 < support <= 1:
            raise InvalidParameterError("support must lie in (0, 1]")
        threshold = (support - self._epsilon) * self._rows_processed
        return {
            item: float(count)
            for item, (count, _) in self._entries.items()
            if count >= threshold
        }

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        labels = []
        counts = []
        deltas = []
        for item, (count, delta) in self._entries.items():
            labels.append(encode_item(item))
            counts.append(count)
            deltas.append(delta)
        meta = {
            "epsilon": self._epsilon,
            "capacity": self._capacity,
            "current_bucket": self._current_bucket,
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
            "labels": labels,
        }
        arrays = {
            "counts": np.asarray(counts, dtype=np.int64),
            "deltas": np.asarray(deltas, dtype=np.int64),
        }
        return meta, arrays

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        sketch = cls(float(meta["epsilon"]), capacity=int(meta["capacity"]))
        sketch._entries = {
            decode_item(label): (int(count), int(delta))
            for label, count, delta in zip(meta["labels"], arrays["counts"], arrays["deltas"])
        }
        sketch._current_bucket = int(meta["current_bucket"])
        sketch._rows_processed = int(meta["rows_processed"])
        sketch._total_weight = float(meta["total_weight"])
        return sketch
