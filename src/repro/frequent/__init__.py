"""Frequent-item baselines: Misra-Gries, Lossy Counting, Sticky Sampling,
CountMin, Count Sketch and hierarchical heavy hitters.

These are the deterministic and hashing-based sketches the paper relates
Unbiased Space Saving to (§3.2, §5.2-5.3): excellent at identifying frequent
items, but biased (or unable to enumerate items), which is what prevents
them from answering disaggregated subset sum queries.
"""

from repro.frequent.count_sketch import CountSketch
from repro.frequent.countmin import CountMinSketch
from repro.frequent.hierarchical import HierarchicalHeavyHitters
from repro.frequent.lossy_counting import LossyCountingSketch
from repro.frequent.misra_gries import MisraGriesSketch
from repro.frequent.sticky_sampling import StickySamplingSketch

__all__ = [
    "CountSketch",
    "CountMinSketch",
    "HierarchicalHeavyHitters",
    "LossyCountingSketch",
    "MisraGriesSketch",
    "StickySamplingSketch",
]
