"""Hierarchical heavy hitters over a label hierarchy.

Section 3.1 of the paper motivates the disaggregated subset sum problem with
hierarchical aggregation: IP addresses roll up into subnets, ad ids roll up
into advertisers and product categories, and an analyst wants heavy hitters
at *every* level.  A disaggregated subset sum sketch can compute any level of
the hierarchy because a level is just a group-by; this module provides the
dedicated multi-level structure (in the spirit of Zhang et al. 2004 and
Mitzenmacher et al. 2012) that keeps one sketch per hierarchy level so the
per-level heavy hitters and their conditioned counts are available directly.

Items are hierarchical paths represented as tuples, e.g. an IPv4 address
``("10", "1", "2", "3")`` whose prefixes name subnets.  The sketch at level
``d`` aggregates the first ``d`` components of each row's path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro._typing import Item
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.errors import InvalidParameterError

__all__ = ["HierarchicalHeavyHitters"]

Path = Tuple[Item, ...]


class HierarchicalHeavyHitters:
    """Per-level Unbiased Space Saving sketches over a fixed-depth hierarchy.

    Parameters
    ----------
    depth:
        Number of levels, i.e. the length of every row's path.
    capacity:
        Bin budget of each per-level sketch (a single int) or one budget per
        level (a sequence of ``depth`` ints) when coarser levels need fewer
        bins.
    seed:
        Base seed; level ``d`` uses ``seed + d`` so the per-level randomness
        is independent but reproducible.

    Example
    -------
    >>> hhh = HierarchicalHeavyHitters(depth=2, capacity=8, seed=0)
    >>> hhh.update(("10", "1"))
    >>> hhh.update(("10", "2"))
    >>> hhh.estimate(("10",)) >= 2.0
    True
    """

    def __init__(
        self,
        depth: int,
        capacity,
        *,
        seed: Optional[int] = None,
    ) -> None:
        if depth < 1:
            raise InvalidParameterError("depth must be a positive integer")
        if isinstance(capacity, int):
            capacities = [capacity] * depth
        else:
            capacities = list(capacity)
            if len(capacities) != depth:
                raise InvalidParameterError(
                    f"expected {depth} capacities, got {len(capacities)}"
                )
        base_seed = seed if seed is not None else 0
        self._depth = depth
        self._sketches: List[UnbiasedSpaceSaving] = [
            UnbiasedSpaceSaving(capacities[level], seed=base_seed + level)
            for level in range(depth)
        ]
        self._rows_processed = 0

    @property
    def depth(self) -> int:
        """Number of hierarchy levels."""
        return self._depth

    @property
    def rows_processed(self) -> int:
        """Number of rows ingested."""
        return self._rows_processed

    def level_sketch(self, level: int) -> UnbiasedSpaceSaving:
        """The sketch aggregating prefixes of length ``level + 1``."""
        return self._sketches[level]

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, path: Sequence[Item], weight: float = 1.0) -> None:
        """Ingest one row whose full path has exactly ``depth`` components."""
        path = tuple(path)
        if len(path) != self._depth:
            raise InvalidParameterError(
                f"expected a path of length {self._depth}, got {len(path)}"
            )
        self._rows_processed += 1
        for level, sketch in enumerate(self._sketches):
            sketch.update(path[: level + 1], weight)

    def extend(self, rows) -> "HierarchicalHeavyHitters":
        """Consume an iterable of paths (or ``(path, weight)`` pairs)."""
        for row in rows:
            if (
                isinstance(row, tuple)
                and len(row) == 2
                and isinstance(row[1], (int, float))
                and isinstance(row[0], (tuple, list))
            ):
                self.update(row[0], float(row[1]))
            else:
                self.update(row)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, prefix: Sequence[Item]) -> float:
        """Unbiased estimate of the total weight under a prefix of any length."""
        prefix = tuple(prefix)
        if not 1 <= len(prefix) <= self._depth:
            raise InvalidParameterError("prefix length must be between 1 and depth")
        return self._sketches[len(prefix) - 1].estimate(prefix)

    def heavy_prefixes(self, level: int, phi: float) -> Dict[Path, float]:
        """Heavy hitters among prefixes of length ``level + 1``."""
        return self._sketches[level].heavy_hitters(phi)

    def hierarchical_heavy_hitters(self, phi: float) -> Dict[Path, float]:
        """Prefixes heavy after discounting their heavy descendants.

        A prefix is reported when its estimated count, minus the counts of
        its already-reported descendants, still exceeds ``phi`` times the
        total — the standard discounted definition of hierarchical heavy
        hitters, evaluated bottom-up.
        """
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        threshold = phi * max(1.0, float(self._rows_processed))
        reported: Dict[Path, float] = {}
        # Evaluate from the deepest level upward so descendants are known.
        for level in reversed(range(self._depth)):
            for prefix, count in self._sketches[level].estimates().items():
                discounted = count - sum(
                    reported_count
                    for reported_prefix, reported_count in reported.items()
                    if len(reported_prefix) > len(prefix)
                    and reported_prefix[: len(prefix)] == prefix
                )
                if discounted >= threshold:
                    reported[prefix] = discounted
        return reported

    def rollup(
        self, level: int, key: Optional[Callable[[Path], Item]] = None
    ) -> Dict[Item, float]:
        """Aggregate level-``level`` estimates by an arbitrary rollup key.

        This is the "next level in a hierarchy" computation of §3.1: because
        the per-level estimates are unbiased, any further group-by over them
        remains unbiased.
        """
        sketch = self._sketches[level]
        grouped: Dict[Item, float] = {}
        for prefix, count in sketch.estimates().items():
            group = key(prefix) if key is not None else prefix[:-1]
            grouped[group] = grouped.get(group, 0.0) + count
        return grouped
