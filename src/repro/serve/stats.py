"""Cheap serving-side observability: latency histograms and rate tracking.

Everything here is built to sit on hot paths: one histogram observation
is a ``bisect`` into a fixed bucket table plus three counter increments,
and a rate sample is two subtractions.  Nothing allocates per call, and
every snapshot (:meth:`LatencyHistogram.as_dict`,
:meth:`ServeMetrics.as_dict`) is plain JSON-safe data, so the server's
``metrics`` wire op can ship it without translation.

The histogram buckets are *fixed* log-spaced millisecond boundaries
(10 µs … 5 s) rather than adaptive: fixed buckets make snapshots from
different sessions, servers and points in time directly addable and
comparable, which is what operational dashboards need.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Any, Dict, List, Optional

__all__ = ["LatencyHistogram", "RateTracker", "ServeMetrics", "BUCKET_BOUNDS_MS"]

#: Upper bucket bounds in milliseconds, log-spaced 10 µs – 5 s.  The last
#: implicit bucket is the overflow (``> 5000 ms``), reported with a
#: ``None`` bound in snapshots.
BUCKET_BOUNDS_MS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with JSON-safe snapshots.

    Quantiles are estimated from the bucket a quantile's rank lands in
    (reported as that bucket's upper bound), so they are conservative to
    within one bucket width — plenty for operational percentiles, and
    O(#buckets) to compute with no sample retention.
    """

    __slots__ = ("_counts", "count", "total_seconds", "max_seconds")

    def __init__(self) -> None:
        self._counts = [0] * (len(BUCKET_BOUNDS_MS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample (negative clock skews clamp to zero)."""
        if seconds < 0.0:
            seconds = 0.0
        self._counts[bisect_left(BUCKET_BOUNDS_MS, seconds * 1000.0)] += 1
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Add another histogram's samples into this one (same fixed buckets)."""
        for index, value in enumerate(other._counts):
            self._counts[index] += value
        self.count += other.count
        self.total_seconds += other.total_seconds
        if other.max_seconds > self.max_seconds:
            self.max_seconds = other.max_seconds

    def quantile_ms(self, q: float) -> Optional[float]:
        """Upper bucket bound (ms) covering quantile ``q``; ``None`` if empty.

        Overflow-bucket hits report the observed maximum instead of an
        unbounded edge.
        """
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for index, value in enumerate(self._counts):
            seen += value
            if seen >= rank and value:
                if index < len(BUCKET_BOUNDS_MS):
                    return BUCKET_BOUNDS_MS[index]
                return self.max_seconds * 1000.0
        return self.max_seconds * 1000.0

    def buckets(self) -> List[List[Any]]:
        """``[upper_bound_ms | None, count]`` rows for the non-empty buckets."""
        bounds = list(BUCKET_BOUNDS_MS) + [None]
        return [
            [bounds[index], value]
            for index, value in enumerate(self._counts)
            if value
        ]

    def as_dict(self) -> Dict[str, Any]:
        mean_ms = (
            self.total_seconds / self.count * 1000.0 if self.count else None
        )
        return {
            "count": self.count,
            "mean_ms": mean_ms,
            "max_ms": self.max_seconds * 1000.0 if self.count else None,
            "p50_ms": self.quantile_ms(0.50),
            "p95_ms": self.quantile_ms(0.95),
            "p99_ms": self.quantile_ms(0.99),
            "buckets": self.buckets(),
        }


class RateTracker:
    """Snapshot-to-snapshot rate of a monotonically growing counter.

    The first sample anchors the window and reports ``None``; every later
    sample reports ``(counter - last_counter) / elapsed`` and re-anchors,
    so two consecutive ``metrics`` calls measure exactly the traffic
    between them.
    """

    __slots__ = ("_timer", "_last_value", "_last_time")

    def __init__(self, *, timer=time.perf_counter) -> None:
        self._timer = timer
        self._last_value: Optional[float] = None
        self._last_time = 0.0

    def sample(self, counter_value: float) -> Optional[float]:
        now = self._timer()
        previous_value, previous_time = self._last_value, self._last_time
        self._last_value, self._last_time = float(counter_value), now
        if previous_value is None:
            return None
        elapsed = now - previous_time
        if elapsed <= 0.0:
            return None
        return (counter_value - previous_value) / elapsed


class ServeMetrics:
    """Per-registry metrics recorder: query latency histograms by op.

    One instance is shared by every session a registry serves; sessions
    call :meth:`start` / :meth:`observe_since` around each read.  The
    timer is injectable for deterministic tests (and defaults to
    ``perf_counter`` rather than the registry's TTL clock, which tests
    freeze).
    """

    def __init__(self, *, timer=time.perf_counter) -> None:
        self._timer = timer
        self._queries: Dict[str, LatencyHistogram] = {}

    @property
    def timer(self):
        return self._timer

    def start(self) -> float:
        """A timestamp to pass back to :meth:`observe_since`."""
        return self._timer()

    def observe_since(self, op: str, started: float) -> None:
        """Record the latency of one ``op`` query begun at ``started``."""
        self.observe(op, self._timer() - started)

    def observe(self, op: str, seconds: float) -> None:
        histogram = self._queries.get(op)
        if histogram is None:
            histogram = self._queries[op] = LatencyHistogram()
        histogram.observe(seconds)

    def query_count(self, op: Optional[str] = None) -> int:
        """Samples recorded, for one op or in total."""
        if op is not None:
            histogram = self._queries.get(op)
            return histogram.count if histogram else 0
        return sum(histogram.count for histogram in self._queries.values())

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe ``{op: histogram}`` snapshot, ops sorted for stability."""
        return {
            op: self._queries[op].as_dict() for op in sorted(self._queries)
        }
