"""Adaptive accuracy tiering: eviction as demotion, not loss.

The paper's §5.5 capacity reduction makes a sketch *shrinkable without
discarding its stream*: ``reduce_bins_unbiased`` resamples a bin map
down to ``m`` entries while preserving every expected count, so a
smaller sketch built from the reduced bins keeps answering subset sums
unbiasedly — just with more variance.  This module turns the registry's
LRU/TTL eviction into a tier transition built on that theorem:

    hot (full capacity, in memory)
      │ evicted idle
      ▼
    demoted (capacity chosen from the tenant's error budget)
      │ spilled as a repro.io frame
      ▼
    spilled (zero resident counters; only a tiering-index entry)
      │ next access (get / ingest / query on the old key)
      ▼
    rehydrated (live again at demoted capacity, stats restored)

The demoted capacity comes from an :class:`ErrorBudget`: by Eq. 5 the
subset-sum error satisfies ``Var̂(N̂_S) = N̂_min² · C_S`` and Unbiased
Space Saving keeps ``N̂_min ≤ N/m``, so a ``C_S``-item subset's RRMSE
relative to the stream total ``N`` is at most ``√C_S / m``.  Inverting
that bound, :func:`capacity_for_rrmse` returns the smallest ``m``
meeting a target RRMSE — a 1 % single-item budget needs only 100
counters, regardless of how large the hot sketch was.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from math import ceil, sqrt
from pathlib import Path
from random import Random
from typing import Any, Dict, Optional, Tuple

from repro.api.session import StreamSession
from repro.core.merge import reduce_bins_unbiased
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.errors import InvalidParameterError
from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.serve.checkpoint import session_filename

__all__ = [
    "AccuracyTiering",
    "ErrorBudget",
    "capacity_for_rrmse",
    "demote_session",
]

SessionKey = Tuple[str, str]

#: Spilled tier frames use their own suffix so a tiering directory can
#: safely share a filesystem tree with the checkpoint scheduler's files.
SPILL_SUFFIX = ".tier"


def capacity_for_rrmse(target_rrmse: float, *, subset_items: int = 1) -> int:
    """Smallest capacity ``m`` whose worst-case RRMSE meets the target.

    Inverts the §6 bound ``RRMSE(N̂_S)/N ≤ √C_S / m`` (from
    ``Var̂(N̂_S) = N̂_min² · C_S`` with ``N̂_min ≤ N/m``), where
    ``subset_items`` is ``C_S``, the number of retained items the queried
    subset may intersect.  The bound is conservative: realized error on
    skewed streams is far below it, because frequent items are kept
    deterministically and contribute zero variance.

    >>> capacity_for_rrmse(0.01)
    100
    >>> capacity_for_rrmse(0.02, subset_items=4)
    100
    """
    if target_rrmse <= 0:
        raise InvalidParameterError(
            f"target_rrmse must be positive, got {target_rrmse}"
        )
    if subset_items < 1:
        raise InvalidParameterError(
            f"subset_items must be >= 1, got {subset_items}"
        )
    return max(1, ceil(sqrt(subset_items) / target_rrmse))


@dataclass(frozen=True)
class ErrorBudget:
    """How much accuracy a tenant's demoted sessions may give up.

    Attributes
    ----------
    target_rrmse:
        Worst-case subset-sum RRMSE (relative to the stream total) a
        demoted session must still meet.
    subset_items:
        ``C_S`` the budget is sized for — how many retained items the
        tenant's typical subset query intersects (1 = point queries).
    min_capacity:
        Floor on the demoted capacity regardless of how loose the budget
        is.
    """

    target_rrmse: float = 0.01
    subset_items: int = 1
    min_capacity: int = 8

    def __post_init__(self) -> None:
        if self.target_rrmse <= 0:
            raise InvalidParameterError(
                f"target_rrmse must be positive, got {self.target_rrmse}"
            )
        if self.subset_items < 1:
            raise InvalidParameterError(
                f"subset_items must be >= 1, got {self.subset_items}"
            )
        if self.min_capacity < 1:
            raise InvalidParameterError(
                f"min_capacity must be >= 1, got {self.min_capacity}"
            )

    def demoted_capacity(self) -> int:
        """The capacity a session demoted under this budget keeps."""
        return max(
            self.min_capacity,
            capacity_for_rrmse(self.target_rrmse, subset_items=self.subset_items),
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "target_rrmse": self.target_rrmse,
            "subset_items": self.subset_items,
            "min_capacity": self.min_capacity,
            "demoted_capacity": self.demoted_capacity(),
        }


def demote_session(
    session: StreamSession, capacity: int, *, seed: Optional[int] = None
) -> Tuple[StreamSession, Optional[int]]:
    """Reduce ``session`` to ``capacity`` counters if that shrinks it.

    Returns ``(session_to_spill, demoted_capacity)``; the capacity is
    ``None`` when no demotion applied — the session was already small
    enough, is windowed (collapsing panes would destroy the window
    semantics the key was created with), or has no §5.5 reduction.
    Sharded and parallel ensembles demote through their ``merged()``
    reduction; inline Unbiased Space Saving goes through
    :func:`~repro.core.merge.reduce_bins_unbiased` +
    :meth:`~repro.core.unbiased_space_saving.UnbiasedSpaceSaving.from_bins`
    directly.  Either way the demoted sketch's expected estimates equal
    the original's (Theorem 2), so spilling is lossless in expectation.
    """
    if capacity < 1:
        raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
    if session.window is not None:
        return session, None
    estimator = session.estimator
    per_shard = getattr(estimator, "capacity", None)
    if per_shard is None:
        return session, None
    resident = int(per_shard) * int(getattr(estimator, "num_shards", 1) or 1)
    if resident <= capacity:
        return session, None
    merged = getattr(estimator, "merged", None)
    if callable(merged):
        reduced = merged(capacity, seed=seed)
    elif isinstance(estimator, UnbiasedSpaceSaving):
        bins = reduce_bins_unbiased(
            estimator.estimates(), capacity, rng=Random(seed)
        )
        reduced = UnbiasedSpaceSaving.from_bins(
            capacity,
            bins,
            rows_processed=estimator.rows_processed,
            total_weight=estimator.total_weight,
            seed=seed,
        )
    else:
        return session, None
    demoted = StreamSession(
        reduced, spec_name=session.spec_name, backend="inline"
    )
    return demoted, capacity


class AccuracyTiering:
    """The spill index and tier store behind a registry's eviction path.

    Holds, per spilled ``(tenant, name)`` key, the on-disk frame plus the
    metadata needed to rebuild the served session exactly as the
    checkpoint layer would — the registry consults :meth:`holds` on every
    miss, so a spilled session is indistinguishable from a live one to
    clients (beyond its demoted accuracy and a rehydration's latency).

    Parameters
    ----------
    directory:
        Where spilled frames live (created on first use; may be the
        checkpoint directory — spill files carry their own suffix).
    default_budget:
        :class:`ErrorBudget` for tenants without an override.
    per_tenant:
        ``{tenant: ErrorBudget}`` overrides.
    seed:
        Base seed for the demotion reductions; each key derives its own
        stable stream from it, so spills are reproducible.
    """

    def __init__(
        self,
        directory,
        *,
        default_budget: Optional[ErrorBudget] = None,
        per_tenant: Optional[Dict[str, ErrorBudget]] = None,
        seed: int = 0,
    ) -> None:
        self._directory = Path(directory)
        self._default_budget = default_budget or ErrorBudget()
        self._per_tenant = dict(per_tenant or {})
        self._seed = int(seed)
        self._spilled: Dict[SessionKey, Dict[str, Any]] = {}
        self._spills = 0
        self._demotions = 0
        self._rehydrations = 0
        #: Message of the most recent failed spill (``None`` when the last
        #: spill succeeded); a failing tier disk degrades evictions to
        #: plain discards instead of blocking the registry.
        self.last_error: Optional[str] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        return self._directory

    def __len__(self) -> int:
        return len(self._spilled)

    def holds(self, key: SessionKey) -> bool:
        """Whether ``key`` is currently spilled to this tier."""
        return tuple(key) in self._spilled

    def budget_for(self, tenant: str) -> ErrorBudget:
        return self._per_tenant.get(tenant, self._default_budget)

    def entry(self, key: SessionKey) -> Dict[str, Any]:
        """The spill-index entry for ``key`` (a copy)."""
        return dict(self._spilled[tuple(key)])

    def stats(self) -> Dict[str, Any]:
        return {
            "spilled_sessions": len(self._spilled),
            "spills": self._spills,
            "demotions": self._demotions,
            "rehydrations": self._rehydrations,
            "last_error": self.last_error,
        }

    def _key_seed(self, key: SessionKey) -> int:
        # Salted str hashes vary per process; CRC32 keeps the demotion
        # stream stable across restarts for the same key and base seed.
        return self._seed + zlib.crc32(f"{key[0]}/{key[1]}".encode("utf-8"))

    # ------------------------------------------------------------------
    # Spill (the eviction path)
    # ------------------------------------------------------------------
    def spill(self, served) -> bool:
        """Demote and persist one served session; ``False`` = cannot spill.

        Sessions whose estimator is outside the :mod:`repro.io`
        serialization contract cannot be spilled and fall back to plain
        eviction.  Enqueued-but-unapplied rows are *not* captured — the
        eviction path only ever spills the applied state, exactly like
        the checkpoint scheduler.
        """
        key = served.key
        budget = self.budget_for(served.tenant)
        try:
            demoted, demoted_capacity = demote_session(
                served.session, budget.demoted_capacity(), seed=self._key_seed(key)
            )
            if not callable(getattr(demoted.estimator, "to_bytes", None)):
                return False
            filename = session_filename(
                served.tenant, served.name, suffix=SPILL_SUFFIX
            )
            self._directory.mkdir(parents=True, exist_ok=True)
            save_checkpoint(demoted.estimator, self._directory / filename)
        except Exception as exc:
            self.last_error = f"{type(exc).__name__}: {exc}"
            return False
        self.last_error = None
        info = demoted.describe()
        self._spilled[key] = {
            "file": filename,
            "spec": info["spec"],
            "backend": info["backend"],
            "window": info["window"],
            "ttl": served.ttl,
            "rows_applied": served.stats.rows_applied,
            "rows_enqueued": served.stats.rows_enqueued,
            "demoted_capacity": demoted_capacity,
            "target_rrmse": budget.target_rrmse,
        }
        self._spills += 1
        if demoted_capacity is not None:
            self._demotions += 1
            if demoted is not served.session:
                demoted.close()
        return True

    # ------------------------------------------------------------------
    # Rehydrate (the miss path)
    # ------------------------------------------------------------------
    def load(self, key: SessionKey) -> Tuple[StreamSession, Dict[str, Any]]:
        """Rebuild the spilled session for ``key`` without consuming it.

        The entry and frame survive until :meth:`commit` — if re-adoption
        fails (e.g. the tenant is at its session quota), the session
        stays spilled and a later access can retry.
        """
        entry = self._spilled[tuple(key)]
        estimator = load_checkpoint(self._directory / entry["file"])
        session = StreamSession(
            estimator, spec_name=entry["spec"], backend=entry["backend"]
        )
        return session, dict(entry)

    def commit(self, key: SessionKey) -> None:
        """Finish a rehydration: drop the entry and its frame."""
        entry = self._spilled.pop(tuple(key), None)
        if entry is not None:
            (self._directory / entry["file"]).unlink(missing_ok=True)
            self._rehydrations += 1

    def discard(self, key: SessionKey) -> bool:
        """Remove a spilled session outright (the drop path)."""
        entry = self._spilled.pop(tuple(key), None)
        if entry is None:
            return False
        (self._directory / entry["file"]).unlink(missing_ok=True)
        return True
