"""The shared JSON-lines TCP endpoint behind every serving front.

:class:`JsonLinesEndpoint` is the connection machinery common to the
single-process :class:`~repro.serve.server.SketchServer` and the
multi-node :class:`~repro.cluster.router.ClusterRouter`: accept a
connection, send the ``hello`` line, then loop ``readline`` →
``_op_<name>`` dispatch → response envelope until the peer hangs up.
Hosts mix it in, call :meth:`_init_endpoint` from their constructor, and
implement ``_op_*`` coroutines; everything on the wire — framing limits,
error envelopes, graceful-shutdown semantics — is identical across
fronts, which is what lets one :class:`~repro.serve.client.TCPServeClient`
speak to either without knowing which it dialed.

Graceful shutdown: :meth:`_stop_tcp` closes the listener, *cancels* every
live connection task, and only then awaits ``wait_closed()`` (newer
Pythons make ``wait_closed`` wait on handlers, so an idle client holding
its socket open would otherwise hang the shutdown forever).  A cancelled
handler answers any request caught mid-dispatch with a
:class:`~repro.errors.ServerClosedError` envelope before closing, so
clients see a typed error instead of a silently dropped connection.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any, Dict, Optional, Set, Tuple

from repro.errors import (
    InvalidParameterError,
    SerializationError,
    ServerClosedError,
)
from repro.serve import protocol

__all__ = ["JsonLinesEndpoint"]


class JsonLinesEndpoint:
    """Mixin: a JSON-lines TCP front dispatching ops to ``_op_*`` methods."""

    def _init_endpoint(self) -> None:
        """Initialize endpoint state; call from the host's ``__init__``."""
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._connections = 0
        self._conn_tasks: Set[asyncio.Task] = set()
        self._stopped = False

    # ------------------------------------------------------------------
    # Listener lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Optional[Tuple[str, int]]:
        """The bound TCP ``(host, port)``, or ``None`` when not listening."""
        if self._tcp_server is None or not self._tcp_server.sockets:
            return None
        return self._tcp_server.sockets[0].getsockname()[:2]

    @property
    def connections_served(self) -> int:
        """TCP connections accepted over the endpoint's lifetime."""
        return self._connections

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Listen for JSON-lines clients; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port (the tests do this).
        """
        await self.start()
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host, port, limit=protocol.MAX_LINE_BYTES
        )
        return self.address

    async def start(self):
        """Start background services; hosts override (default: nothing)."""
        return self

    async def _stop_tcp(self) -> None:
        """Close the listener and wind down live connections gracefully."""
        if self._tcp_server is not None:
            self._tcp_server.close()
            # Cancel connection handlers before wait_closed(): newer
            # Pythons make wait_closed() wait for handlers too, so one
            # idle client holding its socket open would hang the shutdown
            # forever.  Each cancelled handler answers any in-flight
            # request with a ServerClosedError envelope before closing.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            await self._tcp_server.wait_closed()
            self._tcp_server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        in_flight_id: Any = None  # id of a request currently being dispatched
        writer.write(
            protocol.encode_line(
                {"hello": "repro.serve", "wire_version": protocol.WIRE_VERSION}
            )
        )
        try:
            await writer.drain()
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Over-long line: framing is unrecoverable, but tell
                    # the client why before closing instead of vanishing.
                    writer.write(
                        protocol.encode_line(
                            protocol.error_response(
                                None,
                                SerializationError(
                                    "wire line exceeds "
                                    f"{protocol.MAX_LINE_BYTES} bytes"
                                ),
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                request = None
                try:
                    request = protocol.decode_line(line)
                    in_flight_id = request.get("id")
                    if self._stopped:
                        raise ServerClosedError("server is shutting down")
                    response = await self._dispatch(request)
                except Exception as exc:  # one bad request never kills the link
                    request_id = request.get("id") if isinstance(request, dict) else None
                    response = protocol.error_response(request_id, exc)
                in_flight_id = None
                writer.write(protocol.encode_line(response))
                await writer.drain()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # _stop_tcp cancelled this handler.  A request caught
            # mid-dispatch gets a best-effort error envelope so its client
            # sees a typed ServerClosedError rather than a silently
            # dropped connection.
            if in_flight_id is not None:
                with contextlib.suppress(Exception):
                    writer.write(
                        protocol.encode_line(
                            protocol.error_response(
                                in_flight_id,
                                ServerClosedError("server is shutting down"),
                            )
                        )
                    )
                    await writer.drain()
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            raise InvalidParameterError(
                f"unknown serve op {op!r} (known ops: "
                f"{', '.join(protocol.KNOWN_OPS)})"
            )
        result = await handler(request)
        return protocol.ok_response(request.get("id"), result)
