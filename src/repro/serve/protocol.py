"""The JSON-lines wire format shared by the TCP server and client.

One request or response per line, UTF-8 JSON, ``\\n``-terminated — the
simplest protocol that stdlib ``asyncio`` streams speak natively
(``readline`` / ``write``), trivially debuggable with ``nc``.

Requests carry ``{"id", "op", ...op fields...}``; responses echo the id
as ``{"id", "ok": true, "result": {...}}`` or
``{"id", "ok": false, "error": {"type", "message"}}``.  The error
``type`` is the exception class name, which the client maps back onto
the :mod:`repro.errors` hierarchy so remote failures raise the same
classes local calls do.

Item labels survive the trip with types intact where JSON allows:
integers, floats, strings and booleans pass through; *tuple* labels
(composite keys are tuples throughout the package) are encoded as JSON
arrays and decoded back to tuples recursively — JSON has no tuple, and
lists are unhashable, so any array arriving in an item position must
mean a tuple.  Grouped results (``estimates`` / ``heavy_hitters`` /
``top_k``) travel as ``[[item, value], ...]`` pair lists, never JSON
objects, because JSON object keys are strings and would destroy
integer and tuple labels.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import SerializationError

__all__ = [
    "WIRE_VERSION",
    "KNOWN_OPS",
    "encode_line",
    "decode_line",
    "encode_item",
    "decode_item",
    "encode_pairs",
    "decode_pairs",
    "ok_response",
    "error_response",
]

#: Protocol revision, sent in ``hello`` and checked by the client.
WIRE_VERSION = 1

#: Hard cap on one wire line (64 MiB) — a malformed or hostile peer
#: cannot make ``readline`` buffer unboundedly.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Every request ``op`` the server dispatches, in lifecycle → ingest →
#: query → admin order (documented one-per-row in ``docs/serve.md``).
#: ``adopt`` (serve a serialized estimator frame under a key — the
#: cluster tier's fail-over rehydration path) is handled by every
#: :class:`~repro.serve.server.SketchServer`; ``cluster_info`` is
#: answered by a :class:`~repro.cluster.router.ClusterRouter` front,
#: which otherwise speaks this same protocol on both of its sides.
#: A ``create`` may carry ``shards: k`` — ignored by a single server,
#: honoured by a router, which then key-shards the session across ``k``
#: members (see ``docs/cluster.md``).  ``join`` and ``decommission`` are
#: router-only elasticity ops (live membership change with streaming
#: shard rebalance); a bare server rejects them as unknown.
KNOWN_OPS = (
    "ping",
    "create",
    "drop",
    "list",
    "info",
    "update",
    "update_batch",
    "flush",
    "estimate",
    "estimates",
    "subset_sum",
    "total",
    "heavy_hitters",
    "top_k",
    "checkpoint",
    "metrics",
    "adopt",
    "cluster_info",
    "join",
    "decommission",
)


def encode_item(item: Any) -> Any:
    """Make one item label JSON-encodable (tuples become arrays)."""
    if isinstance(item, tuple):
        return [encode_item(part) for part in item]
    if isinstance(item, np.generic):
        item = item.item()
    if item is None or isinstance(item, (bool, int, float, str)):
        return item
    raise SerializationError(
        f"item label {item!r} ({type(item).__name__}) is outside the wire "
        "protocol's label domain (int, float, str, bool, None, tuples thereof)"
    )


def decode_item(payload: Any) -> Any:
    """Inverse of :func:`encode_item`: arrays in item position are tuples."""
    if isinstance(payload, list):
        return tuple(decode_item(part) for part in payload)
    return payload


def encode_pairs(groups: "Dict[Any, float] | Iterable[Tuple[Any, float]]") -> List[List[Any]]:
    """Encode a grouped result as an order-preserving pair list."""
    pairs = groups.items() if isinstance(groups, dict) else groups
    return [[encode_item(item), float(value)] for item, value in pairs]


def decode_pairs(payload: Sequence[Sequence[Any]]) -> Dict[Any, float]:
    """Decode a pair list back to an insertion-ordered dict."""
    return {decode_item(item): float(value) for item, value in payload}


def _jsonable(value: Any) -> Any:
    """``json.dumps`` default hook: numpy scalars to their Python twins."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"{type(value).__name__} is not JSON serializable")


def encode_line(payload: Dict[str, Any]) -> bytes:
    """One protocol message as a compact, newline-terminated JSON line."""
    return (
        json.dumps(payload, separators=(",", ":"), default=_jsonable) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line; malformed input raises :class:`SerializationError`."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"malformed wire line: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError(
            f"wire messages are JSON objects, got {type(payload).__name__}"
        )
    return payload


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    """A success envelope echoing the request id."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    """A failure envelope carrying the exception class name and message."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
