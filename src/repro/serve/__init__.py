"""Concurrent multi-tenant sketch serving (:mod:`repro.serve`).

The serving layer turns the single-caller :func:`repro.build` session
into a shared service: one asyncio process hosts many named sessions —
any spec × backend × window the facade can build — each fed through a
bounded queue by a lock-free single-writer ingest loop, queried without
blocking ingest, evicted by TTL/LRU policy, and checkpointed in the
background through :mod:`repro.io` so a restarted server resumes every
session exactly.

Pieces (importable individually):

* :class:`SketchServer` — the process-level host: registry + background
  checkpointing + optional JSON-lines TCP endpoint.
* :class:`SketchRegistry` — per-tenant named sessions with TTL and
  LRU-capacity eviction.
* :class:`ServedSession` — one session behind its bounded ingest queue
  and writer task.
* :class:`ServeClient` / :class:`TCPServeClient` — in-process and
  network clients with one method surface and the package's normalized
  result types.
* :class:`CheckpointScheduler`, :func:`restore_registry` — periodic
  persistence and exact restart.
* :class:`QuotaManager` / :class:`TenantQuota` — per-tenant session,
  rate and memory limits enforced through the backpressure path.
* :class:`AccuracyTiering` / :class:`ErrorBudget` — eviction as §5.5
  demotion: idle sessions shrink to an error-budgeted capacity, spill
  to disk and rehydrate transparently on next access.
* :class:`ServeMetrics` / :class:`LatencyHistogram` — the observability
  layer behind ``SketchServer.metrics()`` and the ``metrics`` wire op.
* :mod:`repro.serve.load` — multi-producer load generators used by the
  ``serve`` benchmark mode.

Quickstart (in-process)::

    import asyncio, repro

    async def main():
        async with repro.SketchServer() as server:
            client = server.client
            await client.create("clicks", "unbiased_space_saving",
                                size=256, seed=42)
            await client.update_batch("clicks", ["ad1", "ad2", "ad1"])
            await client.flush("clicks")
            print((await client.total("clicks")).estimate)  # 3.0

    asyncio.run(main())
"""

from repro.serve.checkpoint import (
    CheckpointScheduler,
    checkpoint_registry,
    restore_registry,
)
from repro.serve.client import RemoteServeError, ServeClient, TCPServeClient
from repro.serve.quota import QuotaManager, TenantQuota, TokenBucket
from repro.serve.registry import DEFAULT_TENANT, SketchRegistry
from repro.serve.server import SketchServer
from repro.serve.session import ServedSession, ServeStats
from repro.serve.stats import LatencyHistogram, ServeMetrics
from repro.serve.tiering import (
    AccuracyTiering,
    ErrorBudget,
    capacity_for_rrmse,
)

__all__ = [
    "SketchServer",
    "SketchRegistry",
    "ServedSession",
    "ServeStats",
    "ServeClient",
    "TCPServeClient",
    "RemoteServeError",
    "CheckpointScheduler",
    "checkpoint_registry",
    "restore_registry",
    "DEFAULT_TENANT",
    "QuotaManager",
    "TenantQuota",
    "TokenBucket",
    "AccuracyTiering",
    "ErrorBudget",
    "capacity_for_rrmse",
    "LatencyHistogram",
    "ServeMetrics",
]
