"""The sketch server: one process hosting many served sessions.

A :class:`SketchServer` composes the three serving pieces — a
:class:`~repro.serve.registry.SketchRegistry` of per-tenant sessions, an
optional :class:`~repro.serve.checkpoint.CheckpointScheduler`, and an
optional TCP endpoint speaking the JSON-lines protocol of
:mod:`repro.serve.protocol` over ``asyncio.start_server`` — behind one
lifecycle::

    async with SketchServer(checkpoint_dir="ckpt") as server:
        client = server.client                      # in-process async client
        await server.start_tcp("127.0.0.1", 0)      # optional network endpoint
        ...
    # __aexit__ drains every queue, then writes a final checkpoint

``SketchServer.restore(directory)`` rebuilds the registry from the last
completed checkpoint, so a restarted process resumes every session
exactly where the checkpoint left it.

The TCP dispatch table maps protocol ``op`` names onto the same registry
calls the in-process client uses; both clients therefore return the same
normalized results, and remote errors re-raise as the same
:mod:`repro.errors` classes.
"""

from __future__ import annotations

import base64
import binascii
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    BackpressureError,
    InvalidParameterError,
    SerializationError,
    ServeError,
)
from repro.api.session import StreamSession
from repro.io import load_bytes
from repro.serve import protocol
from repro.serve.checkpoint import CheckpointScheduler, restore_registry
from repro.serve.endpoint import JsonLinesEndpoint
from repro.serve.registry import DEFAULT_TENANT, SketchRegistry
from repro.serve.stats import RateTracker

__all__ = ["SketchServer"]


class SketchServer(JsonLinesEndpoint):
    """Host many named sketch sessions behind one asyncio process.

    Parameters
    ----------
    registry:
        A pre-built registry (e.g. from :meth:`restore`); by default a
        fresh one is created from the ``max_sessions`` / ``default_ttl`` /
        ``queue_maxsize`` knobs below.
    checkpoint_dir:
        Directory for periodic background checkpoints (``None`` disables
        persistence).
    checkpoint_interval:
        Seconds between background checkpoint passes.
    quota:
        Optional :class:`~repro.serve.quota.QuotaManager` with the
        per-tenant limits this server enforces.
    tiering:
        Optional :class:`~repro.serve.tiering.AccuracyTiering`; evictions
        then demote + spill instead of discarding (see
        ``docs/operations.md``).

    ``quota`` / ``tiering`` configure the registry this constructor
    builds; pass a pre-wired registry instead when supplying your own.
    """

    def __init__(
        self,
        *,
        registry: Optional[SketchRegistry] = None,
        checkpoint_dir=None,
        checkpoint_interval: float = 30.0,
        max_sessions: Optional[int] = None,
        default_ttl: Optional[float] = None,
        queue_maxsize: int = 64,
        coalesce: int = 8,
        quota=None,
        tiering=None,
    ) -> None:
        if registry is not None and (quota is not None or tiering is not None):
            raise InvalidParameterError(
                "pass quota/tiering either to the registry or to the server, "
                "not both — a pre-built registry keeps its own wiring"
            )
        self._registry = registry or SketchRegistry(
            max_sessions=max_sessions,
            default_ttl=default_ttl,
            queue_maxsize=queue_maxsize,
            coalesce=coalesce,
            quota=quota,
            tiering=tiering,
        )
        self._checkpointer = (
            CheckpointScheduler(
                self._registry, checkpoint_dir, interval=checkpoint_interval
            )
            if checkpoint_dir is not None
            else None
        )
        self._init_endpoint()
        self._started_at = time.perf_counter()
        self._ingest_rate = RateTracker()

    # ------------------------------------------------------------------
    # Construction / introspection
    # ------------------------------------------------------------------
    @classmethod
    def restore(cls, checkpoint_dir, **kwargs) -> "SketchServer":
        """Rebuild a server from ``checkpoint_dir``'s last completed checkpoint.

        Registry shape knobs (``max_sessions`` etc.) pass through to the
        restored registry; the directory keeps serving as the checkpoint
        target.
        """
        registry_kwargs = {
            key: kwargs.pop(key)
            for key in (
                "max_sessions",
                "default_ttl",
                "queue_maxsize",
                "coalesce",
                "quota",
                "tiering",
            )
            if key in kwargs
        }
        registry = restore_registry(checkpoint_dir, **registry_kwargs)
        return cls(registry=registry, checkpoint_dir=checkpoint_dir, **kwargs)

    @property
    def registry(self) -> SketchRegistry:
        return self._registry

    @property
    def checkpointer(self) -> Optional[CheckpointScheduler]:
        return self._checkpointer

    @property
    def client(self):
        """An in-process async client bound to this server's registry."""
        from repro.serve.client import ServeClient

        return ServeClient(self)

    def metrics(self, *, detail: bool = False) -> Dict[str, Any]:
        """One JSON-safe operational snapshot (the ``metrics`` op's payload).

        Aggregates the per-session :class:`~repro.serve.session.ServeStats`
        counters, the registry's eviction/tiering/quota state and the
        shared query-latency histograms.  ``ingest.rows_per_sec`` is
        measured between consecutive ``metrics()`` calls (``None`` on the
        first); every hot-path contribution to this snapshot is a plain
        counter increment, so calling it is cheap even at 100k+ sessions
        (one O(sessions) scan per call, no per-row work).

        With ``detail=True`` the queue section additionally lists the ten
        deepest per-session queues as ``[tenant, name, depth]`` rows.
        """
        registry = self._registry
        rows_applied = rows_enqueued = failed_batches = 0
        batches_enqueued = batches_applied = batches_coalesced = 0
        depth_total = depth_max = live = 0
        deepest: List[Tuple[int, str, str]] = []
        for served in registry:
            live += 1
            stats = served.stats
            rows_applied += stats.rows_applied
            rows_enqueued += stats.rows_enqueued
            failed_batches += stats.failed_batches
            batches_enqueued += stats.batches_enqueued
            batches_applied += stats.batches_applied
            batches_coalesced += stats.batches_coalesced
            depth = served.queue_depth
            depth_total += depth
            if depth > depth_max:
                depth_max = depth
            if detail and depth > 0:
                deepest.append((depth, served.tenant, served.name))
        applies = batches_applied if batches_applied else None
        snapshot: Dict[str, Any] = {
            "uptime_sec": time.perf_counter() - self._started_at,
            "connections_served": self._connections,
            "sessions": {
                "live": live,
                "max_sessions": registry.max_sessions,
                "evicted_total": registry.evicted_total,
                # NOTE: AccuracyTiering is sized (its spill index), so an
                # emptied tier is falsy — test identity, not truth.
                "spilled": (
                    len(registry.tiering) if registry.tiering is not None else 0
                ),
            },
            "ingest": {
                "rows_applied": rows_applied,
                "rows_enqueued": rows_enqueued,
                "rows_pending": rows_enqueued - rows_applied,
                "rows_per_sec": self._ingest_rate.sample(rows_applied),
                "batches_enqueued": batches_enqueued,
                "batches_applied": batches_applied,
                "batches_coalesced": batches_coalesced,
                "coalesce_ratio": (
                    None
                    if applies is None
                    else (batches_applied + batches_coalesced) / applies
                ),
                "failed_batches": failed_batches,
            },
            "queues": {
                "depth_total": depth_total,
                "depth_max": depth_max,
            },
            "queries": registry.metrics.as_dict(),
            "quota": (
                registry.quota.as_dict() if registry.quota is not None else None
            ),
            "tiering": (
                registry.tiering.stats() if registry.tiering is not None else None
            ),
            "checkpoint": (
                {
                    "written": self._checkpointer.checkpoints_written,
                    "last_error": self._checkpointer.last_error,
                }
                if self._checkpointer is not None
                else None
            ),
        }
        if detail:
            deepest.sort(reverse=True)
            snapshot["queues"]["deepest"] = [
                [tenant, name, depth] for depth, tenant, name in deepest[:10]
            ]
        return snapshot

    def __repr__(self) -> str:
        return (
            f"SketchServer(sessions={len(self._registry)}, "
            f"address={self.address}, "
            f"checkpointing={self._checkpointer is not None})"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SketchServer":
        """Start background services (the checkpoint scheduler)."""
        if self._checkpointer is not None:
            self._checkpointer.start()
        return self

    async def stop(self, *, drain: bool = True) -> None:
        """Shut down: close TCP, drain every session, final checkpoint.

        With ``drain=True`` (the default) every batch accepted before the
        stop is applied before the writers exit, and the final checkpoint
        (when checkpointing is configured) captures the fully drained
        state.  Idempotent.
        """
        if self._stopped:
            return
        self._stopped = True
        await self._stop_tcp()
        # Close sessions (draining or not) BEFORE the final checkpoint, so
        # the checkpoint captures a state no producer can still add to —
        # otherwise rows accepted during shutdown would be applied after
        # the "final" snapshot and silently lost from persistence.
        if drain:
            await self._registry.aclose_all()
        else:
            for served in self._registry:
                served.close_nowait()
        if self._checkpointer is not None:
            await self._checkpointer.stop(final=True)

    async def __aenter__(self) -> "SketchServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # TCP op dispatch (connection handling lives in JsonLinesEndpoint)
    # ------------------------------------------------------------------
    # -- op helpers ----------------------------------------------------
    @staticmethod
    def _key(request: Dict[str, Any]) -> Tuple[str, str]:
        name = request.get("session")
        if not isinstance(name, str) or not name:
            raise InvalidParameterError(
                "requests addressing a session need a non-empty 'session' field"
            )
        return str(request.get("tenant", DEFAULT_TENANT)), name

    def _served(self, request: Dict[str, Any]):
        tenant, name = self._key(request)
        return self._registry.get(name, tenant=tenant)

    @staticmethod
    def _decode_rows(request: Dict[str, Any]):
        items = request.get("items")
        if not isinstance(items, list):
            raise InvalidParameterError("'items' must be a JSON array of labels")
        decoded = [protocol.decode_item(item) for item in items]
        weights = request.get("weights")
        timestamps = request.get("timestamps")
        return decoded, weights, timestamps

    # -- ops -----------------------------------------------------------
    async def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "sessions": len(self._registry)}

    async def _op_create(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant, name = self._key(request)
        spec = request.get("spec")
        if not isinstance(spec, str):
            raise InvalidParameterError("'create' needs a spec name")
        size = request.get("size")
        if size is None:
            raise InvalidParameterError("'create' needs a size")
        build_kwargs = dict(request.get("params") or {})
        for field in ("backend", "window", "seed", "num_shards", "num_workers"):
            if request.get(field) is not None:
                build_kwargs[field] = request[field]
        served = self._registry.create(
            name,
            spec,
            tenant=tenant,
            size=int(size),
            ttl=request.get("ttl"),
            queue_maxsize=request.get("queue_maxsize"),
            **build_kwargs,
        )
        return {"created": True, "info": _jsonable_info(served.describe())}

    async def _op_drop(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant, name = self._key(request)
        self._registry.drop(name, tenant=tenant)
        return {"dropped": True}

    async def _op_list(self, request: Dict[str, Any]) -> Dict[str, Any]:
        tenant = request.get("tenant")
        return {
            "sessions": [
                _jsonable_info(info)
                for info in self._registry.list_sessions(tenant=tenant)
            ]
        }

    async def _op_info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"info": _jsonable_info(self._served(request).describe())}

    async def _op_update(self, request: Dict[str, Any]) -> Dict[str, Any]:
        served = self._served(request)
        item = protocol.decode_item(request.get("item"))
        await served.put(
            item,
            float(request.get("weight", 1.0)),
            request.get("timestamp"),
        )
        return {"enqueued": 1}

    async def _op_update_batch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        served = self._served(request)
        items, weights, timestamps = self._decode_rows(request)
        if request.get("block", True):
            rows = await served.put_batch(items, weights, timestamps)
        else:
            if not served.offer_batch(items, weights, timestamps):
                raise BackpressureError(
                    f"ingest queue full for session "
                    f"{served.tenant!r}/{served.name!r} "
                    f"({served.queue_depth}/{served.queue_maxsize} batches); "
                    "retry, or send with block=true to wait"
                )
            rows = len(items)
        return {"enqueued": rows, "queue_depth": served.queue_depth}

    async def _op_flush(self, request: Dict[str, Any]) -> Dict[str, Any]:
        served = self._served(request)
        await served.drain()
        return {"rows_applied": served.stats.rows_applied}

    async def _op_estimate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        served = self._served(request)
        result = served.estimate(protocol.decode_item(request.get("item")))
        return {"estimate": result.estimate, "variance": result.variance}

    async def _op_estimates(self, request: Dict[str, Any]) -> Dict[str, Any]:
        served = self._served(request)
        return {"pairs": protocol.encode_pairs(served.estimates())}

    async def _op_subset_sum(self, request: Dict[str, Any]) -> Dict[str, Any]:
        served = self._served(request)
        candidates = request.get("candidates")
        if not isinstance(candidates, list):
            raise InvalidParameterError(
                "the wire 'subset_sum' op takes a 'candidates' array (arbitrary "
                "predicates cannot travel over JSON; use the in-process client "
                "for callable predicates)"
            )
        member = {protocol.decode_item(candidate) for candidate in candidates}
        result = served.subset_sum(lambda item: item in member)
        return {"estimate": result.estimate, "variance": result.variance}

    async def _op_total(self, request: Dict[str, Any]) -> Dict[str, Any]:
        served = self._served(request)
        result = served.total()
        return {"estimate": result.estimate, "variance": result.variance}

    async def _op_heavy_hitters(self, request: Dict[str, Any]) -> Dict[str, Any]:
        served = self._served(request)
        phi = float(request.get("phi", 0.01))
        return {"pairs": protocol.encode_pairs(served.heavy_hitters(phi).groups)}

    async def _op_top_k(self, request: Dict[str, Any]) -> Dict[str, Any]:
        served = self._served(request)
        k = int(request.get("k", 10))
        return {"pairs": protocol.encode_pairs(served.top_k(k).groups)}

    async def _op_checkpoint(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._checkpointer is None:
            raise ServeError(
                "this server has no checkpoint directory configured"
            )
        manifest = self._checkpointer.checkpoint_now(
            force=bool(request.get("force", False))
        )
        return {"sessions": len(manifest["sessions"])}

    async def _op_adopt(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Serve a serialized estimator frame under ``(tenant, session)``.

        The wire twin of :meth:`SketchRegistry.adopt`: the request carries
        a base64 ``frame`` (a :mod:`repro.io` payload, RNG state included),
        plus the ``spec`` / ``backend`` labels and ``rows_applied`` counter
        the session should resume with.  This is the cluster fail-over
        rehydration path — a router reads a dead member's checkpoint files
        and adopts them onto survivors — but works against any server.
        """
        tenant, name = self._key(request)
        frame = request.get("frame")
        if not isinstance(frame, str):
            raise InvalidParameterError(
                "'adopt' needs a base64 'frame' holding a serialized estimator"
            )
        try:
            payload = base64.b64decode(frame.encode("ascii"), validate=True)
        except (binascii.Error, ValueError, UnicodeEncodeError) as exc:
            raise SerializationError(
                f"'adopt' frame is not valid base64: {exc}"
            ) from exc
        estimator = load_bytes(payload)
        session = StreamSession(
            estimator,
            spec_name=request.get("spec"),
            backend=request.get("backend", "inline"),
        )
        served = self._registry.adopt(
            name,
            session,
            tenant=tenant,
            ttl=request.get("ttl"),
            queue_maxsize=request.get("queue_maxsize"),
        )
        rows = int(request.get("rows_applied", 0))
        served.rows_checkpointed = rows
        served.stats.rows_applied = rows
        served.stats.rows_enqueued = rows
        return {"adopted": True, "info": _jsonable_info(served.describe())}

    async def _op_export(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """The inverse of ``adopt``: serialize a served session's estimator.

        Returns the session's complete :mod:`repro.io` frame (base64 on
        the wire, RNG state inside) plus the spec/backend labels and
        applied-row counter an ``adopt`` on another server — or a
        pipeline-driver checkpoint — needs to resume it exactly.
        """
        served = self._served(request)
        to_bytes = getattr(served.session.estimator, "to_bytes", None)
        if not callable(to_bytes):
            raise SerializationError(
                f"session {served.tenant!r}/{served.name!r} serves a "
                f"{type(served.session.estimator).__name__}, which does not "
                "implement the serialization contract (no to_bytes)"
            )
        info = served.session.describe()
        return {
            "frame": base64.b64encode(to_bytes()).decode("ascii"),
            "spec": info["spec"],
            "backend": info["backend"],
            "rows_applied": served.stats.rows_applied,
        }

    async def _op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"metrics": self.metrics(detail=bool(request.get("detail", False)))}


def _jsonable_info(info: Dict[str, Any]) -> Dict[str, Any]:
    """Session describe() dicts are JSON-safe except for nothing today —
    kept as a single funnel so future fields stay wire-safe."""
    try:
        protocol.encode_line(info)
    except (TypeError, SerializationError):
        info = {key: repr(value) for key, value in info.items()}
    return info
