"""Multi-producer load generation against a serve client.

The helpers here drive sustained ingest the way the throughput benchmark
and the serve example need it: a workload is split into batches
(:func:`repro.streams.generators.chunk_stream`), the batches are dealt
round-robin to ``num_producers`` concurrent producer tasks, and each
producer awaits the session's bounded queue — so the measured rate is
the served ingest path under real backpressure, not a free-running loop.

:func:`measure_query_latency` runs alongside the producers, timing reads
against the same session while ingest is in full flight
(query-under-load latency, recorded by the benchmark's ``serve`` mode).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "deal_round_robin",
    "run_producers",
    "measure_query_latency",
    "LoadReport",
    "LatencyReport",
]


def deal_round_robin(chunks: Sequence, num_producers: int) -> List[List]:
    """Deal batches to producers round-robin, preserving per-producer order."""
    if num_producers < 1:
        raise ValueError(f"num_producers must be >= 1, got {num_producers}")
    hands: List[List] = [[] for _ in range(num_producers)]
    for index, chunk in enumerate(chunks):
        hands[index % num_producers].append(chunk)
    return [hand for hand in hands if hand]


@dataclass
class LoadReport:
    """Outcome of one multi-producer ingest run."""

    rows: int
    batches: int
    num_producers: int
    seconds: float

    @property
    def rows_per_sec(self) -> float:
        return self.rows / self.seconds if self.seconds > 0 else float("inf")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rows": self.rows,
            "batches": self.batches,
            "num_producers": self.num_producers,
            "seconds": round(self.seconds, 4),
            "rows_per_sec": round(self.rows_per_sec, 1),
        }


@dataclass
class LatencyReport:
    """Query latencies (seconds) observed while ingest was running."""

    samples: List[float]

    @property
    def count(self) -> int:
        return len(self.samples)

    def quantile(self, q: float) -> float:
        if not self.samples:
            return 0.0
        ranked = sorted(self.samples)
        index = min(len(ranked) - 1, max(0, round(q * (len(ranked) - 1))))
        return ranked[index]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "queries": self.count,
            "p50_ms": round(self.quantile(0.5) * 1e3, 3),
            "p95_ms": round(self.quantile(0.95) * 1e3, 3),
            "max_ms": round((max(self.samples) if self.samples else 0.0) * 1e3, 3),
        }


async def _produce(client, name: str, chunks: List, *, tenant: str) -> int:
    rows = 0
    for chunk in chunks:
        if isinstance(chunk, tuple):
            items, weights, timestamps = (list(chunk) + [None, None])[:3]
            rows += await client.update_batch(
                name, items, weights, timestamps, tenant=tenant
            )
        else:
            rows += await client.update_batch(name, chunk, tenant=tenant)
    return rows


async def run_producers(
    client,
    name: str,
    chunks: Sequence,
    *,
    num_producers: int = 4,
    tenant: str = "default",
    flush: bool = True,
) -> LoadReport:
    """Feed ``chunks`` to a served session from concurrent producer tasks.

    Each chunk is either a plain item batch, or a tuple
    ``(items, weights)`` / ``(items, weights, timestamps)``.  With
    ``flush=True`` the clock stops only after the session has *applied*
    every row (queue drained), so the reported rate is end-to-end.
    """
    hands = deal_round_robin(chunks, num_producers)
    start = time.perf_counter()
    totals = await asyncio.gather(
        *(_produce(client, name, hand, tenant=tenant) for hand in hands)
    )
    if flush:
        await client.flush(name, tenant=tenant)
    elapsed = time.perf_counter() - start
    return LoadReport(
        rows=int(sum(totals)),
        batches=len(chunks),
        num_producers=len(hands),
        seconds=elapsed,
    )


async def measure_query_latency(
    client,
    name: str,
    *,
    stop: asyncio.Event,
    tenant: str = "default",
    interval: float = 0.005,
    query: Optional[str] = "total",
    top_k: int = 10,
) -> LatencyReport:
    """Time queries against a session until ``stop`` is set.

    ``query`` selects the read issued each round: ``"total"`` (default)
    or ``"top_k"``.  Runs on the same loop as the producers, so the
    samples include any wait behind in-progress batch applications —
    exactly the latency a dashboard sharing the server would see.
    """
    samples: List[float] = []
    while not stop.is_set():
        begin = time.perf_counter()
        if query == "top_k":
            await client.top_k(name, top_k, tenant=tenant)
        else:
            await client.total(name, tenant=tenant)
        samples.append(time.perf_counter() - begin)
        # A plain sleep wakes in a single loop callback, so the sampler
        # actually gets scheduled at the writer's apply boundaries (a
        # wait_for-on-event needs several iterations to unwind its
        # cancellation, which back-to-back synchronous applies starve).
        await asyncio.sleep(interval)
    return LatencyReport(samples=samples)
