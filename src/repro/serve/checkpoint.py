"""Periodic background checkpointing for a serving registry.

Every served session whose sketch implements the :mod:`repro.io`
serialization contract is persisted on a schedule: the session's
estimator goes to its own atomically-written checkpoint file (RNG state
travels in the payload, so restored sketches continue their stream
exactly), and a ``manifest.json`` — also atomically replaced — records,
per session, the key, spec, backend, window and TTL needed to rebuild
the :class:`~repro.api.session.StreamSession` wrapper around the
restored estimator.  :func:`restore_registry` reverses the process, so::

    server = SketchServer.restore("/var/lib/sketches")

brings every session back exactly as of the last completed checkpoint.

Checkpoints run between writer batches on the event loop (the sketch
state is always at a batch boundary — never half-applied), and sessions
whose applied row count has not moved since the last checkpoint are
skipped.
"""

from __future__ import annotations

import asyncio
import json
import os
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional
from urllib.parse import quote

from repro.api.session import StreamSession
from repro.errors import SerializationError
from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.serve.registry import SketchRegistry
from repro.serve.session import ServedSession

__all__ = [
    "CheckpointScheduler",
    "checkpoint_registry",
    "restore_registry",
    "session_filename",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro.serve.checkpoint"
MANIFEST_VERSION = 1


def session_filename(tenant: str, name: str, *, suffix: str = ".ckpt") -> str:
    """A filesystem-safe, collision-free file name for one session key.

    Shared with the tiering layer (:mod:`repro.serve.tiering`), which
    stores spilled frames under the same scheme with its own suffix.
    """
    return f"{quote(tenant, safe='')}__{quote(name, safe='')}{suffix}"


def _session_filename(served: ServedSession) -> str:
    return session_filename(served.tenant, served.name)


def _write_manifest(directory: Path, manifest: Dict[str, Any]) -> None:
    staging = directory / f".{MANIFEST_NAME}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
    staging.write_text(json.dumps(manifest, indent=2) + "\n")
    os.replace(staging, directory / MANIFEST_NAME)


def checkpoint_registry(
    registry: SketchRegistry, directory, *, force: bool = False
) -> Dict[str, Any]:
    """Checkpoint every (dirty) session in ``registry`` under ``directory``.

    Returns the manifest written.  With ``force=False`` sessions whose
    applied row count is unchanged since their last checkpoint keep their
    existing file (the manifest still lists them); ``force=True`` rewrites
    everything.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entries: List[Dict[str, Any]] = []
    for served in registry:
        if not callable(getattr(served.session.estimator, "to_bytes", None)):
            # Ad-hoc adopted estimators outside the serialization
            # contract are served but not persisted (as documented).
            continue
        info = served.session.describe()
        filename = _session_filename(served)
        rows_applied = served.stats.rows_applied
        if force or rows_applied != served.rows_checkpointed or not (
            directory / filename
        ).exists():
            save_checkpoint(served.session.estimator, directory / filename)
            served.rows_checkpointed = rows_applied
        entries.append(
            {
                "tenant": served.tenant,
                "name": served.name,
                "file": filename,
                "spec": info["spec"],
                "backend": info["backend"],
                "window": info["window"],
                "ttl": served.ttl,
                "rows_applied": rows_applied,
            }
        )
    manifest = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "sessions": entries,
    }
    _write_manifest(directory, manifest)
    return manifest


def restore_registry(
    directory,
    *,
    registry: Optional[SketchRegistry] = None,
    **registry_kwargs,
) -> SketchRegistry:
    """Rebuild a registry from a checkpoint directory's manifest.

    Each checkpoint file is loaded through the :mod:`repro.io` type
    registry (no class needs to be named up front), wrapped back into a
    :class:`StreamSession` with its recorded spec/backend labels (window
    policies re-derive from the restored estimator itself), and adopted
    under its original ``(tenant, name)`` key and TTL.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise SerializationError(
            f"no serve checkpoint manifest at {manifest_path}"
        )
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != MANIFEST_FORMAT:
        raise SerializationError(
            f"{manifest_path} is not a serve checkpoint manifest "
            f"(format={manifest.get('format')!r})"
        )
    if int(manifest.get("version", 0)) > MANIFEST_VERSION:
        raise SerializationError(
            f"serve checkpoint manifest version {manifest['version']} is newer "
            f"than this library understands (max {MANIFEST_VERSION})"
        )
    if registry is None:
        registry = SketchRegistry(**registry_kwargs)
    for entry in manifest["sessions"]:
        estimator = load_checkpoint(directory / entry["file"])
        session = StreamSession(
            estimator, spec_name=entry["spec"], backend=entry["backend"]
        )
        served = registry.adopt(
            entry["name"],
            session,
            tenant=entry["tenant"],
            ttl=entry["ttl"],
        )
        served.rows_checkpointed = int(entry["rows_applied"])
        served.stats.rows_applied = int(entry["rows_applied"])
        served.stats.rows_enqueued = int(entry["rows_applied"])
    return registry


class CheckpointScheduler:
    """Background task checkpointing a registry every ``interval`` seconds."""

    def __init__(
        self, registry: SketchRegistry, directory, *, interval: float = 30.0
    ) -> None:
        self._registry = registry
        self._directory = Path(directory)
        self._interval = float(interval)
        self._task: Optional[asyncio.Task] = None
        self._checkpoints_written = 0
        #: Message of the most recent failed background pass (``None``
        #: when the last pass succeeded).  A failing pass never kills the
        #: periodic task — the next interval retries.
        self.last_error: Optional[str] = None

    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def checkpoints_written(self) -> int:
        """Completed checkpoint passes since the scheduler was created."""
        return self._checkpoints_written

    def checkpoint_now(self, *, force: bool = False) -> Dict[str, Any]:
        """Run one synchronous checkpoint pass immediately."""
        manifest = checkpoint_registry(self._registry, self._directory, force=force)
        self._checkpoints_written += 1
        self.last_error = None
        return manifest

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self._interval)
            try:
                self.checkpoint_now()
            except Exception as exc:
                # A transient failure (disk full, permission blip) must
                # not silently end persistence for the server's lifetime.
                self.last_error = f"{type(exc).__name__}: {exc}"

    def start(self) -> None:
        """Start the periodic task on the running loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"serve-checkpointer:{self._directory}"
            )

    async def stop(self, *, final: bool = True) -> None:
        """Cancel the periodic task, optionally writing one last checkpoint."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if final:
            self.checkpoint_now()
