"""Async clients for the sketch server: in-process and TCP.

Both clients expose the same method surface and return the same
normalized result types the local :class:`~repro.api.session.StreamSession`
does — :class:`~repro.core.variance.EstimateWithError` for scalar reads,
:class:`~repro.query.engine.QueryResult` for grouped reads — so query
code is identical whether the sketch lives in this process, or across a
socket:

* :class:`ServeClient` binds directly to a server's registry.  Zero
  copies, callable predicates allowed, and backpressure is the real
  ``await`` on the session's bounded queue — this is the client the
  benchmark's multi-producer load generators drive.
* :class:`TCPServeClient` speaks the JSON-lines protocol of
  :mod:`repro.serve.protocol`.  Predicates must be candidate lists
  (callables cannot travel over JSON); remote errors re-raise as their
  original :mod:`repro.errors` classes.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, Iterable, List, Optional

from repro._typing import Item, ItemPredicate
from repro.core.variance import EstimateWithError
from repro.errors import (
    BackpressureError,
    CapabilityError,
    ClusterError,
    InvalidParameterError,
    MemberDownError,
    QuotaExceededError,
    RouteMovedError,
    SerializationError,
    ServeError,
    ServerClosedError,
    SessionNotFoundError,
)
from repro.query.engine import QueryResult
from repro.serve import protocol
from repro.serve.registry import DEFAULT_TENANT

__all__ = ["ServeClient", "TCPServeClient", "RemoteServeError"]


class RemoteServeError(ServeError):
    """A server-side failure with no local exception class to map onto."""


#: Remote error type name -> local exception class (anything else raises
#: :class:`RemoteServeError`).
_ERROR_TYPES = {
    "SessionNotFoundError": SessionNotFoundError,
    "BackpressureError": BackpressureError,
    "QuotaExceededError": QuotaExceededError,
    "ServerClosedError": ServerClosedError,
    "CapabilityError": CapabilityError,
    "InvalidParameterError": InvalidParameterError,
    "SerializationError": SerializationError,
    "ClusterError": ClusterError,
    "MemberDownError": MemberDownError,
    "RouteMovedError": RouteMovedError,
    "ServeError": ServeError,
}


class ServeClient:
    """In-process async client over a :class:`~repro.serve.server.SketchServer`.

    All methods take ``tenant=`` (defaulting to the shared ``"default"``
    namespace) and a session ``name``; reads return normalized estimate
    objects exactly as the underlying session would.
    """

    def __init__(self, server) -> None:
        self._server = server

    @property
    def server(self):
        return self._server

    def _served(self, name: str, tenant: str):
        return self._server.registry.get(name, tenant=tenant)

    # -- lifecycle -----------------------------------------------------
    async def create(
        self,
        name: str,
        spec: str,
        *,
        size: int,
        tenant: str = DEFAULT_TENANT,
        ttl: Optional[float] = None,
        queue_maxsize: Optional[int] = None,
        **build_kwargs,
    ) -> Dict[str, Any]:
        """Create a served session; returns its ``info`` description."""
        served = self._server.registry.create(
            name,
            spec,
            tenant=tenant,
            size=size,
            ttl=ttl,
            queue_maxsize=queue_maxsize,
            **build_kwargs,
        )
        return served.describe()

    async def drop(self, name: str, *, tenant: str = DEFAULT_TENANT) -> None:
        self._server.registry.drop(name, tenant=tenant)

    async def list_sessions(
        self, *, tenant: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        return self._server.registry.list_sessions(tenant=tenant)

    async def info(self, name: str, *, tenant: str = DEFAULT_TENANT) -> Dict[str, Any]:
        return self._served(name, tenant).describe()

    # -- ingest --------------------------------------------------------
    async def update(
        self,
        name: str,
        item: Item,
        weight: float = 1.0,
        timestamp: Optional[float] = None,
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        await self._served(name, tenant).put(item, weight, timestamp)

    async def update_batch(
        self,
        name: str,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
        timestamps: Optional[Iterable[float]] = None,
        *,
        tenant: str = DEFAULT_TENANT,
        block: bool = True,
    ) -> int:
        """Enqueue a batch; returns rows enqueued (full queue raises when
        ``block=False``)."""
        served = self._served(name, tenant)
        if block:
            return await served.put_batch(items, weights, timestamps)
        if not hasattr(items, "__len__"):
            items = list(items)  # count once; the session reuses the snapshot
        if not served.offer_batch(items, weights, timestamps):
            raise BackpressureError(
                f"ingest queue full for session {tenant!r}/{name!r}; "
                "retry, or call with block=True to wait"
            )
        return len(items)

    async def flush(self, name: str, *, tenant: str = DEFAULT_TENANT) -> int:
        """Wait until every enqueued batch is applied; returns rows applied."""
        served = self._served(name, tenant)
        await served.drain()
        return served.stats.rows_applied

    # -- queries -------------------------------------------------------
    async def estimate(
        self, name: str, item: Item, *, tenant: str = DEFAULT_TENANT
    ) -> EstimateWithError:
        return self._served(name, tenant).estimate(item)

    async def estimates(
        self, name: str, *, tenant: str = DEFAULT_TENANT
    ) -> Dict[Item, float]:
        return self._served(name, tenant).estimates()

    async def subset_sum(
        self,
        name: str,
        predicate: "ItemPredicate | Iterable[Item]",
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> EstimateWithError:
        """Subset sum under a callable predicate or a candidate collection."""
        if not callable(predicate):
            members = set(predicate)
            predicate = lambda item: item in members  # noqa: E731
        return self._served(name, tenant).subset_sum(predicate)

    async def total(
        self, name: str, *, tenant: str = DEFAULT_TENANT
    ) -> EstimateWithError:
        return self._served(name, tenant).total()

    async def heavy_hitters(
        self, name: str, phi: float, *, tenant: str = DEFAULT_TENANT
    ) -> QueryResult:
        return self._served(name, tenant).heavy_hitters(phi)

    async def top_k(
        self, name: str, k: int, *, tenant: str = DEFAULT_TENANT
    ) -> QueryResult:
        return self._served(name, tenant).top_k(k)

    async def checkpoint(self, *, force: bool = False) -> int:
        """Force a checkpoint pass; returns the number of sessions written."""
        if self._server.checkpointer is None:
            raise ServeError("this server has no checkpoint directory configured")
        manifest = self._server.checkpointer.checkpoint_now(force=force)
        return len(manifest["sessions"])

    async def export(
        self, name: str, *, tenant: str = DEFAULT_TENANT
    ) -> Dict[str, Any]:
        """Serialize a session's estimator: the state-capture half of adopt.

        Returns ``{"frame", "spec", "backend", "rows_applied"}`` where
        ``frame`` is the session's complete :mod:`repro.io` envelope (RNG
        state included).  The pipeline driver's checkpoints are built
        from this — frame and row counter captured at a flushed batch
        boundary describe one exact stream position.
        """
        served = self._served(name, tenant)
        to_bytes = getattr(served.session.estimator, "to_bytes", None)
        if not callable(to_bytes):
            raise SerializationError(
                f"session {tenant!r}/{name!r} serves a "
                f"{type(served.session.estimator).__name__}, which does not "
                "implement the serialization contract (no to_bytes)"
            )
        info = served.session.describe()
        return {
            "frame": to_bytes(),
            "spec": info["spec"],
            "backend": info["backend"],
            "rows_applied": served.stats.rows_applied,
        }

    async def adopt(
        self,
        name: str,
        frame: bytes,
        *,
        tenant: str = DEFAULT_TENANT,
        spec: Optional[str] = None,
        backend: Optional[str] = None,
        rows_applied: int = 0,
        ttl: Optional[float] = None,
        queue_maxsize: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Serve a serialized estimator frame under ``(tenant, name)``.

        The in-process twin of the wire ``adopt`` op (and the inverse of
        :meth:`export`): the frame is loaded through the :mod:`repro.io`
        type registry and served with its recorded ``rows_applied``
        counter, so a restored session reports the same progress the
        exporter saw.  Raises if the key is already served — drop the
        old session first.
        """
        from repro.api.session import StreamSession
        from repro.io import load_bytes

        estimator = load_bytes(bytes(frame))
        session = StreamSession(
            estimator, spec_name=spec, backend=backend or "inline"
        )
        served = self._server.registry.adopt(
            name, session, tenant=tenant, ttl=ttl, queue_maxsize=queue_maxsize
        )
        served.rows_checkpointed = int(rows_applied)
        served.stats.rows_applied = int(rows_applied)
        served.stats.rows_enqueued = int(rows_applied)
        return served.describe()

    async def metrics(self, *, detail: bool = False) -> Dict[str, Any]:
        """The server's operational snapshot (see ``SketchServer.metrics``)."""
        return self._server.metrics(detail=detail)


class TCPServeClient:
    """JSON-lines client for a remote :class:`SketchServer` TCP endpoint.

    Create with :meth:`connect`; use as an async context manager::

        async with await TCPServeClient.connect(host, port) as client:
            await client.create("clicks", spec="unbiased_space_saving", size=256)
            await client.update_batch("clicks", [1, 2, 1, 3])
            top = await client.top_k("clicks", 2)

    The client is sequential (one request in flight at a time, guarded by
    a lock); open several clients for concurrent producers — the server
    multiplexes connections freely.

    ``connect`` takes a bounded retry budget (``retries`` attempts beyond
    the first, exponential ``backoff`` between them) so a server that is
    still binding its port — or restarting after fail-over — does not
    fail the very first dial; a ``request_timeout`` bounds every
    round-trip so a hung server surfaces as :class:`ServeError` instead
    of an indefinite ``await``.  Both knobs default to the historical
    behaviour (one attempt, wait forever).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        request_timeout: Optional[float] = None,
        moved_retries: int = 2,
        moved_backoff: float = 0.05,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._lock = asyncio.Lock()
        self._request_timeout = request_timeout
        self._moved_retries = moved_retries
        self._moved_backoff = moved_backoff
        self.server_hello: Dict[str, Any] = {}

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        retries: int = 0,
        backoff: float = 0.1,
        request_timeout: Optional[float] = None,
        moved_retries: int = 2,
        moved_backoff: float = 0.05,
    ) -> "TCPServeClient":
        """Dial a server, retrying refused/timed-out attempts with backoff.

        Parameters
        ----------
        retries:
            Additional attempts after the first (0 keeps the historical
            single-attempt behaviour).  Attempt ``i`` sleeps
            ``backoff * 2**i`` before redialing; once the budget is
            exhausted :class:`~repro.errors.ServerClosedError` is raised
            with the underlying failure chained.
        backoff:
            Base delay in seconds for the exponential backoff schedule.
        request_timeout:
            Per-request round-trip bound applied to every call made on
            the returned client (and to each connection attempt).
            ``None`` waits indefinitely.
        moved_retries:
            Transparent retries when a cluster router answers
            :class:`~repro.errors.RouteMovedError` — the op had no
            effect (a shard was mid-migration), so the client waits
            ``moved_backoff * 2**attempt`` and resends; the retry lands
            on the new owner once the migration epoch closes.  0
            surfaces the error to the caller on first occurrence.
        """
        if retries < 0:
            raise InvalidParameterError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise InvalidParameterError(f"backoff must be >= 0, got {backoff}")
        if moved_retries < 0:
            raise InvalidParameterError(
                f"moved_retries must be >= 0, got {moved_retries}"
            )
        last_error: Optional[BaseException] = None
        for attempt in range(retries + 1):
            if attempt:
                await asyncio.sleep(backoff * 2 ** (attempt - 1))
            try:
                open_conn = asyncio.open_connection(
                    host, port, limit=protocol.MAX_LINE_BYTES
                )
                if request_timeout is not None:
                    reader, writer = await asyncio.wait_for(
                        open_conn, request_timeout
                    )
                else:
                    reader, writer = await open_conn
                break
            except (OSError, asyncio.TimeoutError) as exc:
                last_error = exc
        else:
            raise ServerClosedError(
                f"could not connect to {host}:{port} after {retries + 1} "
                f"attempt(s): {last_error}"
            ) from last_error
        client = cls(
            reader,
            writer,
            request_timeout=request_timeout,
            moved_retries=moved_retries,
            moved_backoff=moved_backoff,
        )
        try:
            hello_line = await client._bounded(reader.readline())
        except ServeError:
            await client.close()
            raise
        hello = protocol.decode_line(hello_line)
        client.server_hello = hello
        version = hello.get("wire_version")
        if version != protocol.WIRE_VERSION:
            await client.close()
            raise SerializationError(
                f"server speaks wire version {version!r}, "
                f"client expects {protocol.WIRE_VERSION}"
            )
        return client

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "TCPServeClient":
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()

    # -- request plumbing ----------------------------------------------
    async def _bounded(self, awaitable):
        """Await under the client's request timeout (``None`` = no bound)."""
        if self._request_timeout is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, self._request_timeout)
        except asyncio.TimeoutError as exc:
            raise ServeError(
                f"request timed out after {self._request_timeout}s (the "
                "connection is no longer usable; reconnect to retry)"
            ) from exc

    async def _call(self, op: str, **fields) -> Dict[str, Any]:
        """One op with transparent retry-on-moved (see ``moved_retries``)."""
        for attempt in range(self._moved_retries + 1):
            try:
                return await self._call_once(op, **fields)
            except RouteMovedError:
                if attempt >= self._moved_retries:
                    raise
                await asyncio.sleep(self._moved_backoff * 2**attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    async def _call_once(self, op: str, **fields) -> Dict[str, Any]:
        request = {"id": next(self._ids), "op": op}
        request.update(
            {key: value for key, value in fields.items() if value is not None}
        )

        async def round_trip() -> bytes:
            self._writer.write(protocol.encode_line(request))
            await self._writer.drain()
            return await self._reader.readline()

        async with self._lock:
            line = await self._bounded(round_trip())
        if not line:
            raise ServeError("server closed the connection")
        response = protocol.decode_line(line)
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        exc_class = _ERROR_TYPES.get(error.get("type"), RemoteServeError)
        raise exc_class(error.get("message", "remote serve error"))

    async def request(self, op: str, **fields) -> Dict[str, Any]:
        """Issue one raw protocol op, returning the result payload.

        The typed methods below cover the stable surface; this is the
        escape hatch for ops without a wrapper (and the forwarding path
        the cluster router's member connections use).  ``None``-valued
        fields are omitted from the wire request; remote errors re-raise
        as their :mod:`repro.errors` classes exactly like the wrappers.
        """
        return await self._call(op, **fields)

    @staticmethod
    def _scalar(result: Dict[str, Any]) -> EstimateWithError:
        return EstimateWithError(
            estimate=float(result["estimate"]), variance=float(result["variance"])
        )

    # -- lifecycle -----------------------------------------------------
    async def ping(self) -> Dict[str, Any]:
        return await self._call("ping")

    async def create(
        self,
        name: str,
        spec: str,
        *,
        size: int,
        tenant: str = DEFAULT_TENANT,
        ttl: Optional[float] = None,
        queue_maxsize: Optional[int] = None,
        backend: Optional[str] = None,
        window: Optional[str] = None,
        seed: Optional[int] = None,
        num_shards: Optional[int] = None,
        **params,
    ) -> Dict[str, Any]:
        result = await self._call(
            "create",
            session=name,
            tenant=tenant,
            spec=spec,
            size=size,
            ttl=ttl,
            queue_maxsize=queue_maxsize,
            backend=backend,
            window=window,
            seed=seed,
            num_shards=num_shards,
            params=params or None,
        )
        return result["info"]

    async def drop(self, name: str, *, tenant: str = DEFAULT_TENANT) -> None:
        await self._call("drop", session=name, tenant=tenant)

    async def list_sessions(
        self, *, tenant: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        return (await self._call("list", tenant=tenant))["sessions"]

    async def info(self, name: str, *, tenant: str = DEFAULT_TENANT) -> Dict[str, Any]:
        return (await self._call("info", session=name, tenant=tenant))["info"]

    # -- ingest --------------------------------------------------------
    async def update(
        self,
        name: str,
        item: Item,
        weight: float = 1.0,
        timestamp: Optional[float] = None,
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        await self._call(
            "update",
            session=name,
            tenant=tenant,
            item=protocol.encode_item(item),
            weight=weight,
            timestamp=timestamp,
        )

    async def update_batch(
        self,
        name: str,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
        timestamps: Optional[Iterable[float]] = None,
        *,
        tenant: str = DEFAULT_TENANT,
        block: bool = True,
    ) -> int:
        result = await self._call(
            "update_batch",
            session=name,
            tenant=tenant,
            items=[protocol.encode_item(item) for item in items],
            weights=None if weights is None else [float(w) for w in weights],
            timestamps=None
            if timestamps is None
            else [float(ts) for ts in timestamps],
            block=block,
        )
        return int(result["enqueued"])

    async def flush(self, name: str, *, tenant: str = DEFAULT_TENANT) -> int:
        return int(
            (await self._call("flush", session=name, tenant=tenant))["rows_applied"]
        )

    # -- queries -------------------------------------------------------
    async def estimate(
        self, name: str, item: Item, *, tenant: str = DEFAULT_TENANT
    ) -> EstimateWithError:
        return self._scalar(
            await self._call(
                "estimate",
                session=name,
                tenant=tenant,
                item=protocol.encode_item(item),
            )
        )

    async def estimates(
        self, name: str, *, tenant: str = DEFAULT_TENANT
    ) -> Dict[Item, float]:
        result = await self._call("estimates", session=name, tenant=tenant)
        return protocol.decode_pairs(result["pairs"])

    async def subset_sum(
        self,
        name: str,
        candidates: Iterable[Item],
        *,
        tenant: str = DEFAULT_TENANT,
    ) -> EstimateWithError:
        """Subset sum over an explicit candidate collection.

        The wire protocol cannot ship callables; pass the candidate items
        whose total you want (the server builds the membership predicate).
        """
        if callable(candidates):
            raise InvalidParameterError(
                "TCP subset_sum takes a candidate collection, not a callable; "
                "use the in-process ServeClient for predicate queries"
            )
        return self._scalar(
            await self._call(
                "subset_sum",
                session=name,
                tenant=tenant,
                candidates=[protocol.encode_item(item) for item in candidates],
            )
        )

    async def total(
        self, name: str, *, tenant: str = DEFAULT_TENANT
    ) -> EstimateWithError:
        return self._scalar(await self._call("total", session=name, tenant=tenant))

    async def heavy_hitters(
        self, name: str, phi: float, *, tenant: str = DEFAULT_TENANT
    ) -> QueryResult:
        result = await self._call(
            "heavy_hitters", session=name, tenant=tenant, phi=phi
        )
        return QueryResult(groups=protocol.decode_pairs(result["pairs"]))

    async def top_k(
        self, name: str, k: int, *, tenant: str = DEFAULT_TENANT
    ) -> QueryResult:
        result = await self._call("top_k", session=name, tenant=tenant, k=k)
        return QueryResult(groups=protocol.decode_pairs(result["pairs"]))

    async def checkpoint(self, *, force: bool = False) -> int:
        return int((await self._call("checkpoint", force=force or None))["sessions"])

    async def export(
        self, name: str, *, tenant: str = DEFAULT_TENANT
    ) -> Dict[str, Any]:
        """Fetch a session's serialized frame; same shape as the in-process
        :meth:`ServeClient.export` (the base64 hop is decoded here)."""
        import base64

        result = await self._call("export", session=name, tenant=tenant)
        return {
            "frame": base64.b64decode(result["frame"].encode("ascii")),
            "spec": result.get("spec"),
            "backend": result.get("backend"),
            "rows_applied": int(result.get("rows_applied", 0)),
        }

    async def adopt(
        self,
        name: str,
        frame: bytes,
        *,
        tenant: str = DEFAULT_TENANT,
        spec: Optional[str] = None,
        backend: Optional[str] = None,
        rows_applied: int = 0,
        ttl: Optional[float] = None,
        queue_maxsize: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Serve a serialized estimator frame on the remote server.

        The typed wrapper over the ``adopt`` wire op the cluster tier's
        fail-over path uses; ``frame`` is raw :mod:`repro.io` bytes (the
        base64 encoding is applied here).
        """
        import base64

        result = await self._call(
            "adopt",
            session=name,
            tenant=tenant,
            frame=base64.b64encode(bytes(frame)).decode("ascii"),
            spec=spec,
            backend=backend,
            rows_applied=int(rows_applied) or None,
            ttl=ttl,
            queue_maxsize=queue_maxsize,
        )
        return result["info"]

    async def metrics(self, *, detail: bool = False) -> Dict[str, Any]:
        """The remote server's operational snapshot, decoded as plain data."""
        return (await self._call("metrics", detail=detail or None))["metrics"]

    # -- cluster administration (router endpoints only) ----------------
    async def cluster_info(self) -> Dict[str, Any]:
        """The router's topology snapshot (``cluster_info`` wire op)."""
        return (await self._call("cluster_info"))["cluster"]

    async def join(
        self, member_id: str, host: str, port: int
    ) -> Dict[str, Any]:
        """Add a member to a running cluster router and rebalance onto it.

        Only a :class:`~repro.cluster.router.ClusterRouter` endpoint
        answers this; a bare server rejects it as an unknown op.  Returns
        the router's summary (``sessions_moved``, new ``epoch``).
        """
        return await self._call("join", member=member_id, host=host, port=port)

    async def decommission(self, member_id: str) -> Dict[str, Any]:
        """Drain a member's sessions to ring successors and remove it."""
        return await self._call("decommission", member=member_id)
