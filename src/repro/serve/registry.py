"""The multi-tenant session registry behind a sketch server.

A :class:`SketchRegistry` holds many named :class:`ServedSession`s keyed
by ``(tenant, name)``.  Tenants are hard namespaces: tenant ``"a"`` can
never read, drop or collide with tenant ``"b"``'s sessions, even under
the same session name.  Two eviction policies bound the registry:

* **TTL** — a session idle (no ingest, no query) longer than its ``ttl``
  is evicted by :meth:`sweep`, which both :meth:`get` and :meth:`create`
  run opportunistically, so expiry needs no background task.
* **Capacity** — when ``max_sessions`` is reached, creating a new session
  evicts the least-recently-accessed one (the registry keeps LRU order).

Sessions are built through the :func:`repro.build` facade, so every
spec × backend × window combination the facade accepts can be served,
or adopted pre-built (the checkpoint-restore path re-wraps restored
estimators this way).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from repro.api.build import build
from repro.api.session import StreamSession
from repro.errors import InvalidParameterError, SessionNotFoundError
from repro.serve.quota import resident_counters
from repro.serve.session import ServedSession
from repro.serve.stats import ServeMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tiering -> checkpoint -> registry)
    from repro.serve.quota import QuotaManager
    from repro.serve.tiering import AccuracyTiering

__all__ = ["SketchRegistry", "DEFAULT_TENANT"]

#: Tenant used when a caller does not namespace explicitly.
DEFAULT_TENANT = "default"

SessionKey = Tuple[str, str]


class SketchRegistry:
    """Keyed store of served sessions with TTL and LRU-capacity eviction.

    Parameters
    ----------
    max_sessions:
        Upper bound on concurrently held sessions (``None`` = unbounded);
        creation beyond the bound evicts the least-recently-used session.
    default_ttl:
        TTL applied to sessions created without an explicit ``ttl``
        (``None`` = sessions never expire by default).
    queue_maxsize, coalesce:
        Defaults forwarded to every :class:`ServedSession` this registry
        creates.
    clock:
        Monotonic time source shared with the sessions (injectable so
        tests drive expiry deterministically).
    quota:
        Optional :class:`~repro.serve.quota.QuotaManager` enforcing
        per-tenant session / rate / memory limits on every admission and
        ingest path.
    tiering:
        Optional :class:`~repro.serve.tiering.AccuracyTiering`; when set,
        eviction demotes + spills sessions instead of discarding them,
        and :meth:`get` transparently rehydrates spilled keys.
    """

    def __init__(
        self,
        *,
        max_sessions: Optional[int] = None,
        default_ttl: Optional[float] = None,
        queue_maxsize: int = 64,
        coalesce: int = 8,
        clock=time.monotonic,
        quota: "Optional[QuotaManager]" = None,
        tiering: "Optional[AccuracyTiering]" = None,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise InvalidParameterError(
                f"max_sessions must be >= 1 or None, got {max_sessions}"
            )
        self._max_sessions = max_sessions
        self._default_ttl = default_ttl
        self._queue_maxsize = int(queue_maxsize)
        self._coalesce = int(coalesce)
        self._clock = clock
        self._quota = quota
        self._tiering = tiering
        self._metrics = ServeMetrics()
        #: LRU order: oldest access first (move_to_end on every access).
        self._sessions: "OrderedDict[SessionKey, ServedSession]" = OrderedDict()
        self._evicted: int = 0
        #: Registry-wide sweeps are amortized on the hot get() path: at
        #: most one full scan per this many seconds.
        self._sweep_interval = 1.0
        self._last_sweep = clock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, key: SessionKey) -> bool:
        return tuple(key) in self._sessions

    def __iter__(self) -> Iterator[ServedSession]:
        return iter(list(self._sessions.values()))

    @property
    def evicted_total(self) -> int:
        """Sessions evicted (TTL + capacity) over the registry's lifetime."""
        return self._evicted

    @property
    def max_sessions(self) -> Optional[int]:
        return self._max_sessions

    @property
    def quota(self) -> "Optional[QuotaManager]":
        return self._quota

    @property
    def tiering(self) -> "Optional[AccuracyTiering]":
        return self._tiering

    @property
    def metrics(self) -> ServeMetrics:
        """The shared query-latency recorder every served session reports to."""
        return self._metrics

    def list_sessions(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        """Describe every live session, optionally for one tenant."""
        self.sweep()
        return [
            served.describe()
            for served in self._sessions.values()
            if tenant is None or served.tenant == tenant
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        spec: str,
        *,
        tenant: str = DEFAULT_TENANT,
        size: int,
        ttl: Optional[float] = None,
        queue_maxsize: Optional[int] = None,
        coalesce: Optional[int] = None,
        **build_kwargs,
    ) -> ServedSession:
        """Build a session through :func:`repro.build` and serve it.

        ``build_kwargs`` pass straight through to the facade (``backend=``,
        ``window=``, ``seed=``, ``num_shards=``, spec extras, ...), so a
        served session supports exactly what a local one does — including
        the sharded and multiprocess parallel backends.
        """
        session = build(spec, size=size, **build_kwargs)
        try:
            return self.adopt(
                name,
                session,
                tenant=tenant,
                ttl=ttl,
                queue_maxsize=queue_maxsize,
                coalesce=coalesce,
            )
        except BaseException:
            session.close()
            raise

    def adopt(
        self,
        name: str,
        session: StreamSession,
        *,
        tenant: str = DEFAULT_TENANT,
        ttl: Optional[float] = None,
        queue_maxsize: Optional[int] = None,
        coalesce: Optional[int] = None,
    ) -> ServedSession:
        """Serve an existing :class:`StreamSession` under ``(tenant, name)``.

        This is how restored checkpoints re-enter a server, and the escape
        hatch for estimators configured beyond what the facade exposes.

        Like :meth:`get`, the registry-wide TTL sweep here is amortized to
        once per second — a full scan per adopt would make admitting n
        sessions O(n²).  The adopted key itself is still checked exactly:
        an expired homonym is evicted (through the spill tier when one is
        wired) rather than reported as a duplicate.
        """
        key = (str(tenant), str(name))
        now = self._clock()
        if now - self._last_sweep >= self._sweep_interval:
            self.sweep(now)
        existing = self._sessions.get(key)
        if existing is not None and existing.expired(now):
            self._evict(key)
            existing = None
        if existing is not None or (
            self._tiering is not None and self._tiering.holds(key)
        ):
            raise InvalidParameterError(
                f"session {key[0]!r}/{key[1]!r} already exists; drop it first "
                "or serve under a different name"
            )
        return self._admit(
            key,
            session,
            ttl=self._default_ttl if ttl is None else ttl,
            queue_maxsize=queue_maxsize,
            coalesce=coalesce,
        )

    def _admit(
        self,
        key: SessionKey,
        session: StreamSession,
        *,
        ttl: Optional[float],
        queue_maxsize: Optional[int] = None,
        coalesce: Optional[int] = None,
    ) -> ServedSession:
        """Quota-checked insertion shared by adopt() and rehydration."""
        counters = resident_counters(session.estimator)
        if self._quota is not None:
            # Admission check first: a tenant over quota must not evict a
            # neighbour's LRU session on the way to being rejected.
            self._quota.acquire_session(key[0], counters)
        try:
            while (
                self._max_sessions is not None
                and len(self._sessions) >= self._max_sessions
            ):
                oldest_key = next(iter(self._sessions))
                self._evict(oldest_key)
            served = ServedSession(
                session,
                tenant=key[0],
                name=key[1],
                queue_maxsize=self._queue_maxsize
                if queue_maxsize is None
                else queue_maxsize,
                coalesce=self._coalesce if coalesce is None else coalesce,
                ttl=ttl,
                clock=self._clock,
                quota=self._quota,
                metrics=self._metrics,
            )
        except BaseException:
            if self._quota is not None:
                self._quota.release_session(key[0], counters)
            raise
        served.quota_counters = counters
        self._sessions[key] = served
        return served

    def get(self, name: str, tenant: str = DEFAULT_TENANT) -> ServedSession:
        """Look up a live session; unknown or evicted keys raise.

        The lookup refreshes the session's LRU position (but not its idle
        clock — only real ingest/query traffic does that).  The accessed
        key's TTL is always checked; a registry-wide sweep also runs here,
        amortized to once per second, so idle tenants cannot leak memory
        under a get/query-only workload without an O(n) scan on every op.
        """
        key = (str(tenant), str(name))
        now = self._clock()
        if now - self._last_sweep >= self._sweep_interval:
            self.sweep(now)
        served = self._sessions.get(key)
        if served is not None and served.expired(now):
            self._evict(key)
            served = None
        if served is None and self._tiering is not None and self._tiering.holds(key):
            served = self._rehydrate(key)
        if served is None:
            raise SessionNotFoundError(
                f"no session {key[0]!r}/{key[1]!r} (never created, dropped, "
                "or evicted by TTL/capacity)"
            )
        self._sessions.move_to_end(key)
        return served

    def _rehydrate(self, key: SessionKey) -> ServedSession:
        """Bring a spilled session back live, transparently to the caller.

        The spill entry survives until re-admission succeeds, so a
        rehydration blocked by the tenant's quota raises
        :class:`~repro.errors.QuotaExceededError` *without* losing the
        spilled state — a later access retries.
        """
        session, entry = self._tiering.load(key)
        try:
            served = self._admit(key, session, ttl=entry["ttl"])
        except BaseException:
            session.close()
            raise
        self._tiering.commit(key)
        served.stats.rows_applied = int(entry["rows_applied"])
        served.stats.rows_enqueued = int(entry["rows_enqueued"])
        served.tier = "rehydrated"
        served.demoted_capacity = entry["demoted_capacity"]
        return served

    def drop(self, name: str, tenant: str = DEFAULT_TENANT) -> None:
        """Remove and tear down a session (live or spilled); unknown keys raise."""
        key = (str(tenant), str(name))
        served = self._sessions.pop(key, None)
        if served is None:
            if self._tiering is not None and self._tiering.discard(key):
                return
            raise SessionNotFoundError(f"no session {key[0]!r}/{key[1]!r} to drop")
        served.close_nowait()
        self._release_quota(served)

    def sweep(self, now: Optional[float] = None) -> List[SessionKey]:
        """Evict every TTL-expired session; returns the evicted keys."""
        now = self._clock() if now is None else now
        self._last_sweep = now
        expired = [
            key for key, served in self._sessions.items() if served.expired(now)
        ]
        for key in expired:
            self._evict(key)
        return expired

    def _evict(self, key: SessionKey) -> None:
        """Evict one session — through the spill tier when one is wired.

        A successful spill turns the eviction into a demotion (the key
        stays reachable and rehydrates on next access); sessions that
        cannot spill (unserializable estimators, a failing tier disk)
        fall back to the plain discard this method always was.
        """
        served = self._sessions.pop(key)
        if self._tiering is not None:
            self._tiering.spill(served)
        served.close_nowait()
        self._release_quota(served)
        self._evicted += 1

    def _release_quota(self, served: ServedSession) -> None:
        if self._quota is not None:
            self._quota.release_session(
                served.tenant, getattr(served, "quota_counters", 1)
            )

    async def aclose_all(self) -> None:
        """Drain and close every session (server shutdown path).

        Sessions stay registered after the close — still queryable, and
        visible to the server's final checkpoint pass — but reject new
        rows.
        """
        for served in list(self._sessions.values()):
            await served.aclose()
