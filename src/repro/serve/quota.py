"""Per-tenant serving quotas, enforced through the backpressure path.

A :class:`TenantQuota` bounds what one tenant may hold and push:

* ``max_sessions`` — concurrently served sessions,
* ``max_rows_per_sec`` (with ``burst_rows``) — sustained ingest rate,
  metered by a :class:`TokenBucket`,
* ``max_resident_counters`` — total sketch bins resident in memory
  across the tenant's live sessions (the unit the paper prices accuracy
  in: a capacity-``m`` sketch holds ``m`` counters, a sharded ensemble
  ``m × shards``).

Enforcement reuses the serving layer's two ingest temperaments instead
of inventing a third: the *blocking* path (``put_batch`` / wire
``block:true``) absorbs a rate overage as a computed delay — the token
bucket runs a debt and tells the producer how long to sleep, so
concurrent producers of one tenant serialize fairly — while the
*non-blocking* path (``offer_batch`` / wire ``block:false``) raises
:class:`~repro.errors.QuotaExceededError` exactly like a full queue
raises :class:`~repro.errors.BackpressureError`.  Session and memory
quotas are checked at admission (create/adopt/rehydrate) and released on
eviction and drop.

Clocks are injectable everywhere, so tests drive refill across
arbitrary — even backward — clock jumps deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import InvalidParameterError, QuotaExceededError

__all__ = ["TokenBucket", "TenantQuota", "QuotaManager", "resident_counters"]


class TokenBucket:
    """A token bucket that can run a debt for blocking producers.

    ``try_acquire`` is the classic non-blocking check.  ``reserve`` takes
    the tokens *unconditionally* — driving the balance negative when the
    bucket is short — and returns how many seconds the caller must wait
    for the debt to refill.  Because each reservation deepens the debt,
    N concurrent producers reserving at once receive strictly increasing
    delays: the bucket serializes them without any queue of its own.

    Parameters
    ----------
    rate:
        Sustained refill rate, tokens per second.
    burst:
        Bucket capacity (defaults to one second of ``rate``); the bucket
        starts full.
    clock:
        Monotonic time source.  Backward jumps (a frozen or adjusted test
        clock) re-anchor the refill origin instead of minting or burning
        tokens.
    """

    __slots__ = ("_rate", "_burst", "_tokens", "_last", "_clock")

    def __init__(
        self, rate: float, burst: Optional[float] = None, *, clock=time.monotonic
    ) -> None:
        if rate <= 0:
            raise InvalidParameterError(f"rate must be positive, got {rate}")
        burst = float(rate) if burst is None else float(burst)
        if burst <= 0:
            raise InvalidParameterError(f"burst must be positive, got {burst}")
        self._rate = float(rate)
        self._burst = burst
        self._tokens = burst
        self._clock = clock
        self._last = clock()

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def burst(self) -> float:
        return self._burst

    @property
    def tokens(self) -> float:
        """Current balance (negative while running a reserved debt)."""
        self._refill(self._clock())
        return self._tokens

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        self._last = now
        if elapsed <= 0.0:
            # A backward clock jump must not mint tokens (elapsed < 0
            # multiplied by the rate would *drain* the bucket) — just
            # re-anchor and keep the balance.
            return
        self._tokens = min(self._burst, self._tokens + elapsed * self._rate)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if the balance covers them; never waits."""
        self._refill(self._clock())
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def reserve(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` unconditionally; return seconds until paid off.

        A zero return means the bucket covered the reservation and the
        caller may proceed immediately.
        """
        self._refill(self._clock())
        self._tokens -= tokens
        if self._tokens >= 0.0:
            return 0.0
        return -self._tokens / self._rate


@dataclass(frozen=True)
class TenantQuota:
    """Limits for one tenant; ``None`` fields are unlimited.

    Attributes
    ----------
    max_sessions:
        Concurrently served (live) sessions.
    max_rows_per_sec:
        Sustained ingest rate across all the tenant's sessions.
    burst_rows:
        Token-bucket burst (defaults to one second of rate).
    max_resident_counters:
        Total sketch counters resident across live sessions; admission
        beyond it raises rather than silently evicting a neighbour.
    """

    max_sessions: Optional[int] = None
    max_rows_per_sec: Optional[float] = None
    burst_rows: Optional[float] = None
    max_resident_counters: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_sessions is not None and self.max_sessions < 1:
            raise InvalidParameterError(
                f"max_sessions must be >= 1 or None, got {self.max_sessions}"
            )
        if self.max_rows_per_sec is not None and self.max_rows_per_sec <= 0:
            raise InvalidParameterError(
                f"max_rows_per_sec must be positive or None, "
                f"got {self.max_rows_per_sec}"
            )
        if self.burst_rows is not None and self.burst_rows <= 0:
            raise InvalidParameterError(
                f"burst_rows must be positive or None, got {self.burst_rows}"
            )
        if (
            self.max_resident_counters is not None
            and self.max_resident_counters < 1
        ):
            raise InvalidParameterError(
                f"max_resident_counters must be >= 1 or None, "
                f"got {self.max_resident_counters}"
            )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "max_sessions": self.max_sessions,
            "max_rows_per_sec": self.max_rows_per_sec,
            "burst_rows": self.burst_rows,
            "max_resident_counters": self.max_resident_counters,
        }


def resident_counters(estimator: Any) -> int:
    """Estimate how many counters ``estimator`` keeps resident.

    Sharded and parallel ensembles multiply their per-shard capacity by
    the shard count; windowed pane rings multiply by the live pane bound;
    anything without a known capacity accounts as a single counter (it
    still occupies a session slot).
    """
    shards = getattr(estimator, "num_shards", None)
    capacity = getattr(estimator, "capacity", None)
    if capacity is None:
        capacity = getattr(estimator, "size", None)
    if capacity is None:
        return 1
    count = int(capacity)
    if shards:
        count *= int(shards)
    panes = getattr(estimator, "max_panes", None)
    if panes:
        count *= int(panes)
    return max(1, count)


class QuotaManager:
    """Tracks and enforces :class:`TenantQuota` limits across a registry.

    Parameters
    ----------
    default:
        Quota applied to tenants without an explicit entry (``None`` =
        unlimited for unlisted tenants).
    per_tenant:
        ``{tenant: TenantQuota}`` overrides.
    clock:
        Monotonic time source shared by every tenant's token bucket.
    """

    def __init__(
        self,
        default: Optional[TenantQuota] = None,
        per_tenant: Optional[Dict[str, TenantQuota]] = None,
        *,
        clock=time.monotonic,
    ) -> None:
        self._default = default
        self._per_tenant = dict(per_tenant or {})
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._sessions: Dict[str, int] = {}
        self._counters: Dict[str, int] = {}
        #: Operational counters for the metrics surface.
        self.rows_throttled = 0
        self.throttle_events = 0
        self.rows_rejected = 0
        self.sessions_rejected = 0

    def quota_for(self, tenant: str) -> Optional[TenantQuota]:
        return self._per_tenant.get(tenant, self._default)

    def set_quota(self, tenant: str, quota: Optional[TenantQuota]) -> None:
        """Install (or with ``None`` clear) one tenant's override."""
        if quota is None:
            self._per_tenant.pop(tenant, None)
        else:
            self._per_tenant[tenant] = quota
        self._buckets.pop(tenant, None)  # rebuilt lazily at the new rate

    def _bucket(self, tenant: str, quota: TenantQuota) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None or bucket.rate != quota.max_rows_per_sec:
            bucket = TokenBucket(
                quota.max_rows_per_sec, quota.burst_rows, clock=self._clock
            )
            self._buckets[tenant] = bucket
        return bucket

    # ------------------------------------------------------------------
    # Rate limits (the ingest paths)
    # ------------------------------------------------------------------
    def reserve_rows(self, tenant: str, rows: int) -> float:
        """Blocking-path check: seconds the producer must wait (0 = go)."""
        quota = self.quota_for(tenant)
        if quota is None or quota.max_rows_per_sec is None or rows <= 0:
            return 0.0
        delay = self._bucket(tenant, quota).reserve(rows)
        if delay > 0.0:
            self.rows_throttled += rows
            self.throttle_events += 1
        return delay

    def try_rows(self, tenant: str, rows: int) -> bool:
        """Non-blocking-path check; ``False`` counts a rejection."""
        quota = self.quota_for(tenant)
        if quota is None or quota.max_rows_per_sec is None or rows <= 0:
            return True
        if self._bucket(tenant, quota).try_acquire(rows):
            return True
        self.rows_rejected += rows
        return False

    # ------------------------------------------------------------------
    # Admission limits (registry lifecycle)
    # ------------------------------------------------------------------
    def acquire_session(self, tenant: str, counters: int = 1) -> None:
        """Admit one session holding ``counters`` sketch counters, or raise."""
        quota = self.quota_for(tenant)
        held_sessions = self._sessions.get(tenant, 0)
        held_counters = self._counters.get(tenant, 0)
        if quota is not None:
            if (
                quota.max_sessions is not None
                and held_sessions >= quota.max_sessions
            ):
                self.sessions_rejected += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} is at its session quota "
                    f"({held_sessions}/{quota.max_sessions}); drop a session "
                    "or raise the quota"
                )
            if (
                quota.max_resident_counters is not None
                and held_counters + counters > quota.max_resident_counters
            ):
                self.sessions_rejected += 1
                raise QuotaExceededError(
                    f"tenant {tenant!r} would hold {held_counters + counters} "
                    f"resident counters, over its quota of "
                    f"{quota.max_resident_counters}; use smaller sketches or "
                    "drop sessions"
                )
        self._sessions[tenant] = held_sessions + 1
        self._counters[tenant] = held_counters + counters

    def release_session(self, tenant: str, counters: int = 1) -> None:
        """Return one session's admission (eviction/drop path)."""
        remaining = self._sessions.get(tenant, 0) - 1
        if remaining > 0:
            self._sessions[tenant] = remaining
            self._counters[tenant] = max(
                0, self._counters.get(tenant, 0) - counters
            )
        else:
            self._sessions.pop(tenant, None)
            self._counters.pop(tenant, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def usage(self, tenant: str) -> Dict[str, Any]:
        quota = self.quota_for(tenant)
        bucket = self._buckets.get(tenant)
        return {
            "sessions": self._sessions.get(tenant, 0),
            "resident_counters": self._counters.get(tenant, 0),
            "rate_tokens": None if bucket is None else bucket.tokens,
            "quota": None if quota is None else quota.as_dict(),
        }

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot for the ``metrics`` op."""
        tenants = sorted(set(self._sessions) | set(self._per_tenant))
        return {
            "rows_throttled": self.rows_throttled,
            "throttle_events": self.throttle_events,
            "rows_rejected": self.rows_rejected,
            "sessions_rejected": self.sessions_rejected,
            "default": None if self._default is None else self._default.as_dict(),
            "tenants": {tenant: self.usage(tenant) for tenant in tenants},
        }
