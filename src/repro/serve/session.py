"""One served session: a bounded ingest queue in front of a single writer.

A :class:`ServedSession` wraps a :class:`~repro.api.session.StreamSession`
for concurrent serving.  The concurrency design is deliberately lock-free:

* **Producers** enqueue row batches onto one bounded :class:`asyncio.Queue`
  (``await put_batch(...)`` blocks when the queue is full — natural
  backpressure; ``offer_batch(...)`` is the non-blocking twin and reports
  a full queue instead of waiting).
* **One writer task** per session drains the queue, coalescing up to
  ``coalesce`` waiting batches into a single ``update_batch`` call so the
  sketch's vectorized fast path amortizes queue overhead, then yields the
  event loop before taking the next batch.
* **Readers** call the session's normalized query surface directly.
  Because everything runs on one event loop and ``update_batch`` is
  synchronous, a query can never observe a half-applied batch — reads
  interleave with ingest only at batch boundaries, without blocking the
  queue (producers keep enqueueing while a query runs).

The wrapped session is the single source of truth; the served layer adds
only scheduling, accounting (:class:`ServeStats`) and lifecycle (TTL
bookkeeping for the registry's eviction policy, draining shutdown).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro._typing import Item, ItemPredicate
from repro.api.session import StreamSession
from repro.errors import (
    InvalidParameterError,
    QuotaExceededError,
    ServerClosedError,
)

__all__ = ["ServedSession", "ServeStats"]

#: Queue sentinel telling the writer task to exit after the batches ahead
#: of it have been applied.
_SHUTDOWN = object()


def _materialize(values: Optional[Iterable]) -> Optional[Sequence]:
    """Snapshot an iterable so the queue holds stable, sized sequences."""
    if values is None:
        return None
    if isinstance(values, (list, tuple, np.ndarray)):
        return values
    return list(values)


@dataclass
class ServeStats:
    """Serving-side accounting for one session (ingest path only)."""

    rows_enqueued: int = 0
    rows_applied: int = 0
    batches_enqueued: int = 0
    batches_applied: int = 0
    #: Queue batches merged into the ``update_batch`` call that applied
    #: them beyond the first — 0 when every batch was applied alone.
    batches_coalesced: int = 0
    failed_batches: int = 0
    max_queue_depth: int = 0
    last_error: Optional[str] = field(default=None, repr=False)

    @property
    def rows_pending(self) -> int:
        """Rows enqueued but not yet applied by the writer."""
        return self.rows_enqueued - self.rows_applied

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rows_enqueued": self.rows_enqueued,
            "rows_applied": self.rows_applied,
            "rows_pending": self.rows_pending,
            "batches_enqueued": self.batches_enqueued,
            "batches_applied": self.batches_applied,
            "batches_coalesced": self.batches_coalesced,
            "failed_batches": self.failed_batches,
            "max_queue_depth": self.max_queue_depth,
            "last_error": self.last_error,
        }


class ServedSession:
    """A :class:`StreamSession` behind a bounded queue and one writer task.

    Parameters
    ----------
    session:
        The wrapped stream session (any spec, backend or window).
    tenant, name:
        The registry key this session is served under.
    queue_maxsize:
        Bound of the ingest queue, in *batches*.  Producers awaiting
        ``put_batch`` on a full queue block until the writer frees a slot.
    coalesce:
        Maximum queued batches merged into one ``update_batch`` call.
    ttl:
        Idle seconds after which the registry's sweep may evict this
        session (``None`` disables TTL eviction).
    clock:
        Monotonic time source (injectable for deterministic tests).
    quota:
        Optional :class:`~repro.serve.quota.QuotaManager`; when set, the
        blocking ingest path sleeps off rate overages and the
        non-blocking one raises
        :class:`~repro.errors.QuotaExceededError`.
    metrics:
        Optional :class:`~repro.serve.stats.ServeMetrics` recorder shared
        across the registry; reads report their latency to it.
    """

    def __init__(
        self,
        session: StreamSession,
        *,
        tenant: str = "default",
        name: str = "session",
        queue_maxsize: int = 64,
        coalesce: int = 8,
        ttl: Optional[float] = None,
        clock=time.monotonic,
        quota=None,
        metrics=None,
    ) -> None:
        if queue_maxsize < 1:
            raise InvalidParameterError(
                f"queue_maxsize must be >= 1, got {queue_maxsize}"
            )
        if coalesce < 1:
            raise InvalidParameterError(f"coalesce must be >= 1, got {coalesce}")
        if ttl is not None and ttl <= 0:
            raise InvalidParameterError(f"ttl must be positive or None, got {ttl}")
        self._session = session
        self._tenant = str(tenant)
        self._name = str(name)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_maxsize)
        self._coalesce = int(coalesce)
        self._ttl = None if ttl is None else float(ttl)
        self._clock = clock
        self._quota = quota
        self._metrics = metrics
        self._writer_task: Optional[asyncio.Task] = None
        self._closed = False
        self._stats = ServeStats()
        self._last_access = clock()
        #: Rows applied at the last checkpoint (maintained by the
        #: checkpoint scheduler; lets it skip clean sessions).
        self.rows_checkpointed = 0
        #: Accuracy tier label: ``"hot"`` for freshly created sessions,
        #: ``"rehydrated"`` after a round trip through the spill tier.
        self.tier = "hot"
        #: Capacity the session was demoted to when it was spilled
        #: (``None`` while it has never been demoted).
        self.demoted_capacity: Optional[int] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def session(self) -> StreamSession:
        """The wrapped stream session (reads are safe at any time)."""
        return self._session

    @property
    def tenant(self) -> str:
        return self._tenant

    @property
    def name(self) -> str:
        return self._name

    @property
    def key(self) -> Tuple[str, str]:
        """The registry key ``(tenant, name)``."""
        return (self._tenant, self._name)

    @property
    def stats(self) -> ServeStats:
        return self._stats

    @property
    def ttl(self) -> Optional[float]:
        return self._ttl

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queue_depth(self) -> int:
        """Batches currently waiting for the writer."""
        return self._queue.qsize()

    @property
    def queue_maxsize(self) -> int:
        """Bound of the ingest queue, in batches."""
        return self._queue.maxsize

    @property
    def last_access(self) -> float:
        """Clock reading of the most recent ingest or query."""
        return self._last_access

    def touch(self) -> None:
        """Refresh the idle clock (every ingest and query calls this)."""
        self._last_access = self._clock()

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the TTL policy allows evicting this session now."""
        if self._ttl is None:
            return False
        now = self._clock() if now is None else now
        return (now - self._last_access) > self._ttl

    def describe(self) -> Dict[str, Any]:
        """Session metadata plus serving stats (the ``info`` op's payload)."""
        info = self._session.describe()
        info.update(
            tenant=self._tenant,
            name=self._name,
            ttl=self._ttl,
            queue_depth=self.queue_depth,
            queue_maxsize=self._queue.maxsize,
            closed=self._closed,
            tier=self.tier,
            demoted_capacity=self.demoted_capacity,
            serving=self._stats.as_dict(),
        )
        return info

    def __repr__(self) -> str:
        return (
            f"ServedSession({self._tenant!r}/{self._name!r}, "
            f"spec={self._session.spec_name!r}, queue={self.queue_depth}/"
            f"{self._queue.maxsize}, rows_applied={self._stats.rows_applied}, "
            f"closed={self._closed})"
        )

    # ------------------------------------------------------------------
    # Ingest path (producers)
    # ------------------------------------------------------------------
    def _prepare_batch(self, items, weights, timestamps):
        if self._closed:
            raise ServerClosedError(
                f"session {self._tenant!r}/{self._name!r} is closed to new rows"
            )
        items = _materialize(items)
        weights = _materialize(weights)
        timestamps = _materialize(timestamps)
        rows = len(items)
        if weights is not None and len(weights) != rows:
            raise InvalidParameterError(
                f"weights length {len(weights)} != items length {rows}"
            )
        if timestamps is not None and len(timestamps) != rows:
            raise InvalidParameterError(
                f"timestamps length {len(timestamps)} != items length {rows}"
            )
        return (items, weights, timestamps, rows)

    def _ensure_writer(self) -> None:
        if self._writer_task is None or self._writer_task.done():
            self._writer_task = asyncio.get_running_loop().create_task(
                self._run_writer(), name=f"serve-writer:{self._tenant}/{self._name}"
            )

    def _account_enqueued(self, rows: int) -> None:
        self._stats.rows_enqueued += rows
        self._stats.batches_enqueued += 1
        depth = self._queue.qsize()
        if depth > self._stats.max_queue_depth:
            self._stats.max_queue_depth = depth
        self.touch()

    async def put(
        self, item: Item, weight: float = 1.0, timestamp: Optional[float] = None
    ) -> None:
        """Enqueue one row (a batch of one; prefer :meth:`put_batch`)."""
        timestamps = None if timestamp is None else [timestamp]
        await self.put_batch([item], [float(weight)], timestamps)

    async def put_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
        timestamps: Optional[Iterable[float]] = None,
    ) -> int:
        """Enqueue a batch, awaiting queue space (backpressure); returns rows.

        Under a tenant rate quota the producer additionally sleeps off any
        token-bucket debt *before* enqueueing — quota overage surfaces as
        the same backpressure shape a full queue does.
        """
        batch = self._prepare_batch(items, weights, timestamps)
        if self._quota is not None:
            delay = self._quota.reserve_rows(self._tenant, batch[3])
            if delay > 0.0:
                await asyncio.sleep(delay)
        self._ensure_writer()
        await self._queue.put(batch)
        self._account_enqueued(batch[3])
        return batch[3]

    def offer_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
        timestamps: Optional[Iterable[float]] = None,
    ) -> bool:
        """Non-blocking enqueue: ``False`` when the queue is full.

        Callers that would rather fail loudly can raise
        :class:`~repro.errors.BackpressureError` themselves — the TCP
        server's non-blocking ingest op does exactly that.  A tenant over
        its rate quota raises :class:`~repro.errors.QuotaExceededError`
        here (distinct from the retry-soon ``False``: quota rejections
        are a policy decision, not transient queue pressure).
        """
        batch = self._prepare_batch(items, weights, timestamps)
        if self._quota is not None and not self._quota.try_rows(
            self._tenant, batch[3]
        ):
            raise QuotaExceededError(
                f"tenant {self._tenant!r} is over its ingest rate quota "
                f"({batch[3]} rows refused for session {self._name!r}); "
                "slow down, or use the blocking put_batch path"
            )
        self._ensure_writer()
        try:
            self._queue.put_nowait(batch)
        except asyncio.QueueFull:
            return False
        self._account_enqueued(batch[3])
        return True

    # ------------------------------------------------------------------
    # The single-writer ingest loop
    # ------------------------------------------------------------------
    @staticmethod
    def _merge_batches(batches: List[tuple]):
        """Concatenate coalesced batches into one (items, weights, timestamps)."""
        if len(batches) == 1:
            items, weights, timestamps, _ = batches[0]
            return items, weights, timestamps

        def concat(parts: List[Sequence]):
            if all(isinstance(part, np.ndarray) for part in parts):
                return np.concatenate(parts)
            merged: List[Any] = []
            for part in parts:
                merged.extend(part)
            return merged

        items = concat([batch[0] for batch in batches])
        if any(batch[1] is not None for batch in batches):
            # Mixed weighted / unit batches: materialize unit weights so
            # alignment survives concatenation.
            weights = concat(
                [
                    batch[1]
                    if batch[1] is not None
                    else np.ones(batch[3], dtype=np.float64)
                    for batch in batches
                ]
            )
        else:
            weights = None
        if any(batch[2] is not None for batch in batches):
            # update()/update_batch() reject partial timestamps already;
            # a mix here means the caller interleaved timestamped and
            # plain batches, which a windowed session cannot order.
            timestamps = concat([batch[2] for batch in batches])
        else:
            timestamps = None
        return items, weights, timestamps

    def _apply_one(self, items, weights, timestamps) -> None:
        if timestamps is None:
            self._session.update_batch(items, weights)
        else:
            self._session.update_batch(items, weights, timestamps=timestamps)

    def _apply_batches(self, batches: List[tuple]) -> None:
        """Apply a coalesced group, isolating any poison batch in it.

        The merged fast path is tried first; if it raises *without having
        mutated the sketch* (checked via the ``rows_processed`` counter),
        each batch is retried individually so one bad batch
        (unconvertible weights, a capability violation) cannot take its
        coalesced neighbours' rows down with it.  When the merged attempt
        raised mid-way — windowed sessions apply per-pane slices, so a
        later slice can fail after earlier ones ingested — retrying would
        double-apply the prefix; instead the partial ingestion is
        recorded as applied rows and the whole group is marked failed
        (``rows_pending`` exposes the shortfall).
        """
        if len(batches) > 1:
            rows_before = self._session.rows_processed
            try:
                items, weights, timestamps = self._merge_batches(batches)
                self._apply_one(items, weights, timestamps)
            except Exception as exc:
                partially_applied = self._session.rows_processed - rows_before
                if partially_applied > 0:
                    self._stats.rows_applied += partially_applied
                    self._stats.failed_batches += len(batches)
                    self._stats.last_error = (
                        f"{type(exc).__name__}: {exc} (merged group partially "
                        f"ingested {partially_applied} rows; not retried)"
                    )
                    return
                # No mutation: fall through to per-batch isolation.
            else:
                self._stats.rows_applied += sum(batch[3] for batch in batches)
                self._stats.batches_applied += 1
                self._stats.batches_coalesced += len(batches) - 1
                return
        for items, weights, timestamps, rows in batches:
            rows_before = self._session.rows_processed
            try:
                self._apply_one(items, weights, timestamps)
            except Exception as exc:  # keep serving: the poison batch is dropped
                self._stats.rows_applied += max(
                    0, self._session.rows_processed - rows_before
                )
                self._stats.failed_batches += 1
                self._stats.last_error = f"{type(exc).__name__}: {exc}"
            else:
                self._stats.rows_applied += rows
                self._stats.batches_applied += 1

    async def _run_writer(self) -> None:
        carry = None
        while True:
            head = carry if carry is not None else await self._queue.get()
            carry = None
            if head is _SHUTDOWN:
                self._queue.task_done()
                return
            batches = [head]
            head_timestamped = head[2] is not None
            stop = False
            while len(batches) < self._coalesce:
                try:
                    batch = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if batch is _SHUTDOWN:
                    stop = True
                    break
                if (batch[2] is not None) != head_timestamped:
                    # Timestamped and plain batches cannot concatenate
                    # (both are valid on windowed sessions — plain rows
                    # route to the active window); hold this one for the
                    # next apply round instead of merging across the
                    # boundary.
                    carry = batch
                    break
                batches.append(batch)
            try:
                self._apply_batches(batches)
                # Applying rows is activity: a session whose producers are
                # parked on a full queue must not look TTL-idle.
                self.touch()
            finally:
                for _ in batches:
                    self._queue.task_done()
                if stop:
                    self._queue.task_done()
            if stop:
                return
            # Yield so queries and producers interleave between batches.
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # Read path (never blocks the queue)
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Wait until every enqueued batch has been applied."""
        await self._queue.join()

    def _timed(self, op: str, call, *args):
        """Run one read, reporting its latency to the shared recorder."""
        self.touch()
        if self._metrics is None:
            return call(*args)
        started = self._metrics.start()
        result = call(*args)
        self._metrics.observe_since(op, started)
        return result

    def estimate(self, item: Item):
        return self._timed("estimate", self._session.estimate, item)

    def estimates(self) -> Dict[Item, float]:
        return self._timed("estimates", self._session.estimates)

    def subset_sum(self, predicate: ItemPredicate):
        return self._timed("subset_sum", self._session.subset_sum, predicate)

    def total(self):
        return self._timed("total", self._session.total)

    def heavy_hitters(self, phi: float):
        return self._timed("heavy_hitters", self._session.heavy_hitters, phi)

    def top_k(self, k: int):
        return self._timed("top_k", self._session.top_k, k)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Clean shutdown: stop accepting rows, drain in-flight batches.

        Idempotent.  Every batch enqueued before the close is applied to
        the sketch before the writer exits (asserted by the shutdown
        tests), so a drained close never loses accepted rows.
        """
        if self._closed:
            await self.drain()
            return
        self._closed = True
        if self._writer_task is not None and not self._writer_task.done():
            await self._queue.put(_SHUTDOWN)
            await self._writer_task
        # A producer that prepared its batch before the close flag flipped
        # may have enqueued it behind the shutdown sentinel; apply those
        # stragglers here so no accepted row is ever dropped.
        leftovers: List[tuple] = []
        while True:
            try:
                batch = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._queue.task_done()
            if batch is not _SHUTDOWN:
                leftovers.append(batch)
        if leftovers:
            self._apply_batches(leftovers)
        self._session.close()

    def _drain_dropped(self) -> None:
        """Discard queued batches, keeping join()/put() bookkeeping sound."""
        while True:
            try:
                batch = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            self._queue.task_done()
            if batch is not _SHUTDOWN:
                self._stats.failed_batches += 1
                self._stats.last_error = "batch dropped: session closed"

    async def _reap_queue(self) -> None:
        """Settle the queue after an immediate close.

        Draining frees slots, which wakes producers suspended in
        ``queue.put`` — their put then completes and is discarded on the
        next pass, so neither blocked producers nor ``drain()`` callers
        (``queue.join()``) hang on a closed session.  Terminates once the
        queue stays empty across a few loop ticks (no waiter left).
        """
        consecutive_empty = 0
        while consecutive_empty < 3:
            self._drain_dropped()
            consecutive_empty = consecutive_empty + 1 if self._queue.empty() else 0
            await asyncio.sleep(0)

    def close_nowait(self) -> None:
        """Immediate teardown (eviction path): cancel the writer, no drain.

        TTL-evicted sessions are normally idle, so there is usually
        nothing in the queue to lose; capacity evictions of busy sessions
        drop whatever was still enqueued (counted in ``stats`` as failed
        batches).  A reaper task settles the queue so producers blocked on
        a full queue and ``drain()`` waiters are released instead of
        hanging forever.
        """
        self._closed = True
        if self._writer_task is not None and not self._writer_task.done():
            self._writer_task.cancel()
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            loop = None
        if loop is not None:
            loop.create_task(
                self._reap_queue(), name=f"serve-reaper:{self._tenant}/{self._name}"
            )
        else:
            self._drain_dropped()  # no loop running: nothing can be blocked
        self._session.close()
