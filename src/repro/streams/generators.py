"""Row-stream generators: turn frequency models into disaggregated streams.

A *stream* here is simply a sequence of item labels, one per raw row, in a
particular arrival order.  The order is what separates the friendly i.i.d.
case (§6.1-6.2) from the pathological cases (§6.3): the counts are the same,
only the arrangement changes.  Exchangeable streams (uniformly random
permutations of the rows) are the finite-sample analogue of i.i.d. draws the
paper's experiments use.

For speed the generators produce numpy integer arrays when the item labels
are integers, falling back to Python lists otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro._typing import Item
from repro.errors import InvalidParameterError
from repro.streams.frequency import FrequencyModel

__all__ = [
    "rows_from_counts",
    "exchangeable_stream",
    "iid_stream",
    "deterministic_round_robin_stream",
    "concatenate_streams",
    "BurstSpec",
    "bursty_soak_stream",
    "timestamp_rows",
    "timestamped_zipf_stream",
    "timestamped_adclick_stream",
    "chunk_stream",
]

Stream = Union[np.ndarray, List[Item]]

#: One timestamped row: ``(item, weight, timestamp)`` — the shape consumed
#: by windowed sessions' ``extend`` (see :mod:`repro.windows`).
TimestampedRow = Tuple[Item, float, float]


def _expand_counts(model: FrequencyModel) -> Stream:
    """One row per occurrence, grouped by item in model order."""
    labels = model.items()
    counts = [model.count(label) for label in labels]
    if all(isinstance(label, (int, np.integer)) for label in labels):
        return np.repeat(np.asarray(labels, dtype=np.int64), counts)
    expanded: List[Item] = []
    for label, count in zip(labels, counts):
        expanded.extend([label] * count)
    return expanded


def rows_from_counts(
    model: FrequencyModel,
    *,
    order: str = "shuffled",
    rng: Optional[np.random.Generator] = None,
) -> Stream:
    """Materialize the disaggregated rows of a frequency model.

    Parameters
    ----------
    model:
        The per-item counts to expand.
    order:
        ``"shuffled"`` — uniformly random permutation (exchangeable stream);
        ``"sorted_ascending"`` / ``"sorted_descending"`` — rows grouped by
        item, items ordered by count (the pathological sorted streams of
        §7.1); ``"grouped"`` — rows grouped by item in model order.
    rng:
        Numpy generator used for shuffling.
    """
    rows = _expand_counts(model)
    if order == "grouped":
        return rows
    if order == "shuffled":
        rng = rng or np.random.default_rng()
        if isinstance(rows, np.ndarray):
            return rng.permutation(rows)
        shuffled = list(rows)
        # numpy's shuffle works in-place on lists of objects as well.
        rng.shuffle(shuffled)
        return shuffled
    if order in ("sorted_ascending", "sorted_descending"):
        ascending = order == "sorted_ascending"
        ordered_items = model.sorted_items(ascending=ascending)
        if all(isinstance(label, (int, np.integer)) for label, _ in ordered_items):
            labels = np.asarray([label for label, _ in ordered_items], dtype=np.int64)
            counts = [count for _, count in ordered_items]
            return np.repeat(labels, counts)
        expanded: List[Item] = []
        for label, count in ordered_items:
            expanded.extend([label] * count)
        return expanded
    raise InvalidParameterError(
        f"unknown order {order!r}; expected 'shuffled', 'grouped', "
        "'sorted_ascending' or 'sorted_descending'"
    )


def exchangeable_stream(
    model: FrequencyModel, *, rng: Optional[np.random.Generator] = None
) -> Stream:
    """A uniformly random permutation of the model's rows.

    By de Finetti's theorem (as the paper notes) this is the finite analogue
    of an i.i.d. stream with the model's relative frequencies.
    """
    return rows_from_counts(model, order="shuffled", rng=rng)


def iid_stream(
    model: FrequencyModel,
    num_rows: int,
    *,
    rng: Optional[np.random.Generator] = None,
) -> Stream:
    """Draw ``num_rows`` i.i.d. rows with probabilities proportional to the counts."""
    if num_rows < 0:
        raise InvalidParameterError("num_rows must be non-negative")
    rng = rng or np.random.default_rng()
    labels = model.items()
    counts = np.asarray([model.count(label) for label in labels], dtype=np.float64)
    if counts.sum() <= 0:
        raise InvalidParameterError("the frequency model has no rows to draw from")
    probabilities = counts / counts.sum()
    indices = rng.choice(len(labels), size=num_rows, p=probabilities)
    if all(isinstance(label, (int, np.integer)) for label in labels):
        label_array = np.asarray(labels, dtype=np.int64)
        return label_array[indices]
    return [labels[index] for index in indices]


def deterministic_round_robin_stream(model: FrequencyModel) -> List[Item]:
    """Interleave items round-robin until each item's count is exhausted.

    A maximally "spread out" arrival order used by a few tests as a
    non-random but also non-adversarial ordering.
    """
    remaining = {item: model.count(item) for item in model.items()}
    rows: List[Item] = []
    while remaining:
        exhausted = []
        for item in remaining:
            rows.append(item)
            remaining[item] -= 1
            if remaining[item] == 0:
                exhausted.append(item)
        for item in exhausted:
            del remaining[item]
    return rows


def concatenate_streams(*streams: Stream) -> Stream:
    """Concatenate several streams preserving their internal order."""
    if not streams:
        return []
    if all(isinstance(stream, np.ndarray) for stream in streams):
        return np.concatenate(streams)
    combined: List[Item] = []
    for stream in streams:
        combined.extend(list(stream))
    return combined


# ----------------------------------------------------------------------
# Timestamped streams (for the repro.windows subsystem)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BurstSpec:
    """A traffic burst injected into a timestamped stream.

    ``rows`` extra unit-weight rows for ``item`` arrive with timestamps
    uniform over ``[at, at + duration)`` — the "suddenly trending" shape
    windowed heavy-hitter queries exist to catch.
    """

    item: Item
    at: float
    duration: float
    rows: int

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise InvalidParameterError("burst duration must be positive")
        if self.rows < 1:
            raise InvalidParameterError("a burst must inject at least one row")


def timestamp_rows(
    stream: Iterable[Item],
    *,
    start: float = 0.0,
    duration: float = 60.0,
    rng: Optional[np.random.Generator] = None,
) -> List[TimestampedRow]:
    """Attach sorted uniform arrival times to an existing item stream.

    Each row receives a timestamp drawn uniformly from
    ``[start, start + duration)``; timestamps are sorted and assigned in
    stream order, so the result is the same stream with a stationary
    (Poisson-like) arrival process layered on top.
    """
    if duration <= 0:
        raise InvalidParameterError("duration must be positive")
    rows = list(iterate_rows(stream))
    rng = rng or np.random.default_rng()
    times = np.sort(rng.uniform(start, start + duration, size=len(rows)))
    return [(item, 1.0, float(ts)) for item, ts in zip(rows, times)]


def _splice_bursts(
    rows: List[TimestampedRow],
    bursts: Iterable[BurstSpec],
    rng: np.random.Generator,
) -> List[TimestampedRow]:
    """Merge burst rows into a timestamped stream, re-sorted by arrival."""
    for burst in bursts:
        burst_times = np.sort(
            rng.uniform(burst.at, burst.at + burst.duration, size=burst.rows)
        )
        rows.extend((burst.item, 1.0, float(ts)) for ts in burst_times)
    rows.sort(key=lambda row: row[2])
    return rows


def timestamped_zipf_stream(
    num_rows: int,
    *,
    num_items: int,
    exponent: float = 1.1,
    start: float = 0.0,
    duration: float = 60.0,
    bursts: Iterable[BurstSpec] = (),
    rng: Optional[np.random.Generator] = None,
) -> List[TimestampedRow]:
    """A timestamped Zipf stream with optional injected bursts.

    The background traffic is ``num_rows`` i.i.d. Zipf(``exponent``) draws
    arriving uniformly over ``[start, start + duration)``; each
    :class:`BurstSpec` then splices extra rows for its item into the burst
    interval.  The result is sorted by timestamp, ready for
    ``session.extend(rows)`` or (column-split) ``update_batch``.

    >>> rows = timestamped_zipf_stream(
    ...     1000, num_items=50, duration=100.0,
    ...     bursts=[BurstSpec(item=999, at=40.0, duration=10.0, rows=200)],
    ...     rng=np.random.default_rng(0))
    >>> len(rows)
    1200
    >>> all(40.0 <= ts < 50.0 for item, _, ts in rows if item == 999)
    True
    """
    if num_rows < 0:
        raise InvalidParameterError("num_rows must be non-negative")
    rng = rng or np.random.default_rng()
    from repro.streams.frequency import zipf_counts

    model = zipf_counts(num_items=num_items, exponent=exponent, total=max(num_rows, 1))
    background = iid_stream(model, num_rows, rng=rng)
    rows = timestamp_rows(background, start=start, duration=duration, rng=rng)
    return _splice_bursts(rows, bursts, rng)


def timestamped_adclick_stream(
    dataset,
    *,
    start: float = 0.0,
    duration: float = 60.0,
    bursts: Iterable[BurstSpec] = (),
    rng: Optional[np.random.Generator] = None,
) -> List[TimestampedRow]:
    """Timestamped ad impressions from an :class:`~repro.streams.adclick.AdClickDataset`.

    One ``(feature_tuple, 1.0, timestamp)`` row per impression, arrivals
    uniform over ``[start, start + duration)``, plus optional bursts
    (e.g. a campaign flight: a specific feature tuple spiking for a few
    seconds).
    """
    rng = rng or np.random.default_rng()
    rows = timestamp_rows(
        dataset.impressions(), start=start, duration=duration, rng=rng
    )
    return _splice_bursts(rows, bursts, rng)


def bursty_soak_stream(
    rows_per_hour: int,
    *,
    hours: float = 1.0,
    num_items: int = 1_000,
    exponent: float = 1.1,
    bursts_per_hour: float = 4.0,
    burst_rows: Optional[int] = None,
    burst_duration: float = 60.0,
    start: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> List[TimestampedRow]:
    """An hours-equivalent bursty workload, compressed into one stream.

    The soak benchmark's input: ``hours`` of simulated wall clock
    (``hours * 3600`` seconds of timestamp range) carrying
    ``rows_per_hour`` background Zipf rows per hour, with
    ``bursts_per_hour`` evenly-spaced :class:`BurstSpec` spikes.  Each
    burst promotes a *fresh* item (labelled ``num_items+1, num_items+2,
    ...`` — beyond the background alphabet of ``1..num_items``) from
    nothing to heavy hitter
    for ``burst_duration`` seconds, the churny traffic shape that
    stresses Space Saving's eviction path and windowed queries alike.

    Everything is driven by ``rng``, so one seed fixes the whole
    workload — which is what lets the soak harness replay the identical
    stream through a killed-and-restored pipeline.

    >>> rows = bursty_soak_stream(
    ...     1000, hours=2.0, num_items=50, bursts_per_hour=2.0,
    ...     burst_rows=100, rng=np.random.default_rng(7))
    >>> len(rows)  # 2h x 1000 rows/h background + 4 bursts x 100 rows
    2400
    >>> all(a[2] <= b[2] for a, b in zip(rows, rows[1:]))  # time-sorted
    True
    >>> sorted({item for item, _, _ in rows if item > 50})  # burst items
    [51, 52, 53, 54]
    """
    if rows_per_hour < 0:
        raise InvalidParameterError("rows_per_hour must be non-negative")
    if hours <= 0:
        raise InvalidParameterError("hours must be positive")
    if bursts_per_hour < 0:
        raise InvalidParameterError("bursts_per_hour must be non-negative")
    rng = rng or np.random.default_rng()
    duration = hours * 3600.0
    total_rows = int(round(rows_per_hour * hours))
    num_bursts = int(round(bursts_per_hour * hours))
    if burst_rows is None:
        burst_rows = max(1, total_rows // (10 * max(num_bursts, 1)))
    spacing = duration / max(num_bursts, 1)
    bursts = [
        BurstSpec(
            item=num_items + 1 + index,
            at=start + (index + 0.5) * spacing,
            duration=min(burst_duration, spacing / 2),
            rows=burst_rows,
        )
        for index in range(num_bursts)
    ]
    return timestamped_zipf_stream(
        total_rows,
        num_items=num_items,
        exponent=exponent,
        start=start,
        duration=duration,
        bursts=bursts,
        rng=rng,
    )


def chunk_stream(stream: Stream, batch_rows: int) -> List[Stream]:
    """Slice a stream into contiguous batches of at most ``batch_rows`` rows.

    Numpy streams yield array views (zero copy), lists yield list slices.
    This is the batching step in front of every bulk-ingestion surface —
    ``update_batch`` loops, the serve layer's producer queues, and the
    throughput benchmark's per-mode chunking all share it.
    """
    if batch_rows < 1:
        raise InvalidParameterError(f"batch_rows must be >= 1, got {batch_rows}")
    return [
        stream[start : start + batch_rows]
        for start in range(0, len(stream), batch_rows)
    ]


def stream_length(stream: Stream) -> int:
    """Number of rows in a stream (works for arrays and lists alike)."""
    return int(len(stream))


def iterate_rows(stream: Stream) -> Iterator[Item]:
    """Iterate over rows, converting numpy scalars to Python ints for hashing."""
    if isinstance(stream, np.ndarray):
        for value in stream:
            yield int(value)
    else:
        yield from stream
