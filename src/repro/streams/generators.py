"""Row-stream generators: turn frequency models into disaggregated streams.

A *stream* here is simply a sequence of item labels, one per raw row, in a
particular arrival order.  The order is what separates the friendly i.i.d.
case (§6.1-6.2) from the pathological cases (§6.3): the counts are the same,
only the arrangement changes.  Exchangeable streams (uniformly random
permutations of the rows) are the finite-sample analogue of i.i.d. draws the
paper's experiments use.

For speed the generators produce numpy integer arrays when the item labels
are integers, falling back to Python lists otherwise.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

import numpy as np

from repro._typing import Item
from repro.errors import InvalidParameterError
from repro.streams.frequency import FrequencyModel

__all__ = [
    "rows_from_counts",
    "exchangeable_stream",
    "iid_stream",
    "deterministic_round_robin_stream",
    "concatenate_streams",
]

Stream = Union[np.ndarray, List[Item]]


def _expand_counts(model: FrequencyModel) -> Stream:
    """One row per occurrence, grouped by item in model order."""
    labels = model.items()
    counts = [model.count(label) for label in labels]
    if all(isinstance(label, (int, np.integer)) for label in labels):
        return np.repeat(np.asarray(labels, dtype=np.int64), counts)
    expanded: List[Item] = []
    for label, count in zip(labels, counts):
        expanded.extend([label] * count)
    return expanded


def rows_from_counts(
    model: FrequencyModel,
    *,
    order: str = "shuffled",
    rng: Optional[np.random.Generator] = None,
) -> Stream:
    """Materialize the disaggregated rows of a frequency model.

    Parameters
    ----------
    model:
        The per-item counts to expand.
    order:
        ``"shuffled"`` — uniformly random permutation (exchangeable stream);
        ``"sorted_ascending"`` / ``"sorted_descending"`` — rows grouped by
        item, items ordered by count (the pathological sorted streams of
        §7.1); ``"grouped"`` — rows grouped by item in model order.
    rng:
        Numpy generator used for shuffling.
    """
    rows = _expand_counts(model)
    if order == "grouped":
        return rows
    if order == "shuffled":
        rng = rng or np.random.default_rng()
        if isinstance(rows, np.ndarray):
            return rng.permutation(rows)
        shuffled = list(rows)
        # numpy's shuffle works in-place on lists of objects as well.
        rng.shuffle(shuffled)
        return shuffled
    if order in ("sorted_ascending", "sorted_descending"):
        ascending = order == "sorted_ascending"
        ordered_items = model.sorted_items(ascending=ascending)
        if all(isinstance(label, (int, np.integer)) for label, _ in ordered_items):
            labels = np.asarray([label for label, _ in ordered_items], dtype=np.int64)
            counts = [count for _, count in ordered_items]
            return np.repeat(labels, counts)
        expanded: List[Item] = []
        for label, count in ordered_items:
            expanded.extend([label] * count)
        return expanded
    raise InvalidParameterError(
        f"unknown order {order!r}; expected 'shuffled', 'grouped', "
        "'sorted_ascending' or 'sorted_descending'"
    )


def exchangeable_stream(
    model: FrequencyModel, *, rng: Optional[np.random.Generator] = None
) -> Stream:
    """A uniformly random permutation of the model's rows.

    By de Finetti's theorem (as the paper notes) this is the finite analogue
    of an i.i.d. stream with the model's relative frequencies.
    """
    return rows_from_counts(model, order="shuffled", rng=rng)


def iid_stream(
    model: FrequencyModel,
    num_rows: int,
    *,
    rng: Optional[np.random.Generator] = None,
) -> Stream:
    """Draw ``num_rows`` i.i.d. rows with probabilities proportional to the counts."""
    if num_rows < 0:
        raise InvalidParameterError("num_rows must be non-negative")
    rng = rng or np.random.default_rng()
    labels = model.items()
    counts = np.asarray([model.count(label) for label in labels], dtype=np.float64)
    if counts.sum() <= 0:
        raise InvalidParameterError("the frequency model has no rows to draw from")
    probabilities = counts / counts.sum()
    indices = rng.choice(len(labels), size=num_rows, p=probabilities)
    if all(isinstance(label, (int, np.integer)) for label in labels):
        label_array = np.asarray(labels, dtype=np.int64)
        return label_array[indices]
    return [labels[index] for index in indices]


def deterministic_round_robin_stream(model: FrequencyModel) -> List[Item]:
    """Interleave items round-robin until each item's count is exhausted.

    A maximally "spread out" arrival order used by a few tests as a
    non-random but also non-adversarial ordering.
    """
    remaining = {item: model.count(item) for item in model.items()}
    rows: List[Item] = []
    while remaining:
        exhausted = []
        for item in remaining:
            rows.append(item)
            remaining[item] -= 1
            if remaining[item] == 0:
                exhausted.append(item)
        for item in exhausted:
            del remaining[item]
    return rows


def concatenate_streams(*streams: Stream) -> Stream:
    """Concatenate several streams preserving their internal order."""
    if not streams:
        return []
    if all(isinstance(stream, np.ndarray) for stream in streams):
        return np.concatenate(streams)
    combined: List[Item] = []
    for stream in streams:
        combined.extend(list(stream))
    return combined


def stream_length(stream: Stream) -> int:
    """Number of rows in a stream (works for arrays and lists alike)."""
    return int(len(stream))


def iterate_rows(stream: Stream) -> Iterator[Item]:
    """Iterate over rows, converting numpy scalars to Python ints for hashing."""
    if isinstance(stream, np.ndarray):
        for value in stream:
            yield int(value)
    else:
        yield from stream
