"""Synthetic ad-impression stream (substitute for the Criteo dataset).

Figure 6 of the paper evaluates 1-way and 2-way marginal estimation on the
Criteo Kaggle display-advertising dataset: 45 million impressions, of which
9 categorical features are used, giving more than 500 million possible
feature tuples.  That dataset is proprietary and not redistributable, so the
reproduction substitutes a synthetic impression generator that preserves the
properties the experiment actually exercises:

* one row per impression (disaggregated data) keyed by a tuple of
  categorical features;
* highly skewed per-feature marginal distributions (Zipf-like), so marginal
  sizes span several orders of magnitude;
* correlations between features (some features are partially determined by
  others), so 2-way marginals are not simply products of 1-way marginals;
* a binary click label correlated with the features, so click-through-rate
  style queries are meaningful.

The generator exposes exact ground truth for every marginal, which is what
the evaluation harness compares sketch estimates against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro._typing import ItemPredicate
from repro.errors import InvalidParameterError

__all__ = ["AdFeatureSpec", "AdClickDataset", "default_criteo_like_features"]

FeatureTuple = Tuple[int, ...]


@dataclass(frozen=True)
class AdFeatureSpec:
    """Specification of one categorical feature.

    Attributes
    ----------
    name:
        Feature name (e.g. ``"advertiser"``).
    cardinality:
        Number of distinct values the feature can take.
    zipf_exponent:
        Skew of the marginal distribution; larger means more skewed.
    parent:
        Optional index of a feature this one is correlated with.
    correlation:
        Probability that this feature's value is derived from the parent's
        value rather than drawn independently.
    """

    name: str
    cardinality: int
    zipf_exponent: float = 1.1
    parent: Optional[int] = None
    correlation: float = 0.0

    def __post_init__(self) -> None:
        if self.cardinality < 2:
            raise InvalidParameterError("cardinality must be at least 2")
        if self.zipf_exponent <= 0:
            raise InvalidParameterError("zipf_exponent must be positive")
        if not 0 <= self.correlation <= 1:
            raise InvalidParameterError("correlation must lie in [0, 1]")


def default_criteo_like_features() -> List[AdFeatureSpec]:
    """The nine-feature layout used by the figure 6 reproduction.

    Cardinalities and skews are chosen to mimic the Criteo categorical
    features used in the paper: a couple of very high-cardinality ids, a few
    mid-cardinality attributes correlated with them, and some small
    demographic-style features.
    """
    return [
        AdFeatureSpec("ad_id", cardinality=20_000, zipf_exponent=1.05),
        AdFeatureSpec("advertiser", cardinality=2_000, zipf_exponent=1.1, parent=0, correlation=0.85),
        AdFeatureSpec("campaign", cardinality=5_000, zipf_exponent=1.1, parent=0, correlation=0.7),
        AdFeatureSpec("product_category", cardinality=300, zipf_exponent=1.2, parent=1, correlation=0.6),
        AdFeatureSpec("publisher", cardinality=1_000, zipf_exponent=1.15),
        AdFeatureSpec("site_section", cardinality=150, zipf_exponent=1.2, parent=4, correlation=0.75),
        AdFeatureSpec("device_type", cardinality=8, zipf_exponent=1.3),
        AdFeatureSpec("geo_region", cardinality=250, zipf_exponent=1.05),
        AdFeatureSpec("user_segment", cardinality=600, zipf_exponent=1.1),
    ]


class AdClickDataset:
    """Synthetic disaggregated ad-impression dataset with exact ground truth.

    Parameters
    ----------
    num_rows:
        Number of impressions to generate.
    features:
        Feature specifications; defaults to :func:`default_criteo_like_features`.
    base_click_rate:
        Overall click-through rate around which per-ad rates are spread.
    seed:
        Seed for the generator; the dataset is fully reproducible given it.

    Example
    -------
    >>> dataset = AdClickDataset(num_rows=1000, seed=7)
    >>> len(list(dataset.impressions())) == 1000
    True
    """

    def __init__(
        self,
        num_rows: int,
        *,
        features: Optional[Sequence[AdFeatureSpec]] = None,
        base_click_rate: float = 0.03,
        seed: Optional[int] = None,
    ) -> None:
        if num_rows < 1:
            raise InvalidParameterError("num_rows must be positive")
        if not 0 < base_click_rate < 1:
            raise InvalidParameterError("base_click_rate must lie in (0, 1)")
        self._specs = list(features) if features is not None else default_criteo_like_features()
        if not self._specs:
            raise InvalidParameterError("at least one feature is required")
        self._num_rows = num_rows
        self._base_click_rate = base_click_rate
        self._rng = np.random.default_rng(seed)
        self._values = self._generate_features()
        self._clicks = self._generate_clicks()

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _zipf_values(self, cardinality: int, exponent: float, size: int) -> np.ndarray:
        """Draw skewed categorical values via inverse-CDF Zipf sampling."""
        ranks = np.arange(1, cardinality + 1, dtype=np.float64)
        weights = ranks**-exponent
        weights /= weights.sum()
        return self._rng.choice(cardinality, size=size, p=weights)

    def _generate_features(self) -> np.ndarray:
        values = np.empty((self._num_rows, len(self._specs)), dtype=np.int64)
        for index, spec in enumerate(self._specs):
            independent = self._zipf_values(spec.cardinality, spec.zipf_exponent, self._num_rows)
            if spec.parent is None or spec.correlation == 0.0:
                values[:, index] = independent
                continue
            if spec.parent >= index:
                raise InvalidParameterError(
                    f"feature {spec.name!r} must have a parent with a smaller index"
                )
            parent_values = values[:, spec.parent]
            # A deterministic-but-scrambled map from parent value to child
            # value induces the correlation: correlated rows inherit the
            # mapped value, the rest keep their independent draw.
            mapped = (parent_values * 2654435761 + index) % spec.cardinality
            correlated_mask = self._rng.random(self._num_rows) < spec.correlation
            values[:, index] = np.where(correlated_mask, mapped, independent)
        return values

    def _generate_clicks(self) -> np.ndarray:
        # Click probability rises for popular ads (low ad_id rank) and is
        # modulated by the device type, mimicking position/format effects.
        ad_rank = self._values[:, 0].astype(np.float64)
        popularity_boost = 1.0 / (1.0 + ad_rank / 50.0)
        device = self._values[:, min(6, len(self._specs) - 1)].astype(np.float64)
        device_factor = 1.0 + 0.2 * (device % 3)
        rates = np.clip(self._base_click_rate * (0.5 + 2.0 * popularity_boost) * device_factor, 0.0, 1.0)
        return self._rng.random(self._num_rows) < rates

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of generated impressions."""
        return self._num_rows

    @property
    def feature_names(self) -> List[str]:
        """Names of the categorical features, in column order."""
        return [spec.name for spec in self._specs]

    @property
    def num_features(self) -> int:
        """Number of categorical features."""
        return len(self._specs)

    def feature_index(self, name: str) -> int:
        """Column index of a feature by name."""
        for index, spec in enumerate(self._specs):
            if spec.name == name:
                return index
        raise InvalidParameterError(f"unknown feature {name!r}")

    def click_count(self) -> int:
        """Total number of clicked impressions."""
        return int(self._clicks.sum())

    def overall_click_rate(self) -> float:
        """Empirical click-through rate of the generated data."""
        return float(self._clicks.mean())

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def impressions(self) -> Iterator[FeatureTuple]:
        """One feature tuple per impression — the disaggregated stream."""
        for row in self._values:
            yield tuple(int(value) for value in row)

    def clicked_impressions(self) -> Iterator[FeatureTuple]:
        """Feature tuples of clicked impressions only (for CTR-style metrics)."""
        for row, clicked in zip(self._values, self._clicks):
            if clicked:
                yield tuple(int(value) for value in row)

    def labeled_impressions(self) -> Iterator[Tuple[FeatureTuple, bool]]:
        """``(features, clicked)`` pairs, one per impression."""
        for row, clicked in zip(self._values, self._clicks):
            yield tuple(int(value) for value in row), bool(clicked)

    # ------------------------------------------------------------------
    # Exact ground truth
    # ------------------------------------------------------------------
    def marginal_counts(self, feature: int) -> Dict[int, int]:
        """Exact impression counts grouped by one feature."""
        self._check_feature(feature)
        values, counts = np.unique(self._values[:, feature], return_counts=True)
        return {int(value): int(count) for value, count in zip(values, counts)}

    def pairwise_counts(self, first: int, second: int) -> Dict[Tuple[int, int], int]:
        """Exact impression counts grouped by a pair of features."""
        self._check_feature(first)
        self._check_feature(second)
        if first == second:
            raise InvalidParameterError("the two features of a 2-way marginal must differ")
        pairs = self._values[:, [first, second]]
        unique, counts = np.unique(pairs, axis=0, return_counts=True)
        return {
            (int(pair[0]), int(pair[1])): int(count)
            for pair, count in zip(unique, counts)
        }

    def tuple_counts(self) -> Dict[FeatureTuple, int]:
        """Exact counts of full feature tuples (the finest unit of analysis)."""
        unique, counts = np.unique(self._values, axis=0, return_counts=True)
        return {
            tuple(int(value) for value in row): int(count)
            for row, count in zip(unique, counts)
        }

    def click_counts_by_feature(self, feature: int) -> Dict[int, int]:
        """Exact click counts grouped by one feature (for CTR features)."""
        self._check_feature(feature)
        clicked_values = self._values[self._clicks, feature]
        values, counts = np.unique(clicked_values, return_counts=True)
        return {int(value): int(count) for value, count in zip(values, counts)}

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------
    def marginal_predicate(self, feature: int, value: int) -> ItemPredicate:
        """Predicate matching impressions whose ``feature`` equals ``value``."""
        self._check_feature(feature)
        return lambda item: item[feature] == value

    def pairwise_predicate(
        self, first: int, first_value: int, second: int, second_value: int
    ) -> ItemPredicate:
        """Predicate for a 2-way marginal cell."""
        self._check_feature(first)
        self._check_feature(second)
        return lambda item: item[first] == first_value and item[second] == second_value

    def _check_feature(self, feature: int) -> None:
        if not 0 <= feature < len(self._specs):
            raise InvalidParameterError(
                f"feature index {feature} out of range [0, {len(self._specs)})"
            )
