"""Epoch partitioning of an item universe (figures 8-10).

The sorted-stream experiments of §7.1 split the distinct items into ten
*epochs* of equal size (by item index in the sorted-by-frequency order) and
query the total count of each epoch.  Because the stream is sorted
ascending, the epochs also correspond to contiguous time ranges of the
stream, which is what makes the ordering pathological: early epochs consist
entirely of rows that arrived long before the sketch's tail stabilized.

:class:`EpochPartition` owns the mapping from item to epoch, the exact
per-epoch totals, and the per-epoch membership predicates the query layer
consumes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro._typing import Item, ItemPredicate
from repro.errors import InvalidParameterError
from repro.streams.frequency import FrequencyModel

__all__ = ["EpochPartition"]


class EpochPartition:
    """Partition of a frequency model's items into contiguous epochs.

    Parameters
    ----------
    model:
        The frequency model whose items are partitioned.
    num_epochs:
        Number of (approximately equal-sized) epochs.
    ascending:
        Partition in ascending-frequency order (the paper's choice for the
        sorted-stream experiments) or descending order.
    """

    def __init__(
        self, model: FrequencyModel, num_epochs: int, *, ascending: bool = True
    ) -> None:
        if num_epochs < 1:
            raise InvalidParameterError("num_epochs must be positive")
        if num_epochs > model.num_items:
            raise InvalidParameterError(
                "cannot split {0} items into {1} epochs".format(model.num_items, num_epochs)
            )
        self._model = model
        self._num_epochs = num_epochs
        ordered = [item for item, _ in model.sorted_items(ascending=ascending)]
        self._epoch_of: Dict[Item, int] = {}
        self._members: List[List[Item]] = [[] for _ in range(num_epochs)]
        for position, item in enumerate(ordered):
            epoch = min(num_epochs - 1, position * num_epochs // len(ordered))
            self._epoch_of[item] = epoch
            self._members[epoch].append(item)

    @property
    def num_epochs(self) -> int:
        """Number of epochs."""
        return self._num_epochs

    @property
    def model(self) -> FrequencyModel:
        """The underlying frequency model."""
        return self._model

    def epoch_of(self, item: Item) -> int:
        """Epoch index of an item.

        Raises
        ------
        KeyError
            If the item is not part of the partitioned model.
        """
        return self._epoch_of[item]

    def members(self, epoch: int) -> Sequence[Item]:
        """Items belonging to one epoch."""
        return list(self._members[epoch])

    def predicate(self, epoch: int) -> ItemPredicate:
        """Membership predicate for one epoch, usable as a subset-sum filter."""
        if not 0 <= epoch < self._num_epochs:
            raise InvalidParameterError(f"epoch must be in [0, {self._num_epochs})")
        membership = set(self._members[epoch])
        return lambda item: item in membership

    def predicates(self) -> List[ItemPredicate]:
        """Membership predicates for every epoch, in order."""
        return [self.predicate(epoch) for epoch in range(self._num_epochs)]

    def true_total(self, epoch: int) -> int:
        """Exact total count of one epoch's items."""
        return self._model.subset_total(self._members[epoch])

    def true_totals(self) -> List[int]:
        """Exact totals for every epoch, in order."""
        return [self.true_total(epoch) for epoch in range(self._num_epochs)]

    def epoch_sizes(self) -> List[int]:
        """Number of distinct items in each epoch."""
        return [len(members) for members in self._members]

    def group_key(self) -> Callable[[Item], int]:
        """A group-by key function mapping each item to its epoch index."""
        return lambda item: self._epoch_of[item]
