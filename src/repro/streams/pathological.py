"""Pathological and adversarial stream orderings (§6.3 and §6.6).

Deterministic Space Saving behaves very differently depending on arrival
order: on i.i.d. streams it is excellent, but any stream where item arrival
rates change over time — partially sorted data, data partitioned by a key and
processed partition by partition, periodic bursts — can make its subset sum
estimates arbitrarily bad.  Unbiased Space Saving remains unbiased on all of
them.  This module constructs the specific orderings the paper uses:

* the two-half stream of figure 7 (two independent i.i.d. halves over
  disjoint item ranges);
* ascending / descending frequency-sorted streams (figures 8-10);
* periodic-burst streams;
* the all-distinct stream;
* the adversarial sequence of Theorem 11 that zeroes out every Deterministic
  Space Saving estimate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._typing import Item
from repro.errors import InvalidParameterError
from repro.streams.frequency import FrequencyModel
from repro.streams.generators import Stream, concatenate_streams, rows_from_counts

__all__ = [
    "two_half_stream",
    "sorted_stream",
    "periodic_burst_stream",
    "all_distinct_stream",
    "adversarial_theorem11_stream",
]


def two_half_stream(
    first_half: FrequencyModel,
    second_half: FrequencyModel,
    *,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Stream, FrequencyModel]:
    """Figure 7's pathological stream: two independent i.i.d. halves.

    The first half contains only ``first_half``'s items and the second half
    only ``second_half``'s; each half is internally shuffled.  The returned
    frequency model is the union, which is the ground truth for queries over
    the whole stream.

    Raises
    ------
    InvalidParameterError
        If the two halves share item labels (the construction requires
        disjoint supports so "items from the first half" is a well-defined
        query).
    """
    overlap = set(first_half.counts) & set(second_half.counts)
    if overlap:
        raise InvalidParameterError(
            f"the two halves must use disjoint item labels; shared: {sorted(map(repr, overlap))[:5]}"
        )
    rng = rng or np.random.default_rng()
    first_rows = rows_from_counts(first_half, order="shuffled", rng=rng)
    second_rows = rows_from_counts(second_half, order="shuffled", rng=rng)
    combined_counts: Dict[Item, int] = dict(first_half.counts)
    combined_counts.update(second_half.counts)
    combined = FrequencyModel(
        counts=combined_counts,
        name=f"two-half({first_half.name} | {second_half.name})",
    )
    return concatenate_streams(first_rows, second_rows), combined


def sorted_stream(model: FrequencyModel, *, ascending: bool = True) -> Stream:
    """Rows grouped by item, items ordered by frequency.

    Ascending order (rare items first, the most frequent item last) is the
    worst case for Unbiased Space Saving studied in §7.1; descending order is
    its best case (every frequent item is seen early and never displaced).
    """
    order = "sorted_ascending" if ascending else "sorted_descending"
    return rows_from_counts(model, order=order)


def periodic_burst_stream(
    burst_item: Item,
    burst_size: int,
    num_bursts: int,
    background: FrequencyModel,
    *,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[List[Item], FrequencyModel]:
    """A stream where one item arrives in periodic bursts.

    Between bursts the burst item is completely absent, so its arrival rate
    oscillates above and below the guaranteed-inclusion threshold — the
    "periodic bursts" pathology of §6.3.  Background rows are split evenly
    between bursts.
    """
    if burst_size < 1 or num_bursts < 1:
        raise InvalidParameterError("burst_size and num_bursts must be positive")
    if burst_item in background.counts:
        raise InvalidParameterError("burst_item must not appear in the background model")
    rng = rng or np.random.default_rng()
    background_rows = list(rows_from_counts(background, order="shuffled", rng=rng))
    segment_length = max(1, len(background_rows) // num_bursts)
    rows: List[Item] = []
    for burst_index in range(num_bursts):
        start = burst_index * segment_length
        end = start + segment_length if burst_index < num_bursts - 1 else len(background_rows)
        rows.extend(background_rows[start:end])
        rows.extend([burst_item] * burst_size)
    combined_counts: Dict[Item, int] = dict(background.counts)
    combined_counts[burst_item] = burst_size * num_bursts
    combined = FrequencyModel(
        counts=combined_counts, name=f"periodic-burst({background.name})"
    )
    return rows, combined


def all_distinct_stream(num_rows: int, *, label_offset: int = 0) -> Tuple[Stream, FrequencyModel]:
    """Every row is a new item — the most extreme pathological sequence.

    Deterministic Space Saving degenerates to "the last ``m`` items seen";
    Unbiased Space Saving still returns an (approximately uniform) random
    sample with correct expected counts.
    """
    if num_rows < 1:
        raise InvalidParameterError("num_rows must be positive")
    labels = np.arange(label_offset + 1, label_offset + num_rows + 1, dtype=np.int64)
    model = FrequencyModel(
        counts={int(label): 1 for label in labels}, name="all-distinct"
    )
    return labels, model


def adversarial_theorem11_stream(
    model: FrequencyModel,
    num_bins: int,
    *,
    noise_label_offset: Optional[int] = None,
) -> Tuple[List[Item], FrequencyModel]:
    """The Theorem 11 adversarial sequence.

    Appends ``n_tot`` distinct noise items after the real data (sorted most
    frequent first), which forces every Deterministic Space Saving estimate
    of the real items to zero provided each real count is below
    ``2·n_tot/m``.  Unbiased Space Saving degrades gracefully — the noise
    merely halves its effective sample size.

    Returns the full row sequence and a frequency model over *all* items
    (real and noise) for ground-truth queries.
    """
    if num_bins < 1:
        raise InvalidParameterError("num_bins must be positive")
    total = model.total
    limit = 2 * total / num_bins
    for item, count in model.counts.items():
        if count >= limit:
            raise InvalidParameterError(
                f"item {item!r} has count {count} >= 2·n_tot/m = {limit:.1f}; "
                "Theorem 11 requires all counts below that threshold"
            )
    if noise_label_offset is None:
        numeric_labels = [
            label for label in model.counts if isinstance(label, (int, np.integer))
        ]
        noise_label_offset = (max(numeric_labels) if numeric_labels else 0) + 1
    rows: List[Item] = []
    for item, count in model.sorted_items(ascending=False):
        rows.extend([item] * count)
    noise_labels = range(noise_label_offset, noise_label_offset + total)
    rows.extend(noise_labels)
    combined_counts: Dict[Item, int] = dict(model.counts)
    for label in noise_labels:
        combined_counts[label] = 1
    combined = FrequencyModel(counts=combined_counts, name="theorem-11-adversarial")
    return rows, combined
