"""Item frequency models used by the synthetic experiments.

Section 7 of the paper draws per-item counts from a *discretized Weibull*
distribution — a generalization of the geometric distribution whose shape
parameter controls how heavy the tail is — using the inverse-CDF method on a
regular grid of 1000 quantiles rather than independent uniforms, "for more
easily reproducible behavior".  The same construction is implemented here,
together with geometric, Zipf and uniform alternatives used by ablation
benchmarks.

A :class:`FrequencyModel` is simply a mapping from item label to its true
count plus the exact ground-truth queries the evaluation harness needs
(totals, subset sums, per-item relative frequencies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro._typing import Item, ItemPredicate
from repro.errors import InvalidParameterError

__all__ = [
    "FrequencyModel",
    "weibull_counts",
    "geometric_counts",
    "zipf_counts",
    "uniform_counts",
    "rescale_to_total",
    "scaled_weibull_counts",
]


@dataclass(frozen=True)
class FrequencyModel:
    """True per-item counts together with exact ground-truth queries.

    Attributes
    ----------
    counts:
        Mapping from item label to its exact count.
    name:
        Human-readable description used by the reporting layer.
    """

    counts: Dict[Item, int]
    name: str = "frequency-model"
    _total: int = field(init=False, repr=False, default=0)

    def __post_init__(self) -> None:
        for item, count in self.counts.items():
            if count < 0:
                raise InvalidParameterError(f"negative count for item {item!r}")
        object.__setattr__(self, "_total", int(sum(self.counts.values())))

    # -- exact queries ----------------------------------------------------
    @property
    def total(self) -> int:
        """Total number of rows implied by the model."""
        return self._total

    @property
    def num_items(self) -> int:
        """Number of distinct items (including zero-count items, if any)."""
        return len(self.counts)

    def items(self) -> List[Item]:
        """Item labels in insertion order."""
        return list(self.counts)

    def count(self, item: Item) -> int:
        """Exact count for one item (0 when unknown)."""
        return int(self.counts.get(item, 0))

    def subset_sum(self, predicate: ItemPredicate) -> int:
        """Exact subset sum over items matching ``predicate``."""
        return int(sum(count for item, count in self.counts.items() if predicate(item)))

    def subset_total(self, items: Iterable[Item]) -> int:
        """Exact total over an explicit collection of items."""
        wanted = set(items)
        return int(sum(count for item, count in self.counts.items() if item in wanted))

    def relative_frequency(self, item: Item) -> float:
        """Exact relative frequency ``n_i / n_tot``."""
        if self._total == 0:
            return 0.0
        return self.count(item) / self._total

    def sorted_items(self, ascending: bool = False) -> List[Tuple[Item, int]]:
        """Items sorted by count (descending by default)."""
        return sorted(
            self.counts.items(), key=lambda kv: kv[1], reverse=not ascending
        )

    def skew_summary(self) -> Dict[str, float]:
        """Mean, standard deviation and their ratio — the skew diagnostic of §6.2."""
        values = np.fromiter(
            (count for count in self.counts.values()), dtype=np.float64
        )
        if values.size == 0:
            return {"mean": 0.0, "std": 0.0, "cv": 0.0}
        mean = float(values.mean())
        std = float(values.std())
        return {"mean": mean, "std": std, "cv": std / mean if mean else 0.0}


def _quantile_grid(num_items: int) -> np.ndarray:
    """The regular grid of quantiles used by the paper's inverse-CDF draws."""
    if num_items < 1:
        raise InvalidParameterError("num_items must be a positive integer")
    return (np.arange(1, num_items + 1) - 0.5) / num_items


def weibull_counts(
    num_items: int = 1000,
    scale: float = 5e5,
    shape: float = 0.15,
    *,
    grid: bool = True,
    rng: Optional[np.random.Generator] = None,
    min_count: int = 1,
) -> FrequencyModel:
    """Discretized (rounded) Weibull counts, the paper's main workload.

    ``scale`` and ``shape`` are the Weibull parameters written
    ``Weibull(5e5, 0.15)`` in §7; smaller shapes give heavier tails (greater
    skew).  With ``grid=True`` the counts come from the inverse CDF on a
    regular grid of ``num_items`` quantiles (the paper's reproducibility
    device); otherwise independent uniforms drawn from ``rng`` are used.
    """
    if scale <= 0 or shape <= 0:
        raise InvalidParameterError("scale and shape must be positive")
    if grid:
        quantiles = _quantile_grid(num_items)
    else:
        rng = rng or np.random.default_rng()
        quantiles = rng.uniform(size=num_items)
    counts = np.rint(scale * (-np.log1p(-quantiles)) ** (1.0 / shape)).astype(np.int64)
    counts = np.maximum(counts, min_count)
    labels = range(1, num_items + 1)
    return FrequencyModel(
        counts={label: int(count) for label, count in zip(labels, counts)},
        name=f"weibull(scale={scale:g}, shape={shape:g})",
    )


def geometric_counts(
    num_items: int = 1000,
    success_probability: float = 0.03,
    *,
    grid: bool = True,
    rng: Optional[np.random.Generator] = None,
    min_count: int = 1,
) -> FrequencyModel:
    """Discretized geometric counts (the ``Geometric(0.03)`` panel of figure 3)."""
    if not 0 < success_probability < 1:
        raise InvalidParameterError("success_probability must lie in (0, 1)")
    if grid:
        quantiles = _quantile_grid(num_items)
    else:
        rng = rng or np.random.default_rng()
        quantiles = rng.uniform(size=num_items)
    counts = np.ceil(
        np.log1p(-quantiles) / math.log(1.0 - success_probability)
    ).astype(np.int64)
    counts = np.maximum(counts, min_count)
    labels = range(1, num_items + 1)
    return FrequencyModel(
        counts={label: int(count) for label, count in zip(labels, counts)},
        name=f"geometric(p={success_probability:g})",
    )


def zipf_counts(
    num_items: int = 1000,
    exponent: float = 1.1,
    total: int = 1_000_000,
    *,
    min_count: int = 1,
) -> FrequencyModel:
    """Zipfian counts with the given exponent, scaled to roughly ``total`` rows."""
    if exponent <= 0:
        raise InvalidParameterError("exponent must be positive")
    if total < num_items:
        raise InvalidParameterError("total must be at least num_items")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    counts = np.maximum(np.rint(weights * total).astype(np.int64), min_count)
    labels = range(1, num_items + 1)
    return FrequencyModel(
        counts={label: int(count) for label, count in zip(labels, counts)},
        name=f"zipf(s={exponent:g})",
    )


def uniform_counts(num_items: int = 1000, count: int = 100) -> FrequencyModel:
    """Every item occurs exactly ``count`` times (the no-skew control)."""
    if count < 0:
        raise InvalidParameterError("count must be non-negative")
    return FrequencyModel(
        counts={label: count for label in range(1, num_items + 1)},
        name=f"uniform(count={count})",
    )


def rescale_to_total(
    model: FrequencyModel, target_total: int, *, min_count: int = 1
) -> FrequencyModel:
    """Rescale a model multiplicatively so its total is roughly ``target_total``.

    The paper's experiments run streams of up to 10⁹ rows; the reproduction
    keeps the *relative* shape of the count distribution (who is frequent,
    how heavy the tail is) while shrinking the absolute total to something a
    pure-Python benchmark can stream.  Counts are scaled by
    ``target_total / model.total``, rounded, and floored at ``min_count`` so
    no item disappears.
    """
    if target_total < model.num_items * min_count:
        raise InvalidParameterError(
            "target_total is too small to give every item the minimum count"
        )
    if model.total == 0:
        raise InvalidParameterError("cannot rescale a model with zero total")
    factor = target_total / model.total
    rescaled = {
        item: max(min_count, int(round(count * factor)))
        for item, count in model.counts.items()
    }
    return FrequencyModel(
        counts=rescaled, name=f"{model.name} rescaled(total≈{target_total:g})"
    )


def scaled_weibull_counts(
    num_items: int = 1000,
    shape: float = 0.15,
    target_total: int = 200_000,
    *,
    min_count: int = 1,
) -> FrequencyModel:
    """Weibull-shaped counts rescaled to a laptop-sized total.

    Keeps the paper's shape parameter (0.15 for the most skewed panel, 0.32
    for the moderate one) while making the stream length configurable, so the
    qualitative comparisons survive the scale-down.  The rescaling happens on
    the continuous Weibull quantiles (before any rounding) so the relative
    shape of the tail is preserved.
    """
    if shape <= 0:
        raise InvalidParameterError("shape must be positive")
    if target_total < num_items * min_count:
        raise InvalidParameterError(
            "target_total is too small to give every item the minimum count"
        )
    quantiles = _quantile_grid(num_items)
    weights = (-np.log1p(-quantiles)) ** (1.0 / shape)
    counts = np.maximum(
        np.rint(weights * (target_total / weights.sum())).astype(np.int64), min_count
    )
    labels = range(1, num_items + 1)
    return FrequencyModel(
        counts={label: int(count) for label, count in zip(labels, counts)},
        name=f"weibull(shape={shape:g}, total≈{target_total:g})",
    )
