"""Stream substrates: frequency models, row generators, pathological orderings,
epoch partitions, and the synthetic ad-click dataset.

Everything the paper's experiments consume as input lives here, with exact
ground truth available alongside every generated stream so that estimation
error can be measured without a second pass over the data.
"""

from repro.streams.adclick import (
    AdClickDataset,
    AdFeatureSpec,
    default_criteo_like_features,
)
from repro.streams.epochs import EpochPartition
from repro.streams.frequency import (
    FrequencyModel,
    geometric_counts,
    uniform_counts,
    weibull_counts,
    zipf_counts,
)
from repro.streams.generators import (
    BurstSpec,
    bursty_soak_stream,
    chunk_stream,
    concatenate_streams,
    deterministic_round_robin_stream,
    exchangeable_stream,
    iid_stream,
    iterate_rows,
    rows_from_counts,
    stream_length,
    timestamp_rows,
    timestamped_adclick_stream,
    timestamped_zipf_stream,
)
from repro.streams.pathological import (
    adversarial_theorem11_stream,
    all_distinct_stream,
    periodic_burst_stream,
    sorted_stream,
    two_half_stream,
)

__all__ = [
    "AdClickDataset",
    "AdFeatureSpec",
    "default_criteo_like_features",
    "EpochPartition",
    "FrequencyModel",
    "geometric_counts",
    "uniform_counts",
    "weibull_counts",
    "zipf_counts",
    "BurstSpec",
    "bursty_soak_stream",
    "chunk_stream",
    "concatenate_streams",
    "deterministic_round_robin_stream",
    "exchangeable_stream",
    "iid_stream",
    "iterate_rows",
    "rows_from_counts",
    "stream_length",
    "timestamp_rows",
    "timestamped_adclick_stream",
    "timestamped_zipf_stream",
    "adversarial_theorem11_stream",
    "all_distinct_stream",
    "periodic_burst_stream",
    "sorted_stream",
    "two_half_stream",
]
