"""Probability proportional to size (PPS) sampling machinery.

PPS sampling is the optimal design for subset sum estimation (§5.1): when
inclusion probabilities are proportional to item values, every
Horvitz-Thompson term is constant and the total estimate has zero variance.
With skewed data exact proportionality is impossible for sample sizes above
one, so the standard design uses *thresholded* probabilities

    π_i = min(1, x_i / τ)

with the threshold ``τ`` chosen so the expected sample size equals the
budget ``k``.  This module provides:

* :func:`pps_threshold` / :func:`inclusion_probabilities` — solve for ``τ``
  and the resulting probabilities.
* :func:`poisson_pps_sample` — independent Bernoulli(π_i) sampling.
* :func:`splitting_pps_sample` — a fixed-size sample with exactly the target
  inclusion probabilities via the pivotal method, an instance of the
  Deville-Tillé splitting procedure referenced in §5.1/§5.5.
* :func:`systematic_pps_sample` — fixed-size systematic PPS sampling.

These are used three ways in the reproduction: as the theoretical yardstick
for the sketch's empirical inclusion probabilities (figure 2), as the
reducer inside the unbiased merge operation (§5.5), and as the "gold
standard" variance reference (figure 9).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro._typing import Item
from repro.errors import InvalidParameterError
from repro.sampling.horvitz_thompson import SampledItem, WeightedSample

__all__ = [
    "pps_threshold",
    "inclusion_probabilities",
    "expected_sample_size",
    "poisson_pps_sample",
    "splitting_pps_sample",
    "systematic_pps_sample",
]


def _validate_weights(weights: Dict[Item, float]) -> None:
    if not weights:
        raise InvalidParameterError("weights must be a non-empty mapping")
    for item, weight in weights.items():
        if weight < 0:
            raise InvalidParameterError(f"negative weight for {item!r}")


def pps_threshold(weights: Dict[Item, float], sample_size: int) -> float:
    """Solve for the threshold ``τ`` with ``Σ_i min(1, x_i/τ) = k``.

    When ``k`` is at least the number of positive-weight items every item is
    included with probability 1 and the threshold is 0 by convention.

    The solver sorts the weights once and then finds, in a single linear
    scan, the number of "large" items that are included with probability 1;
    the remaining probability mass determines ``τ`` in closed form.
    """
    _validate_weights(weights)
    if sample_size < 1:
        raise InvalidParameterError("sample_size must be at least 1")
    positive = sorted((w for w in weights.values() if w > 0), reverse=True)
    if len(positive) <= sample_size:
        return 0.0
    total = sum(positive)
    # With the j largest items taken with probability 1, the threshold that
    # spends the remaining budget on the tail is tau = tail_sum / (k - j).
    # The correct j is the smallest one for which the j-th largest weight
    # exceeds that threshold's cutoff.
    tail_sum = total
    for num_certain, weight in enumerate(positive):
        remaining_budget = sample_size - num_certain
        if remaining_budget <= 0:
            # Budget exhausted by certainty items; threshold sits at the
            # smallest certainty weight so that no tail item can enter.
            return positive[sample_size - 1]
        tau = tail_sum / remaining_budget
        if weight <= tau:
            return tau
        tail_sum -= weight
    # Unreachable: len(positive) > sample_size guarantees an interior return.
    raise AssertionError("pps_threshold failed to converge")


def inclusion_probabilities(
    weights: Dict[Item, float], sample_size: int
) -> Dict[Item, float]:
    """Thresholded PPS inclusion probabilities ``π_i = min(1, x_i/τ)``."""
    tau = pps_threshold(weights, sample_size)
    if tau == 0.0:
        return {item: (1.0 if weight > 0 else 0.0) for item, weight in weights.items()}
    return {
        item: min(1.0, weight / tau) if weight > 0 else 0.0
        for item, weight in weights.items()
    }


def expected_sample_size(probabilities: Dict[Item, float]) -> float:
    """Sum of inclusion probabilities (the expected number of sampled items)."""
    return float(sum(probabilities.values()))


def poisson_pps_sample(
    weights: Dict[Item, float],
    sample_size: int,
    *,
    rng: Optional[random.Random] = None,
) -> WeightedSample:
    """Draw a Poisson PPS sample with expected size ``sample_size``.

    Each item is included independently with probability ``π_i``; the
    realized sample size is random with mean ``sample_size``.
    """
    rng = rng or random.Random()
    probabilities = inclusion_probabilities(weights, sample_size)
    sample = WeightedSample()
    for item, weight in weights.items():
        pi = probabilities[item]
        if pi > 0 and rng.random() < pi:
            sample.add(SampledItem(item, weight, pi))
    return sample


def splitting_pps_sample(
    weights: Dict[Item, float],
    sample_size: int,
    *,
    rng: Optional[random.Random] = None,
) -> WeightedSample:
    """Fixed-size PPS sample via the pivotal (splitting) method.

    The pivotal method is a member of the Deville-Tillé splitting family: it
    repeatedly takes two units whose inclusion probabilities are strictly
    between 0 and 1 and "splits" the target distribution so that one of them
    is resolved to 0 or 1, preserving the marginal probabilities exactly.
    The result is a sample whose size is fixed (when ``Σ π_i`` is integral,
    which thresholded PPS probabilities guarantee by construction) and whose
    inclusion probabilities match the target exactly.
    """
    rng = rng or random.Random()
    probabilities = inclusion_probabilities(weights, sample_size)
    # Work with a mutable copy; resolve probabilities pairwise.
    pending = [
        [item, pi] for item, pi in probabilities.items() if 0.0 < pi < 1.0
    ]
    resolved: Dict[Item, float] = {
        item: pi for item, pi in probabilities.items() if pi >= 1.0
    }
    index = 0
    while index + 1 < len(pending):
        first, second = pending[index], pending[index + 1]
        pi_a, pi_b = first[1], second[1]
        total = pi_a + pi_b
        if total < 1.0:
            # One of the two is driven to zero; the other absorbs the mass.
            if rng.random() < pi_a / total:
                first[1], second[1] = total, 0.0
            else:
                first[1], second[1] = 0.0, total
        else:
            # One of the two is driven to one; the other keeps the remainder.
            excess = total - 1.0
            if rng.random() < (1.0 - pi_b) / (2.0 - total):
                first[1], second[1] = 1.0, excess
            else:
                first[1], second[1] = excess, 1.0
        for unit in (first, second):
            if unit[1] <= 0.0 or unit[1] >= 1.0:
                if unit[1] >= 1.0:
                    resolved[unit[0]] = 1.0
        # Compact the pending list: keep only still-unresolved units.
        pending = [unit for unit in pending if 0.0 < unit[1] < 1.0]
        index = 0
    # At most one unit can remain unresolved when the target size is not
    # integral; resolve it by a Bernoulli draw to stay unbiased.
    for item, pi in pending:
        if rng.random() < pi:
            resolved[item] = 1.0
    sample = WeightedSample()
    for item in resolved:
        sample.add(SampledItem(item, weights[item], probabilities[item]))
    return sample


def systematic_pps_sample(
    weights: Dict[Item, float],
    sample_size: int,
    *,
    rng: Optional[random.Random] = None,
    order: Optional[Sequence[Item]] = None,
) -> WeightedSample:
    """Fixed-size systematic PPS sample.

    Items are laid out on a line with segment lengths equal to their
    inclusion probabilities; a random start in ``[0, 1)`` followed by unit
    strides selects the sample.  Marginal inclusion probabilities are exact;
    joint probabilities depend on the ordering, which callers can randomize
    by passing a shuffled ``order``.
    """
    rng = rng or random.Random()
    probabilities = inclusion_probabilities(weights, sample_size)
    if order is None:
        order = list(weights)
        rng.shuffle(order)
    start = rng.random()
    sample = WeightedSample()
    cumulative = 0.0
    next_tick = start
    for item in order:
        pi = probabilities[item]
        if pi <= 0:
            continue
        cumulative += pi
        while next_tick < cumulative - 1e-12:
            sample.add(SampledItem(item, weights[item], min(1.0, pi)))
            next_tick += 1.0
    return sample
