"""Horvitz-Thompson estimation for unequal-probability samples.

Any sampling design — PPS, priority, bottom-k, or the implicit design
realized by Unbiased Space Saving — can produce an unbiased subset sum
estimate by weighting each sampled value by the inverse of its inclusion
probability (§5.1 of the paper):

    Ŝ = Σ_i  x_i Z_i / π_i

The classes here hold a sample together with its (pseudo) inclusion
probabilities and implement the estimator, its variance estimate under
Poisson sampling, and convenience subset queries.  The baselines in
:mod:`repro.sampling` all return a :class:`WeightedSample`, which makes the
evaluation harness agnostic about which design produced the sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro._typing import Item, ItemPredicate
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError

__all__ = ["SampledItem", "WeightedSample"]


@dataclass(frozen=True)
class SampledItem:
    """A single sampled unit with its value and inclusion probability.

    Attributes
    ----------
    item:
        The sampled key (ad id, user, IP pair, ...).
    value:
        The unit's true aggregate value ``x_i`` (known because the sample was
        drawn from pre-aggregated data, or reconstructed exactly as in
        bottom-k sampling).
    inclusion_probability:
        ``π_i = P(Z_i = 1)`` under the sampling design; pseudo-inclusion
        probabilities (e.g. priority sampling's ``min(1, x_i/τ)``) are also
        accepted, as the paper does.
    """

    item: Item
    value: float
    inclusion_probability: float

    def __post_init__(self) -> None:
        if not 0 < self.inclusion_probability <= 1:
            raise InvalidParameterError(
                "inclusion probability must lie in (0, 1], got "
                f"{self.inclusion_probability!r}"
            )
        if self.value < 0:
            raise InvalidParameterError("sampled values must be non-negative")

    @property
    def adjusted_value(self) -> float:
        """The Horvitz-Thompson adjusted value ``x_i / π_i``."""
        return self.value / self.inclusion_probability


class WeightedSample:
    """A collection of :class:`SampledItem` supporting subset sum estimation.

    Example
    -------
    >>> sample = WeightedSample(
    ...     [SampledItem("a", 10.0, 1.0), SampledItem("b", 2.0, 0.5)]
    ... )
    >>> sample.total_estimate()
    14.0
    >>> sample.subset_sum(lambda item: item == "b")
    4.0
    """

    def __init__(self, items: Iterable[SampledItem] = ()) -> None:
        self._items: Dict[Item, SampledItem] = {}
        for sampled in items:
            self.add(sampled)

    # -- construction ---------------------------------------------------
    def add(self, sampled: SampledItem) -> None:
        """Add one sampled unit; re-adding a key overwrites the previous entry."""
        self._items[sampled.item] = sampled

    @classmethod
    def from_mappings(
        cls,
        values: Dict[Item, float],
        inclusion_probabilities: Dict[Item, float],
    ) -> "WeightedSample":
        """Build a sample from parallel ``item -> value`` / ``item -> π`` maps."""
        missing = set(values) - set(inclusion_probabilities)
        if missing:
            raise InvalidParameterError(
                f"missing inclusion probabilities for {sorted(map(repr, missing))[:5]}"
            )
        sample = cls()
        for item, value in values.items():
            sample.add(SampledItem(item, value, inclusion_probabilities[item]))
        return sample

    # -- container protocol ----------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[SampledItem]:
        return iter(self._items.values())

    def items(self) -> List[SampledItem]:
        """All sampled units as a list."""
        return list(self._items.values())

    def get(self, item: Item) -> Optional[SampledItem]:
        """Return the sampled unit for ``item`` or ``None`` if it was not drawn."""
        return self._items.get(item)

    # -- estimation -------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Horvitz-Thompson estimate of a single item's value (0 if not drawn)."""
        sampled = self._items.get(item)
        return 0.0 if sampled is None else sampled.adjusted_value

    def estimates(self) -> Dict[Item, float]:
        """All adjusted values keyed by item."""
        return {item: sampled.adjusted_value for item, sampled in self._items.items()}

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Unbiased estimate of the subset sum over items matching ``predicate``."""
        return float(
            sum(s.adjusted_value for s in self._items.values() if predicate(s.item))
        )

    def total_estimate(self) -> float:
        """Estimate of the grand total (subset sum with an always-true filter)."""
        return float(sum(s.adjusted_value for s in self._items.values()))

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum with the Poisson-design Horvitz-Thompson variance estimate.

        ``Var̂(Ŝ) = Σ_{i ∈ sample ∩ S} x_i² (1 − π_i) / π_i²``.  For fixed-size
        designs this is conservative (it ignores the negative correlation
        introduced by the fixed size), mirroring how the paper treats priority
        samples as approximately independent Bernoulli draws.
        """
        estimate = 0.0
        variance = 0.0
        for sampled in self._items.values():
            if not predicate(sampled.item):
                continue
            estimate += sampled.adjusted_value
            pi = sampled.inclusion_probability
            variance += sampled.value**2 * (1.0 - pi) / (pi * pi)
        return EstimateWithError(estimate=estimate, variance=variance)

    def mean_adjusted_value(self) -> float:
        """Average adjusted value across the sample (0 for an empty sample)."""
        if not self._items:
            return 0.0
        return self.total_estimate() / len(self._items)

    def effective_sample_size(self) -> float:
        """Kish effective sample size ``(Σ w)² / Σ w²`` of the adjusted values.

        A diagnostic for how evenly the sampling design spreads estimation
        weight; equals ``len(sample)`` when all adjusted values are equal
        (a perfect PPS sample).
        """
        weights = [s.adjusted_value for s in self._items.values() if s.adjusted_value > 0]
        if not weights:
            return 0.0
        total = sum(weights)
        total_sq = sum(w * w for w in weights)
        if total_sq == 0:
            return 0.0
        return total * total / total_sq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedSample(size={len(self._items)}, total≈{self.total_estimate():.4g})"


def _check_finite(value: float, name: str) -> None:
    """Internal guard shared by the sampling modules."""
    if not math.isfinite(value):
        raise InvalidParameterError(f"{name} must be finite, got {value!r}")
