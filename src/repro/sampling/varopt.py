"""VarOpt-style fixed-size unbiased weighted sampling.

VarOpt (Cohen, Duffield, Kaplan, Lund, Thorup) draws a *fixed-size* sample
of weighted items that is unbiased for every subset sum and has optimal
average variance.  The batch form implemented here is the reduction engine
offered as an alternative to Poisson/priority reduction in the unbiased
merge operation (§5.5 of the paper): given more than ``k`` weighted bins it
returns exactly ``k`` bins whose adjusted weights preserve all expectations.

The construction mirrors thresholded PPS sampling: a threshold ``τ`` is
chosen so that items above it are kept exactly (inclusion probability 1) and
items below it are kept with probability ``w_i / τ``; the number of kept
small items is made *exactly* equal to the remaining budget by using
systematic sampling over the small items' probabilities, and every kept
small item is assigned the adjusted weight ``τ``.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional

from repro._typing import Item
from repro.core.batching import collapse_batch
from repro.errors import InvalidParameterError
from repro.sampling.horvitz_thompson import SampledItem, WeightedSample
from repro.sampling.pps import inclusion_probabilities, pps_threshold

__all__ = ["varopt_sample", "varopt_sample_batch", "varopt_reduce"]


def varopt_sample(
    weights: Dict[Item, float],
    sample_size: int,
    *,
    rng: Optional[random.Random] = None,
) -> WeightedSample:
    """Draw a fixed-size unbiased sample of ``sample_size`` weighted items.

    Items with weight above the PPS threshold are kept with their exact
    weight; the remaining slots are filled from the small items by
    systematic sampling on their inclusion probabilities, each kept small
    item receiving the adjusted weight ``τ``.
    """
    if sample_size < 1:
        raise InvalidParameterError("sample_size must be at least 1")
    rng = rng or random.Random()
    positive = {item: w for item, w in weights.items() if w > 0}
    if len(positive) <= sample_size:
        sample = WeightedSample()
        for item, weight in positive.items():
            sample.add(SampledItem(item, weight, 1.0))
        return sample
    tau = pps_threshold(positive, sample_size)
    probabilities = inclusion_probabilities(positive, sample_size)
    certain = {item: w for item, w in positive.items() if probabilities[item] >= 1.0}
    small = {item: w for item, w in positive.items() if probabilities[item] < 1.0}
    sample = WeightedSample()
    for item, weight in certain.items():
        sample.add(SampledItem(item, weight, 1.0))
    # Systematic sampling over the small items gives exactly the residual
    # budget in expectation and (up to the integrality of the probabilities)
    # in realization, while preserving each marginal probability.
    order = list(small)
    rng.shuffle(order)
    start = rng.random()
    cumulative = 0.0
    next_tick = start
    for item in order:
        pi = probabilities[item]
        cumulative += pi
        if next_tick < cumulative - 1e-12:
            # Kept small items carry the Horvitz-Thompson adjusted weight τ.
            sample.add(SampledItem(item, small[item], pi))
            next_tick += 1.0
    del tau  # τ is implicit in the probabilities; kept for readability above.
    return sample


def varopt_sample_batch(
    items: Iterable[Item],
    weights: Optional[Iterable[float]] = None,
    *,
    sample_size: int,
    rng: Optional[random.Random] = None,
) -> WeightedSample:
    """Draw a VarOpt sample directly from disaggregated rows.

    The rows are pre-aggregated with
    :func:`repro.core.batching.collapse_batch` (each distinct item's weights
    summed) and then passed to :func:`varopt_sample` — the batch-ingestion
    entry point for the VarOpt layer.
    """
    unique, collapsed, _, __ = collapse_batch(items, weights)
    return varopt_sample(dict(zip(unique, collapsed)), sample_size, rng=rng)


def varopt_reduce(
    weights: Dict[Item, float],
    sample_size: int,
    *,
    rng: Optional[random.Random] = None,
) -> Dict[Item, float]:
    """Reduce a weight map to at most ``sample_size`` entries, unbiasedly.

    Returns the adjusted weights (``w_i`` for certainty items, ``τ`` for
    retained small items) — the form the unbiased merge operation needs.
    """
    sample = varopt_sample(weights, sample_size, rng=rng)
    return {sampled.item: sampled.adjusted_value for sampled in sample}
