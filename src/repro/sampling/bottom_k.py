"""Bottom-k sketch: uniform sampling of items from a disaggregated stream.

The bottom-k sketch (Cohen & Kaplan 2007) assigns every distinct item a
stable pseudo-random rank in ``(0, 1)`` and keeps the ``k`` items with the
smallest ranks.  Because the rank depends only on the item, an item that
belongs to the final sample is in the sketch from its first occurrence
onwards, so the sketch can maintain its *exact* aggregate count even though
the stream is disaggregated.

Subset sums are estimated with the standard conditioning trick: conditional
on the ``(k+1)``-th smallest rank ``r``, each retained item was included
independently with probability ``r``, so the Horvitz-Thompson adjusted count
is ``count / r``.  Uniform item sampling ignores item sizes entirely, which
is why the paper (figure 4) shows it performing orders of magnitude worse
than Unbiased Space Saving on skewed data — it is reproduced here as that
baseline.
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import Dict, Optional, Tuple

import numpy as np

from repro._typing import Item, ItemPredicate
from repro.core.batching import collapse_batch, iter_weighted_rows
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError
from repro.io.codec import decode_item, encode_item
from repro.io.serializable import SerializableSketch
from repro.sampling.horvitz_thompson import SampledItem, WeightedSample

__all__ = ["BottomKSketch", "stable_rank"]

_TWO_64 = float(2**64)


def stable_rank(item: Item, seed: int) -> float:
    """Deterministic pseudo-random rank in ``(0, 1)`` for an item.

    The rank is derived from a salted BLAKE2b hash of the item's ``repr`` so
    that it is stable across processes and independent of Python's randomized
    ``hash()``.  Distinct seeds give independent rank assignments, which the
    evaluation harness uses to draw replicate samples.
    """
    digest = hashlib.blake2b(
        repr(item).encode("utf-8"), digest_size=8, key=seed.to_bytes(8, "little", signed=False)
    ).digest()
    value = struct.unpack("<Q", digest)[0]
    # Map to (0, 1): never exactly 0 so the rank can be used as a divisor.
    return (value + 1) / (_TWO_64 + 2)


class BottomKSketch(SerializableSketch):
    """Uniform item sample with exact per-item counts.

    Parameters
    ----------
    capacity:
        The sample size ``k``.
    seed:
        Seed for the stable rank function (and nothing else — the sketch is
        otherwise deterministic given the stream).

    Example
    -------
    >>> sketch = BottomKSketch(capacity=2, seed=1)
    >>> for row in ["a", "b", "a", "c", "a"]:
    ...     sketch.update(row)
    >>> sketch.rows_processed
    5
    """

    def __init__(self, capacity: int, *, seed: Optional[int] = None) -> None:
        if capacity < 1:
            raise InvalidParameterError("capacity must be a positive integer")
        self._capacity = capacity
        self._seed = seed if seed is not None else random.SystemRandom().randrange(2**32)
        # item -> (rank, accumulated weight)
        self._bins: Dict[Item, Tuple[float, float]] = {}
        # Smallest rank ever evicted; the conditioning threshold r.
        self._threshold_rank = float("inf")
        self._rows_processed = 0
        self._total_weight = 0.0
        self._distinct_seen = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of retained items ``k``."""
        return self._capacity

    @property
    def rows_processed(self) -> int:
        """Number of raw rows consumed."""
        return self._rows_processed

    @property
    def total_weight(self) -> float:
        """Total ingested weight."""
        return self._total_weight

    @property
    def distinct_items_seen(self) -> int:
        """Number of distinct items encountered so far (exactly tracked)."""
        return self._distinct_seen

    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one raw row."""
        if weight < 0:
            raise InvalidParameterError("weights must be non-negative")
        self._rows_processed += 1
        self._total_weight += weight
        existing = self._bins.get(item)
        if existing is not None:
            rank, count = existing
            self._bins[item] = (rank, count + weight)
            return
        rank = stable_rank(item, self._seed)
        if rank >= self._threshold_rank:
            # Item was previously evicted (or would be); its rows are lost,
            # exactly as in the real sketch.  It still counts as seen for the
            # distinct-item diagnostic the first time only if it was never
            # retained, which we cannot distinguish cheaply, so the counter
            # tracks "distinct items that were ever retained or offered while
            # below the threshold" — sufficient for its diagnostic purpose.
            return
        self._distinct_seen += 1
        if len(self._bins) < self._capacity:
            self._bins[item] = (rank, weight)
            return
        # Evict the largest-ranked retained item if the newcomer ranks lower.
        worst_item = max(self._bins, key=lambda key: self._bins[key][0])
        worst_rank = self._bins[worst_item][0]
        if rank < worst_rank:
            del self._bins[worst_item]
            self._bins[item] = (rank, weight)
            self._threshold_rank = min(self._threshold_rank, worst_rank)
        else:
            self._threshold_rank = min(self._threshold_rank, rank)

    def update_batch(self, items, weights=None) -> "BottomKSketch":
        """Batched ingestion: one rank computation per distinct item.

        Because an item's rank depends only on its label, the retained set is
        always the ``k`` smallest-ranked distinct items regardless of arrival
        order, and retained items accumulate their full weight either way —
        so collapsing the batch gives estimates exactly equal to the raw row
        loop while hashing each distinct item once.  ``rows_processed``
        counts raw rows.
        """
        unique, collapsed, row_count, total = collapse_batch(items, weights)
        if not unique:
            return self
        if min(collapsed) < 0:
            raise InvalidParameterError("weights must be non-negative")
        self._rows_processed += row_count
        self._total_weight += total
        bins = self._bins
        for item, weight in zip(unique, collapsed):
            existing = bins.get(item)
            if existing is not None:
                rank, count = existing
                bins[item] = (rank, count + weight)
                continue
            rank = stable_rank(item, self._seed)
            if rank >= self._threshold_rank:
                continue
            self._distinct_seen += 1
            if len(bins) < self._capacity:
                bins[item] = (rank, weight)
                continue
            worst_item = max(bins, key=lambda key: bins[key][0])
            worst_rank = bins[worst_item][0]
            if rank < worst_rank:
                del bins[worst_item]
                bins[item] = (rank, weight)
                self._threshold_rank = min(self._threshold_rank, worst_rank)
            else:
                self._threshold_rank = min(self._threshold_rank, rank)
        return self

    def extend(self, rows) -> "BottomKSketch":
        """Consume an iterable of items (or ``(item, weight)`` pairs)."""
        for item, weight in iter_weighted_rows(rows):
            self.update(item, weight)
        return self

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    @property
    def inclusion_probability(self) -> float:
        """The conditional per-item inclusion probability ``r``.

        Equal to the smallest rank ever rejected; 1.0 while no item has been
        rejected (every distinct item is still retained).
        """
        if self._threshold_rank == float("inf"):
            return 1.0
        return self._threshold_rank

    def estimate(self, item: Item) -> float:
        """Horvitz-Thompson estimate of the item's total weight (0 if absent)."""
        entry = self._bins.get(item)
        if entry is None:
            return 0.0
        _, count = entry
        return count / self.inclusion_probability

    def estimates(self) -> Dict[Item, float]:
        """Adjusted counts for every retained item."""
        probability = self.inclusion_probability
        return {item: count / probability for item, (_, count) in self._bins.items()}

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Unbiased subset sum estimate over retained items matching ``predicate``."""
        return float(
            sum(value for item, value in self.estimates().items() if predicate(item))
        )

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum with the Bernoulli-sampling variance estimate."""
        return self.as_weighted_sample().subset_sum_with_error(predicate)

    def heavy_hitters(self, phi: float) -> Dict[Item, float]:
        """Retained items with estimated relative frequency at least ``phi``.

        Same contract as :meth:`repro.core.base.FrequentItemSketch.heavy_hitters`
        evaluated over the Horvitz-Thompson adjusted estimates; on skewed
        data a uniform item sample misses heavy items far more often than
        the Space Saving family (the paper's figure-4 point).
        """
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        threshold = phi * self._total_weight
        return {
            item: estimate
            for item, estimate in self.estimates().items()
            if estimate >= threshold and estimate > 0
        }

    def top_k(self, k: int) -> "list[Tuple[Item, float]]":
        """The ``k`` retained items with the largest adjusted estimates."""
        if k < 0:
            raise InvalidParameterError("k must be non-negative")
        ranked = sorted(self.estimates().items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:k]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self._capacity}, "
            f"retained={len(self._bins)}, rows_processed={self._rows_processed}, "
            f"total_weight={self._total_weight:g})"
        )

    def estimated_distinct_items(self) -> float:
        """KMV-style estimate of the number of distinct items in the stream."""
        if self._threshold_rank == float("inf"):
            return float(len(self._bins))
        return (self._capacity) / self._threshold_rank

    def as_weighted_sample(self) -> WeightedSample:
        """Expose the sketch as a generic Horvitz-Thompson sample."""
        probability = self.inclusion_probability
        sample = WeightedSample()
        for item, (_, count) in self._bins.items():
            if count > 0:
                sample.add(SampledItem(item, count, probability))
        return sample

    def __len__(self) -> int:
        return len(self._bins)

    def __contains__(self, item: Item) -> bool:
        return item in self._bins

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        labels = []
        ranks = []
        counts = []
        for item, (rank, count) in self._bins.items():
            labels.append(encode_item(item))
            ranks.append(rank)
            counts.append(count)
        meta = {
            "capacity": self._capacity,
            "seed": self._seed,
            # inf (nothing evicted yet) is not JSON-safe; None marks it.
            "threshold_rank": (
                None if self._threshold_rank == float("inf") else self._threshold_rank
            ),
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
            "distinct_seen": self._distinct_seen,
            "labels": labels,
        }
        arrays = {
            "ranks": np.asarray(ranks, dtype=np.float64),
            "counts": np.asarray(counts, dtype=np.float64),
        }
        return meta, arrays

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        sketch = cls(int(meta["capacity"]), seed=int(meta["seed"]))
        sketch._bins = {
            decode_item(label): (float(rank), float(count))
            for label, rank, count in zip(meta["labels"], arrays["ranks"], arrays["counts"])
        }
        threshold = meta["threshold_rank"]
        sketch._threshold_rank = float("inf") if threshold is None else float(threshold)
        sketch._rows_processed = int(meta["rows_processed"])
        sketch._total_weight = float(meta["total_weight"])
        sketch._distinct_seen = int(meta["distinct_seen"])
        return sketch
