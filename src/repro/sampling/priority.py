"""Priority sampling (Duffield, Lund and Thorup 2007).

Priority sampling is the state-of-the-art subset sum estimator on
*pre-aggregated* data and the main baseline of the paper's experiments
(figures 3-6).  Each item with value ``n_i`` receives a random priority
``R_i = U_i / n_i`` with ``U_i ~ Uniform(0, 1)``; the ``k`` items with the
smallest priorities form the sample, and the threshold ``τ`` is the
``(k+1)``-th smallest priority.  Sampled items receive the adjusted value
``max(n_i, τ)``, which is unbiased for ``n_i``, and subset sums of adjusted
values are unbiased for the true subset sums.

Both a batch constructor (from a dict of pre-aggregated counts) and a
streaming sampler (one pass over ``(item, value)`` pairs keeping a bounded
heap) are provided; the streaming form is what a production system would run
after the expensive pre-aggregation step the paper contrasts against.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro._typing import Item, ItemPredicate
from repro.core.batching import collapse_batch
from repro.core.variance import EstimateWithError
from repro.errors import EmptySketchError, InvalidParameterError
from repro.io.codec import (
    decode_item,
    encode_item,
    rng_state_from_jsonable,
    rng_state_to_jsonable,
)
from repro.io.serializable import SerializableSketch
from repro.sampling.horvitz_thompson import SampledItem, WeightedSample

__all__ = ["PrioritySample", "StreamingPrioritySampler"]


class PrioritySample(SerializableSketch):
    """A priority sample drawn from pre-aggregated ``item -> value`` data.

    Parameters
    ----------
    values:
        Pre-aggregated per-item values (the expensive aggregation the paper's
        sketch avoids).
    sample_size:
        Number of retained items ``k``.
    rng:
        Source of the uniform variates; pass a seeded generator for
        reproducible draws.

    Example
    -------
    >>> values = {f"item{i}": float(i + 1) for i in range(100)}
    >>> sample = PrioritySample(values, sample_size=20, rng=random.Random(0))
    >>> len(sample)
    20
    """

    def __init__(
        self,
        values: Dict[Item, float],
        sample_size: int,
        *,
        rng: Optional[random.Random] = None,
    ) -> None:
        if sample_size < 1:
            raise InvalidParameterError("sample_size must be at least 1")
        if not values:
            raise EmptySketchError("cannot draw a priority sample from no data")
        for item, value in values.items():
            if value < 0:
                raise InvalidParameterError(f"negative value for {item!r}")
        self._rng = rng or random.Random()
        self._sample_size = sample_size
        self._values = dict(values)
        self._threshold, self._sampled = self._draw()

    def _draw(self) -> Tuple[float, Dict[Item, float]]:
        """Assign priorities and keep the ``k`` smallest."""
        priorities = []
        for item, value in self._values.items():
            if value <= 0:
                continue
            priority = self._rng.random() / value
            priorities.append((priority, item, value))
        priorities.sort(key=lambda entry: entry[0])
        kept = priorities[: self._sample_size]
        if len(priorities) > self._sample_size:
            threshold_priority = priorities[self._sample_size][0]
            # tau in the estimator is 1 / threshold-priority scaled form:
            # adjusted value = max(n_i, 1 / R_(k+1)).
            threshold = 1.0 / threshold_priority if threshold_priority > 0 else float("inf")
        else:
            threshold = 0.0
        return threshold, {item: value for _, item, value in kept}

    @classmethod
    def from_rows(
        cls,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
        *,
        sample_size: int,
        rng: Optional[random.Random] = None,
    ) -> "PrioritySample":
        """Draw a priority sample directly from disaggregated rows.

        The rows are first pre-aggregated with
        :func:`repro.core.batching.collapse_batch` (priority sampling is
        defined on per-item values), then sampled as usual.  This is the
        batch-ingestion entry point for the priority layer.
        """
        unique, collapsed, _, __ = collapse_batch(items, weights)
        return cls(dict(zip(unique, collapsed)), sample_size, rng=rng)

    # -- properties -------------------------------------------------------
    @property
    def threshold(self) -> float:
        """The value-scale threshold ``1 / R_(k+1)`` (0 when nothing was dropped)."""
        return self._threshold

    @property
    def sample_size(self) -> int:
        """The configured sample size ``k``."""
        return self._sample_size

    def __len__(self) -> int:
        return len(self._sampled)

    def __contains__(self, item: Item) -> bool:
        return item in self._sampled

    # -- estimation -------------------------------------------------------
    def adjusted_value(self, item: Item) -> float:
        """Unbiased per-item estimate ``max(n_i, τ)`` (0 when not sampled)."""
        value = self._sampled.get(item)
        if value is None:
            return 0.0
        return max(value, self._threshold)

    def estimates(self) -> Dict[Item, float]:
        """Adjusted values for every sampled item."""
        return {item: self.adjusted_value(item) for item in self._sampled}

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Unbiased subset sum estimate over the sampled items."""
        return float(
            sum(self.adjusted_value(item) for item in self._sampled if predicate(item))
        )

    def total_estimate(self) -> float:
        """Estimate of the grand total.

        Unlike Unbiased Space Saving, priority sampling does not preserve the
        total exactly; §7 of the paper points to this extra variability as a
        reason the sketch can beat it.
        """
        return float(sum(self.adjusted_value(item) for item in self._sampled))

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum with the pseudo-inclusion-probability variance estimate."""
        return self.as_weighted_sample().subset_sum_with_error(predicate)

    def pseudo_inclusion_probability(self, item: Item) -> float:
        """``min(1, n_i / τ)`` — the Bernoulli probability priority sampling emulates."""
        value = self._values.get(item, 0.0)
        if value <= 0:
            return 0.0
        if self._threshold <= 0:
            return 1.0
        return min(1.0, value / self._threshold)

    def as_weighted_sample(self) -> WeightedSample:
        """View the priority sample as a generic Horvitz-Thompson sample."""
        sample = WeightedSample()
        for item, value in self._sampled.items():
            pi = self.pseudo_inclusion_probability(item)
            sample.add(SampledItem(item, value, max(pi, 1e-12)))
        return sample

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(sample_size={self._sample_size}, "
            f"sampled={len(self._sampled)}, threshold={self._threshold:g}, "
            f"universe={len(self._values)})"
        )

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        meta = {
            "sample_size": self._sample_size,
            "threshold": self._threshold,
            "value_labels": [encode_item(item) for item in self._values],
            "sampled_labels": [encode_item(item) for item in self._sampled],
            "rng_state": rng_state_to_jsonable(self._rng.getstate()),
        }
        arrays = {
            "values": np.asarray(list(self._values.values()), dtype=np.float64),
            "sampled_values": np.asarray(list(self._sampled.values()), dtype=np.float64),
        }
        return meta, arrays

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        # Bypass __init__: the sample was already drawn by the serializing
        # instance and must not be redrawn on load.
        sample = cls.__new__(cls)
        sample._sample_size = int(meta["sample_size"])
        sample._threshold = float(meta["threshold"])
        sample._values = {
            decode_item(label): float(value)
            for label, value in zip(meta["value_labels"], arrays["values"])
        }
        sample._sampled = {
            decode_item(label): float(value)
            for label, value in zip(meta["sampled_labels"], arrays["sampled_values"])
        }
        sample._rng = random.Random()
        sample._rng.setstate(rng_state_from_jsonable(meta["rng_state"]))
        return sample


class StreamingPrioritySampler(SerializableSketch):
    """One-pass priority sampler over pre-aggregated ``(item, value)`` pairs.

    Keeps the ``k`` items with the smallest priorities (equivalently the
    largest ``value / U`` keys) in a bounded heap, plus the threshold
    priority, in ``O(log k)`` time per item.
    """

    def __init__(
        self, sample_size: int, *, rng: Optional[random.Random] = None
    ) -> None:
        if sample_size < 1:
            raise InvalidParameterError("sample_size must be at least 1")
        self._sample_size = sample_size
        self._rng = rng or random.Random()
        # Max-heap (via negated priority) of the k smallest priorities seen.
        self._heap: list[Tuple[float, int, Item, float]] = []
        self._sequence = 0
        self._threshold_priority = float("inf")
        self._items_seen = 0

    def offer(self, item: Item, value: float) -> None:
        """Present one pre-aggregated item to the sampler."""
        if value < 0:
            raise InvalidParameterError("values must be non-negative")
        self._items_seen += 1
        if value == 0:
            return
        priority = self._rng.random() / value
        entry = (-priority, self._sequence, item, value)
        self._sequence += 1
        if len(self._heap) < self._sample_size:
            heapq.heappush(self._heap, entry)
            return
        # The heap root holds the largest retained priority; a smaller
        # arriving priority evicts it and the evicted priority becomes the
        # new threshold candidate.
        largest_retained = -self._heap[0][0]
        if priority < largest_retained:
            evicted = heapq.heappushpop(self._heap, entry)
            self._threshold_priority = min(self._threshold_priority, -evicted[0])
        else:
            self._threshold_priority = min(self._threshold_priority, priority)

    def extend(self, pairs: Iterable[Tuple[Item, float]]) -> "StreamingPrioritySampler":
        """Offer every ``(item, value)`` pair from an iterable."""
        for item, value in pairs:
            self.offer(item, value)
        return self

    def offer_batch(
        self, items: Iterable[Item], values: Iterable[float]
    ) -> "StreamingPrioritySampler":
        """Offer aligned ``items``/``values`` sequences in one call.

        Inputs are *pre-aggregated* per-item values, so no duplicate
        collapsing is applied; the result (including the uniform draws) is
        identical to sequential :meth:`offer` calls in the same order.
        """
        items_list = items if isinstance(items, (list, tuple)) else list(items)
        values_list = values if isinstance(values, (list, tuple)) else list(values)
        if len(items_list) != len(values_list):
            raise InvalidParameterError(
                f"items and values must align: got {len(items_list)} items "
                f"and {len(values_list)} values"
            )
        for item, value in zip(items_list, values_list):
            self.offer(item, float(value))
        return self

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(sample_size={self._sample_size}, "
            f"retained={len(self._heap)}, items_seen={self._items_seen})"
        )

    def result(self) -> WeightedSample:
        """Finalize into a :class:`WeightedSample` of adjusted values."""
        if not self._heap:
            return WeightedSample()
        if self._threshold_priority == float("inf"):
            threshold_value = 0.0
        else:
            threshold_value = (
                1.0 / self._threshold_priority if self._threshold_priority > 0 else float("inf")
            )
        sample = WeightedSample()
        for _, __, item, value in self._heap:
            if threshold_value <= 0:
                pi = 1.0
            else:
                pi = min(1.0, value / threshold_value)
            sample.add(SampledItem(item, value, max(pi, 1e-12)))
        return sample

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        labels = []
        sequences = []
        priorities = []
        values = []
        for negated_priority, sequence, item, value in self._heap:
            labels.append(encode_item(item))
            sequences.append(sequence)
            priorities.append(-negated_priority)
            values.append(value)
        meta = {
            "sample_size": self._sample_size,
            "threshold_priority": (
                None
                if self._threshold_priority == float("inf")
                else self._threshold_priority
            ),
            "sequence": self._sequence,
            "items_seen": self._items_seen,
            "labels": labels,
            "sequences": sequences,
            "rng_state": rng_state_to_jsonable(self._rng.getstate()),
        }
        arrays = {
            "priorities": np.asarray(priorities, dtype=np.float64),
            "values": np.asarray(values, dtype=np.float64),
        }
        return meta, arrays

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        sampler = cls(int(meta["sample_size"]))
        sampler._heap = [
            (-float(priority), int(sequence), decode_item(label), float(value))
            for label, sequence, priority, value in zip(
                meta["labels"], meta["sequences"], arrays["priorities"], arrays["values"]
            )
        ]
        heapq.heapify(sampler._heap)
        threshold = meta["threshold_priority"]
        sampler._threshold_priority = (
            float("inf") if threshold is None else float(threshold)
        )
        sampler._sequence = int(meta["sequence"])
        sampler._items_seen = int(meta["items_seen"])
        sampler._rng.setstate(rng_state_from_jsonable(meta["rng_state"]))
        return sampler
