"""Reservoir sampling.

Two reservoir samplers are provided:

* :class:`SingleItemReservoir` — a size-1 reservoir.  The paper's analysis
  (§6.2) observes that the label of each Space Saving bin is exactly a size-1
  reservoir sample of the rows routed to that bin, which is why the tail
  bins' labels end up distributed proportionally to item frequency.  Having
  the primitive as its own tested class both documents that connection and
  lets the property tests exercise it directly.
* :class:`ReservoirSampler` — the classic Algorithm R size-``k`` uniform row
  sample, used as the "uniform row sampling" reference design in a few
  ablation benchmarks.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, Generic, Iterable, List, Optional, TypeVar

from repro._typing import Item, ItemPredicate
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError, UnsupportedUpdateError
from repro.io.codec import (
    decode_item,
    encode_item,
    rng_state_from_jsonable,
    rng_state_to_jsonable,
)
from repro.io.serializable import SerializableSketch

__all__ = ["SingleItemReservoir", "ReservoirSampler"]

T = TypeVar("T")


class SingleItemReservoir(Generic[T]):
    """Size-1 reservoir: each offered row ends up selected with equal probability.

    After ``n`` calls to :meth:`offer`, each row has probability ``1/n`` of
    being the retained value — the mechanism by which a Space Saving bin's
    label becomes a uniform draw from the rows that hit the bin.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random()
        self._value: Optional[T] = None
        self._offers = 0

    @property
    def offers(self) -> int:
        """How many rows have been offered."""
        return self._offers

    @property
    def value(self) -> Optional[T]:
        """The currently retained row (``None`` before the first offer)."""
        return self._value

    def offer(self, row: T) -> bool:
        """Offer one row; returns ``True`` when the row was retained."""
        self._offers += 1
        if self._rng.random() * self._offers < 1.0:
            self._value = row
            return True
        return False


class ReservoirSampler(Generic[T], SerializableSketch):
    """Uniform without-replacement sample of ``k`` rows (Algorithm R).

    Every row of the stream has an equal chance ``k / n`` of appearing in the
    final sample.  For the disaggregated subset sum problem this corresponds
    to uniform *row* sampling: the per-item estimate scales the sampled row
    count by ``n / k``.
    """

    def __init__(self, capacity: int, *, seed: Optional[int] = None) -> None:
        if capacity < 1:
            raise InvalidParameterError("capacity must be a positive integer")
        self._capacity = capacity
        self._rng = random.Random(seed)
        self._reservoir: List[T] = []
        self._rows_processed = 0

    @property
    def capacity(self) -> int:
        """The sample size ``k``."""
        return self._capacity

    @property
    def rows_processed(self) -> int:
        """Number of rows offered so far."""
        return self._rows_processed

    def offer(self, row: T) -> None:
        """Offer one row to the reservoir."""
        self._rows_processed += 1
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(row)
            return
        position = self._rng.randrange(self._rows_processed)
        if position < self._capacity:
            self._reservoir[position] = row

    def update(self, item: Item, weight: float = 1.0) -> None:
        """Protocol-conformant ingestion: offer one unit-weight row.

        Reservoir sampling is defined on rows, not weighted items, so only
        ``weight == 1`` is accepted.
        """
        if weight != 1:
            raise UnsupportedUpdateError(
                "ReservoirSampler samples unit-weight rows; "
                "weighted updates need a PPS design (see repro.sampling.varopt)"
            )
        self.offer(item)

    def extend(self, rows: Iterable[T]) -> "ReservoirSampler":
        """Offer every row from an iterable."""
        for row in rows:
            self.offer(row)
        return self

    def sample(self) -> List[T]:
        """The current reservoir contents (a uniform sample of offered rows)."""
        return list(self._reservoir)

    def __len__(self) -> int:
        return len(self._reservoir)

    # -- disaggregated estimation helpers ---------------------------------
    def scale_factor(self) -> float:
        """Expansion factor ``n / k`` applied to sampled row counts."""
        if not self._reservoir:
            return 0.0
        return self._rows_processed / len(self._reservoir)

    def item_estimates(self) -> Dict[Item, float]:
        """Estimated per-item row counts from the uniform row sample."""
        counts = Counter(self._reservoir)
        scale = self.scale_factor()
        return {item: count * scale for item, count in counts.items()}

    def estimate(self, item: Item) -> float:
        """Estimated row count for one item (0 when absent from the sample)."""
        return self.item_estimates().get(item, 0.0)

    def estimates(self) -> Dict[Item, float]:
        """Protocol-conformant alias of :meth:`item_estimates`."""
        return self.item_estimates()

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Estimate of the number of rows whose item matches ``predicate``."""
        return float(
            sum(value for item, value in self.item_estimates().items() if predicate(item))
        )

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum with the Bernoulli-approximation variance estimate.

        Each of the ``C_S`` sampled rows matching the predicate contributes
        the scale factor ``n/k``; approximating the without-replacement
        draw as Bernoulli sampling with ``π = k/n`` gives
        ``Var ≈ C_S · (n/k)² · π(1−π)``, the standard uniform-row-sampling
        plug-in (exact enough for the ablation comparisons this sampler
        backs).
        """
        scale = self.scale_factor()
        if scale <= 0:
            return EstimateWithError(estimate=0.0, variance=0.0)
        counts = Counter(self._reservoir)
        matched = sum(count for item, count in counts.items() if predicate(item))
        pi = min(1.0, 1.0 / scale)
        variance = matched * scale * scale * pi * (1.0 - pi)
        return EstimateWithError(estimate=matched * scale, variance=variance)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self._capacity}, "
            f"sampled={len(self._reservoir)}, rows_processed={self._rows_processed})"
        )

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        meta = {
            "capacity": self._capacity,
            "rows_processed": self._rows_processed,
            "reservoir": [encode_item(row) for row in self._reservoir],
            "rng_state": rng_state_to_jsonable(self._rng.getstate()),
        }
        return meta, {}

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        sampler = cls(int(meta["capacity"]))
        sampler._reservoir = [decode_item(row) for row in meta["reservoir"]]
        sampler._rows_processed = int(meta["rows_processed"])
        sampler._rng.setstate(rng_state_from_jsonable(meta["rng_state"]))
        return sampler
