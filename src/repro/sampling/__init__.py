"""Sampling substrates: PPS, priority, bottom-k, reservoir, VarOpt, Horvitz-Thompson.

These are the sampling designs the paper builds on (§5.1) and compares
against (§7).  They all expose their results as
:class:`~repro.sampling.horvitz_thompson.WeightedSample` objects so the query
and evaluation layers can treat every design uniformly.
"""

from repro.sampling.bottom_k import BottomKSketch, stable_rank
from repro.sampling.horvitz_thompson import SampledItem, WeightedSample
from repro.sampling.pps import (
    expected_sample_size,
    inclusion_probabilities,
    poisson_pps_sample,
    pps_threshold,
    splitting_pps_sample,
    systematic_pps_sample,
)
from repro.sampling.priority import PrioritySample, StreamingPrioritySampler
from repro.sampling.reservoir import ReservoirSampler, SingleItemReservoir
from repro.sampling.varopt import varopt_reduce, varopt_sample

__all__ = [
    "BottomKSketch",
    "stable_rank",
    "SampledItem",
    "WeightedSample",
    "expected_sample_size",
    "inclusion_probabilities",
    "poisson_pps_sample",
    "pps_threshold",
    "splitting_pps_sample",
    "systematic_pps_sample",
    "PrioritySample",
    "StreamingPrioritySampler",
    "ReservoirSampler",
    "SingleItemReservoir",
    "varopt_reduce",
    "varopt_sample",
]
