"""The backend-transparent stream session facade.

A :class:`StreamSession` wraps any protocol-conforming estimator — an
inline sketch, a hash-partitioned :class:`~repro.distributed.sharded.ShardedSketch`,
or a multiprocess :class:`~repro.distributed.parallel.ParallelSketchExecutor` —
behind one ingestion surface (``update`` / ``update_batch`` / ``extend``)
and one *normalized* query surface: every read path returns a
:class:`~repro.core.variance.EstimateWithError` or a
:class:`~repro.query.engine.QueryResult`, never a bare float from one
class and a dataclass from another.  Queries the wrapped estimator cannot
answer raise :class:`~repro.errors.CapabilityError` instead of
``AttributeError``.

Sessions are normally produced by :func:`repro.build`, but wrapping an
existing estimator directly is supported:

>>> from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
>>> session = StreamSession(UnbiasedSpaceSaving(capacity=8, seed=0))
>>> _ = session.extend(["a", "b", "a", "c"])
>>> session.estimate("a").estimate
2.0
>>> session.subset_sum(lambda item: item != "b").estimate
3.0
>>> session.heavy_hitters(0.5).groups
{'a': 2.0}
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Optional

from repro._typing import Item, ItemPredicate
from repro.api.protocols import (
    HEAVY_HITTERS,
    MERGE,
    POINT,
    SERIALIZE,
    SUBSET_SUM,
    capabilities,
    require_capability,
)
from repro.core.batching import iter_weighted_rows
from repro.core.variance import EstimateWithError
from repro.errors import CapabilityError
from repro.query.engine import QueryResult

__all__ = ["StreamSession"]


class StreamSession:
    """One ingestion + query surface over any estimator, any backend.

    Parameters
    ----------
    estimator:
        The wrapped estimator.  Must provide ``update(item, weight)``;
        everything else is optional and gated by capability.
    spec_name:
        The spec the estimator was built from (``None`` for ad-hoc wraps).
    backend:
        The execution backend label: ``"inline"``, ``"sharded"`` or
        ``"parallel"``.
    """

    def __init__(
        self,
        estimator: Any,
        *,
        spec_name: Optional[str] = None,
        backend: str = "inline",
        window: Optional[str] = None,
    ) -> None:
        if not callable(getattr(estimator, "update", None)):
            raise CapabilityError(
                f"{type(estimator).__name__} has no update() method; "
                "a StreamSession needs an ingestible estimator"
            )
        self._estimator = estimator
        self._spec_name = spec_name
        self._backend = backend
        if window is None and callable(getattr(estimator, "window_policy", None)):
            window = estimator.window_policy().describe()
        self._window = window

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def estimator(self) -> Any:
        """The wrapped estimator (escape hatch to the full class surface)."""
        return self._estimator

    @property
    def spec_name(self) -> Optional[str]:
        """Name of the spec this session was built from, when known."""
        return self._spec_name

    @property
    def backend(self) -> str:
        """The execution backend label."""
        return self._backend

    @property
    def window(self) -> Optional[str]:
        """The window policy spec string (``None`` for all-time sessions)."""
        return self._window

    def _require_windowed(self, operation: str) -> None:
        if self._window is None:
            raise CapabilityError(
                f"{operation}: this session is not windowed; build one with "
                "repro.build(spec, window='tumbling:60s' | 'sliding:5m/30s' "
                "| 'decay:exp:0.01', ...) to ingest timestamped rows"
            )

    @property
    def capabilities(self) -> FrozenSet[str]:
        """Capability names of the wrapped estimator."""
        return capabilities(self._estimator)

    def __capabilities__(self) -> FrozenSet[str]:
        """Gate the session's structural surface by the wrapped estimator.

        The session defines every query method, so without this hook
        ``repro.capabilities(session)`` would report capabilities the
        underlying estimator cannot actually answer.
        """
        return capabilities(self._estimator)

    @property
    def rows_processed(self) -> int:
        """Raw rows ingested (0 when the estimator does not track them)."""
        return int(getattr(self._estimator, "rows_processed", 0))

    @property
    def total_weight(self) -> float:
        """Total ingested weight (0 when the estimator does not track it)."""
        return float(getattr(self._estimator, "total_weight", 0.0))

    def describe(self) -> Dict[str, Any]:
        """A JSON-safe description of the session (spec, backend, progress).

        This is the session's self-describing metadata surface: the serve
        layer publishes it as the ``info`` op and persists it in
        checkpoint manifests, so everything here must stay plain data.
        """
        return {
            "spec": self._spec_name,
            "backend": self._backend,
            "window": self._window,
            "estimator": type(self._estimator).__name__,
            "rows_processed": self.rows_processed,
            "total_weight": self.total_weight,
            "capabilities": sorted(self.capabilities),
        }

    def __repr__(self) -> str:
        spec = self._spec_name if self._spec_name else type(self._estimator).__name__
        window = f"window={self._window!r}, " if self._window is not None else ""
        return (
            f"StreamSession(spec={spec!r}, backend={self._backend!r}, {window}"
            f"rows_processed={self.rows_processed}, "
            f"capabilities={sorted(self.capabilities)})"
        )

    def __len__(self) -> int:
        return len(self.estimates())

    def __contains__(self, item: Item) -> bool:
        return item in self.estimates()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(
        self,
        item: Item,
        weight: float = 1.0,
        timestamp: Optional[float] = None,
    ) -> "StreamSession":
        """Ingest one raw row.

        ``timestamp`` (stream-time seconds) is accepted by windowed
        sessions only; all-time sessions raise
        :class:`~repro.errors.CapabilityError` when one is passed.
        """
        if timestamp is None:
            self._estimator.update(item, weight)
        else:
            self._require_windowed("update(timestamp=...)")
            self._estimator.update(item, weight, timestamp=timestamp)
        return self

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
        timestamps: Optional[Iterable[float]] = None,
    ) -> "StreamSession":
        """Ingest a batch, using the estimator's fast path when it has one.

        Estimators without ``update_batch`` fall back to a scalar loop, so
        every session accepts batches regardless of backend or class.
        ``timestamps`` (aligned with ``items``) routes each row to its
        window on windowed sessions, and is rejected elsewhere.
        """
        if timestamps is not None:
            self._require_windowed("update_batch(timestamps=...)")
            self._estimator.update_batch(items, weights, timestamps=timestamps)
            return self
        batch = getattr(self._estimator, "update_batch", None)
        if callable(batch):
            batch(items, weights)
            return self
        if weights is None:
            for item in items:
                self._estimator.update(item)
        else:
            for item, weight in zip(items, weights):
                self._estimator.update(item, float(weight))
        return self

    def extend(self, rows: Iterable) -> "StreamSession":
        """Consume a stream of rows (bare items or ``(item, weight)`` pairs).

        A 2-tuple row is treated as weighted only when its item is not
        itself a number (so composite numeric keys stay keys — see
        :func:`repro.core.batching.iter_weighted_rows`); weighted streams
        of *numeric* items should use :meth:`update` /
        :meth:`update_batch`, which take weights explicitly.  Windowed
        sessions additionally accept the ``(item, weight, timestamp)``
        triples emitted by the timestamped generators in
        :mod:`repro.streams.generators`.
        """
        if self._window is not None:
            self._estimator.extend(rows)
            return self
        for item, weight in iter_weighted_rows(rows):
            self._estimator.update(item, weight)
        return self

    # ------------------------------------------------------------------
    # Normalized queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> EstimateWithError:
        """Point estimate for one item, with uncertainty when available.

        When the estimator carries a subset-sum error model the variance of
        the singleton subset ``{item}`` is attached; otherwise the variance
        is reported as zero.
        """
        point = getattr(self._estimator, "estimate", None)
        if not callable(point):
            raise CapabilityError(
                f"{type(self._estimator).__name__} cannot answer point queries"
            )
        if SUBSET_SUM in self.capabilities:
            return self._estimator.subset_sum_with_error(
                lambda candidate: candidate == item
            )
        return EstimateWithError(estimate=float(point(item)), variance=0.0)

    def estimates(self) -> Dict[Item, float]:
        """All retained items with their estimated counts."""
        require_capability(self._estimator, POINT, operation="estimates")
        return dict(self._estimator.estimates())

    def subset_sum(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum under an arbitrary predicate, with its error model."""
        require_capability(self._estimator, SUBSET_SUM, operation="subset_sum")
        return self._estimator.subset_sum_with_error(predicate)

    # Protocol-parity alias so a session is itself a SubsetSumEstimator
    # source (e.g. for SketchQueryEngine).
    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Alias of :meth:`subset_sum` (normalized surface parity)."""
        return self.subset_sum(predicate)

    def total(self) -> EstimateWithError:
        """Estimate of the grand total ingested weight.

        Unbiased Space Saving (and its ensembles) preserve the total
        exactly via ``total_estimate``; estimators without it but with
        exact ``total_weight`` bookkeeping (everything built by
        :func:`repro.build`) report that counter, zero variance.  Only
        sources tracking neither fall back to the all-items subset sum —
        never to summing a bounded tracked view, which would undercount.
        """
        exact_total = getattr(self._estimator, "total_estimate", None)
        if callable(exact_total):
            return EstimateWithError(estimate=float(exact_total()), variance=0.0)
        total_weight = getattr(self._estimator, "total_weight", None)
        if total_weight is not None:
            return EstimateWithError(estimate=float(total_weight), variance=0.0)
        if SUBSET_SUM in self.capabilities:
            return self._estimator.subset_sum_with_error(lambda item: True)
        return EstimateWithError(
            estimate=float(sum(self.estimates().values())), variance=0.0
        )

    def heavy_hitters(self, phi: float) -> QueryResult:
        """Items at or above relative frequency ``phi``, as a grouped result."""
        require_capability(self._estimator, HEAVY_HITTERS, operation="heavy_hitters")
        return QueryResult(groups=dict(self._estimator.heavy_hitters(phi)))

    def top_k(self, k: int) -> QueryResult:
        """The ``k`` largest estimates, as a grouped result in rank order."""
        require_capability(self._estimator, HEAVY_HITTERS, operation="top_k")
        return QueryResult(groups=dict(self._estimator.top_k(k)))

    def select_sum(
        self,
        *,
        where: Optional[ItemPredicate] = None,
        group_by=None,
    ) -> QueryResult:
        """Run one SQL-ish aggregation through the query engine."""
        from repro.query.engine import SketchQueryEngine

        return SketchQueryEngine(self).select_sum(where=where, group_by=group_by)

    # ------------------------------------------------------------------
    # Ensemble and lifecycle operations
    # ------------------------------------------------------------------
    def merged(self, capacity: Optional[int] = None, *, seed: Optional[int] = None):
        """Collapse the session's state into one inline sketch.

        Meaningful for the sharded/parallel backends (merge the shards)
        and for windowed sessions (merge the in-horizon panes — the §5.5
        hand-off); plain inline sessions have no ``merged()`` reduction
        and raise :class:`~repro.errors.CapabilityError`.
        """
        merge = getattr(self._estimator, "merged", None)
        if not callable(merge):
            raise CapabilityError(
                f"{type(self._estimator).__name__} has no merged() reduction; "
                "merged() applies to sharded/parallel sessions"
            )
        return merge(capacity, seed=seed)

    def merge(self, other: "StreamSession | Any") -> "StreamSession":
        """Merge with another session (or raw estimator) of the same type."""
        require_capability(self._estimator, MERGE, operation="merge")
        peer = other.estimator if isinstance(other, StreamSession) else other
        merged = self._estimator.merge(peer)
        return StreamSession(merged, spec_name=self._spec_name, backend=self._backend)

    def to_bytes(self) -> bytes:
        """Serialize the underlying estimator to a binary frame."""
        require_capability(self._estimator, SERIALIZE, operation="to_bytes")
        return self._estimator.to_bytes()

    def save_checkpoint(self, path) -> None:
        """Atomically checkpoint the underlying estimator to ``path``."""
        require_capability(self._estimator, SERIALIZE, operation="save_checkpoint")
        self._estimator.save_checkpoint(path)

    def close(self) -> None:
        """Release backend resources (the parallel worker pool); idempotent."""
        close = getattr(self._estimator, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
