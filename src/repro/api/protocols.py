"""The unified estimator protocol layer.

The paper's central claim is that *one* sketch can serve the disaggregated
subset-sum, point and heavy-hitter queries previously answered by distinct
estimators.  This module gives that claim an API: five runtime-checkable
:class:`typing.Protocol` types describing the query capabilities an
estimator may offer, plus a :func:`capabilities` inspector that reports
which of them a concrete object actually provides.

Capabilities are *structural*: any object with the right methods conforms,
whether it lives in this package or not.  An object whose capabilities
depend on construction-time configuration (e.g. a CountMin sketch only
enumerates items when heavy-hitter tracking was enabled) can refine the
structural answer by implementing ``__capabilities__()`` — the inspector
intersects the structural set with whatever that hook returns.

>>> from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
>>> sketch = UnbiasedSpaceSaving(capacity=8, seed=0)
>>> sorted(capabilities(sketch))
['heavy_hitters', 'merge', 'point', 'serialize', 'subset_sum']
>>> supports(sketch, SUBSET_SUM)
True
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro._typing import Item, ItemPredicate
from repro.core.variance import EstimateWithError
from repro.errors import CapabilityError

__all__ = [
    "PointEstimator",
    "SubsetSumEstimator",
    "HeavyHitterEstimator",
    "Mergeable",
    "Serializable",
    "POINT",
    "SUBSET_SUM",
    "HEAVY_HITTERS",
    "MERGE",
    "SERIALIZE",
    "CAPABILITY_PROTOCOLS",
    "capabilities",
    "supports",
    "require_capability",
]


# ----------------------------------------------------------------------
# Protocols
# ----------------------------------------------------------------------
@runtime_checkable
class PointEstimator(Protocol):
    """Answers per-item frequency queries and enumerates retained items."""

    def estimate(self, item: Item) -> float:
        """Estimated aggregate weight of ``item`` (0 when not retained)."""
        ...

    def estimates(self) -> Mapping[Item, float]:
        """All retained items with their estimated counts."""
        ...


@runtime_checkable
class SubsetSumEstimator(Protocol):
    """Answers arbitrary after-the-fact subset sums, with an error model."""

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Estimate of the total weight of items matching ``predicate``."""
        ...

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """The same estimate bundled with its estimated variance."""
        ...


@runtime_checkable
class HeavyHitterEstimator(Protocol):
    """Reports frequent items above a relative-frequency threshold."""

    def heavy_hitters(self, phi: float) -> Dict[Item, float]:
        """Items whose estimated relative frequency is at least ``phi``."""
        ...

    def top_k(self, k: int) -> List[Tuple[Item, float]]:
        """The ``k`` items with the largest estimated counts."""
        ...


@runtime_checkable
class Mergeable(Protocol):
    """Can be combined with a same-typed summary of a disjoint stream."""

    def merge(self, other: Any) -> Any:
        """Return a summary of the union of both inputs' data."""
        ...


@runtime_checkable
class Serializable(Protocol):
    """Round-trips through the :mod:`repro.io` envelope format."""

    def to_bytes(self) -> bytes:
        """Serialize to a self-describing binary frame."""
        ...

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-compatible dict envelope."""
        ...


# ----------------------------------------------------------------------
# Capability names
# ----------------------------------------------------------------------
POINT = "point"
SUBSET_SUM = "subset_sum"
HEAVY_HITTERS = "heavy_hitters"
MERGE = "merge"
SERIALIZE = "serialize"

#: capability name -> protocol class, in a stable presentation order.
CAPABILITY_PROTOCOLS: Dict[str, type] = {
    POINT: PointEstimator,
    SUBSET_SUM: SubsetSumEstimator,
    HEAVY_HITTERS: HeavyHitterEstimator,
    MERGE: Mergeable,
    SERIALIZE: Serializable,
}


def capabilities(obj: Any) -> FrozenSet[str]:
    """The set of capability names ``obj`` provides.

    Structural protocol checks (method presence) form the baseline; when
    the object implements ``__capabilities__()`` the result is intersected
    with the names that hook returns, so configuration-dependent objects
    can *narrow* (never widen) their advertised surface.

    >>> capabilities({"a": 1.0})
    frozenset()
    >>> from repro.frequent.countmin import CountMinSketch
    >>> untracked = CountMinSketch(width=16, depth=2)
    >>> HEAVY_HITTERS in capabilities(untracked)  # no tracking configured
    False
    """
    structural = {
        name
        for name, protocol in CAPABILITY_PROTOCOLS.items()
        if isinstance(obj, protocol)
    }
    refine = getattr(obj, "__capabilities__", None)
    if callable(refine):
        structural &= set(refine())
    return frozenset(structural)


def supports(obj: Any, capability: str) -> bool:
    """Whether ``obj`` provides the named capability."""
    if capability not in CAPABILITY_PROTOCOLS:
        raise CapabilityError(
            f"unknown capability {capability!r}; "
            f"known capabilities: {sorted(CAPABILITY_PROTOCOLS)}"
        )
    return capability in capabilities(obj)


def require_capability(obj: Any, capability: str, *, operation: str = "") -> None:
    """Raise :class:`~repro.errors.CapabilityError` unless ``obj`` supports it.

    Parameters
    ----------
    obj:
        The estimator being queried.
    capability:
        One of the names in :data:`CAPABILITY_PROTOCOLS`.
    operation:
        Optional description of the attempted operation for the message.
    """
    if supports(obj, capability):
        return
    prefix = f"{operation}: " if operation else ""
    raise CapabilityError(
        f"{prefix}{type(obj).__name__} does not provide the "
        f"{capability!r} capability (it provides {sorted(capabilities(obj)) or 'none'})"
    )
