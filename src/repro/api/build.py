"""``repro.build`` — one constructor for every sketch, on any backend.

The factory turns a spec name plus a handful of normalized arguments into
a ready :class:`~repro.api.session.StreamSession`:

* ``backend="inline"`` (default) — the spec's class, constructed directly.
* ``backend="sharded"`` — a hash-partitioned in-process
  :class:`~repro.distributed.sharded.ShardedSketch` ensemble.
* ``backend="parallel"`` — a multiprocess
  :class:`~repro.distributed.parallel.ParallelSketchExecutor`.

Seeding is normalized across backends exactly as the executors define it
(shard ``i`` receives ``seed + i``), so a session built here is equal,
estimate for estimate, to the hand-constructed executor it replaces.

>>> session = build("unbiased_space_saving", size=8, seed=42)
>>> _ = session.update_batch(["ad1", "ad2", "ad1", "ad3"])
>>> session.subset_sum(lambda ad: ad in {"ad1", "ad3"}).estimate
3.0
>>> sharded = build("unbiased_space_saving", size=8, backend="sharded",
...                 num_shards=4, seed=42)
>>> _ = sharded.update_batch(["ad1", "ad2", "ad1", "ad3"])
>>> sharded.estimate("ad1").estimate
2.0

Passing ``window=`` produces a time-aware session backed by the
:mod:`repro.windows` subsystem — tumbling or sliding pane rings, or
continuous forward decay — with the same session surface plus
timestamped ingestion:

>>> trending = build("unbiased_space_saving", size=8,
...                  window="sliding:2m/1m", seed=42)
>>> _ = trending.update("ad1", timestamp=30.0)
>>> _ = trending.update("ad2", timestamp=150.0)   # expires the first pane
>>> sorted(trending.estimates())
['ad2']
"""

from __future__ import annotations

from typing import Optional

from repro.api.session import StreamSession
from repro.api.specs import get_spec
from repro.errors import CapabilityError, InvalidParameterError

__all__ = ["build", "BACKENDS"]

#: The execution backends :func:`build` understands.
BACKENDS = ("inline", "sharded", "parallel")

#: Default shard count for the scale-out backends when none is given.
DEFAULT_NUM_SHARDS = 4


def build(
    spec: str,
    *,
    size: int,
    backend: str = "inline",
    window: Optional[str] = None,
    seed: Optional[int] = None,
    num_shards: Optional[int] = None,
    num_workers: Optional[int] = None,
    mp_context: Optional[str] = None,
    merge_method: str = "pps",
    **params,
) -> StreamSession:
    """Build a :class:`StreamSession` for a registered sketch spec.

    Parameters
    ----------
    spec:
        A spec name from :func:`repro.api.available_specs`, e.g.
        ``"unbiased_space_saving"`` or ``"misra_gries"``.
    size:
        The spec's primary size parameter: bin capacity for the Space
        Saving family and samplers, row width for CountMin / Count Sketch.
    backend:
        ``"inline"``, ``"sharded"`` or ``"parallel"``; scale-out backends
        are only available for specs that declare them (currently
        ``unbiased_space_saving``) and raise
        :class:`~repro.errors.CapabilityError` otherwise.
    window:
        Optional time policy making the session time-aware:
        ``"tumbling:<width>"``, ``"sliding:<horizon>/<pane>"`` or
        ``"decay:exp|poly:<rate>"`` (a
        :class:`~repro.windows.policy.WindowPolicy` instance also works).
        Windowed sessions accept ``timestamp=`` on ``update`` /
        ``timestamps=`` on ``update_batch`` and answer every query over
        the policy's time scope.  Windows run in-process only
        (``backend="inline"``).
    seed:
        Base seed.  Inline sessions pass it straight to the sketch;
        scale-out sessions seed shard ``i`` with ``seed + i``, matching
        the executors' own convention.
    num_shards:
        Shard count for the scale-out backends (default 4); rejected for
        ``backend="inline"``.
    num_workers, mp_context:
        Pool size / multiprocessing start method for ``backend="parallel"``
        (see :class:`~repro.distributed.parallel.ParallelSketchExecutor`);
        rejected for the other backends.
    merge_method:
        Reduction used by ``session.merged()`` on scale-out backends.
    params:
        Spec-specific extras (e.g. ``store=`` for the Space Saving family,
        ``depth=`` for the hashed sketches); unknown names raise
        :class:`~repro.errors.InvalidParameterError`.
    """
    sketch_spec = get_spec(spec)
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend != "parallel" and (num_workers is not None or mp_context is not None):
        raise InvalidParameterError(
            "num_workers/mp_context apply to backend='parallel' only"
        )

    if window is not None:
        from repro.windows.policy import parse_window_policy

        if backend != "inline":
            raise InvalidParameterError(
                "windowed sessions run in-process; window= requires "
                "backend='inline' (merge the window via session.merged() "
                "to hand state to a scale-out pipeline)"
            )
        if num_shards is not None:
            raise InvalidParameterError(
                "num_shards applies to the sharded/parallel backends only"
            )
        policy = parse_window_policy(window)
        remaining = dict(params)
        estimator = policy.build_sketch(spec, int(size), seed, remaining)
        return StreamSession(
            estimator, spec_name=spec, backend="inline", window=policy.describe()
        )

    if backend == "inline":
        if num_shards is not None:
            raise InvalidParameterError(
                "num_shards applies to the sharded/parallel backends only"
            )
        remaining = dict(params)
        estimator = sketch_spec.build_estimator(size, seed, remaining)
        if remaining:
            raise InvalidParameterError(
                f"unknown parameters for spec {spec!r}: {sorted(remaining)}; "
                f"accepted extras: {sorted(sketch_spec.extra_params)}"
            )
        return StreamSession(estimator, spec_name=spec, backend="inline")

    if backend not in sketch_spec.backends:
        raise CapabilityError(
            f"spec {spec!r} does not support backend {backend!r} "
            f"(supported: {sketch_spec.backends}); scale-out execution "
            "requires a mergeable unbiased sketch"
        )
    if params:
        raise InvalidParameterError(
            f"spec parameters {sorted(params)} are not configurable on "
            f"backend {backend!r}; build inline or configure the executor directly"
        )
    shards = DEFAULT_NUM_SHARDS if num_shards is None else int(num_shards)

    if backend == "sharded":
        from repro.distributed.sharded import ShardedSketch

        estimator = ShardedSketch(
            int(size), shards, seed=seed, merge_method=merge_method
        )
    else:
        from repro.distributed.parallel import ParallelSketchExecutor

        estimator = ParallelSketchExecutor(
            int(size),
            shards,
            seed=seed,
            merge_method=merge_method,
            num_workers=num_workers,
            mp_context=mp_context,
        )
    return StreamSession(estimator, spec_name=spec, backend=backend)
