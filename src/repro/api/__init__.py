"""``repro.api`` — the unified estimator protocol and construction facade.

Three layers, one import:

* **Protocols** (:mod:`repro.api.protocols`) — runtime-checkable
  capability types (:class:`PointEstimator`, :class:`SubsetSumEstimator`,
  :class:`HeavyHitterEstimator`, :class:`Mergeable`, :class:`Serializable`)
  plus the :func:`capabilities` inspector.
* **Specs** (:mod:`repro.api.specs`) — the registry of buildable
  estimator types, sharing class resolution with the :mod:`repro.io`
  type registry.
* **Facade** (:mod:`repro.api.build` / :mod:`repro.api.session`) —
  :func:`build` produces a backend-transparent :class:`StreamSession`
  whose every read path returns :class:`EstimateWithError` or
  :class:`QueryResult`.

>>> from repro.api import build, capabilities
>>> with build("unbiased_space_saving", size=16, seed=1) as session:
...     _ = session.extend(["x", "y", "x"])
...     total = session.total().estimate
>>> total
3.0
"""

from repro.api.build import BACKENDS, build
from repro.api.protocols import (
    CAPABILITY_PROTOCOLS,
    HEAVY_HITTERS,
    MERGE,
    POINT,
    SERIALIZE,
    SUBSET_SUM,
    HeavyHitterEstimator,
    Mergeable,
    PointEstimator,
    Serializable,
    SubsetSumEstimator,
    capabilities,
    require_capability,
    supports,
)
from repro.api.session import StreamSession
from repro.api.specs import (
    SketchSpec,
    available_specs,
    get_spec,
    iter_specs,
    register_spec,
)
from repro.core.variance import EstimateWithError
from repro.errors import CapabilityError
from repro.query.engine import QueryResult

__all__ = [
    "BACKENDS",
    "CAPABILITY_PROTOCOLS",
    "CapabilityError",
    "EstimateWithError",
    "HEAVY_HITTERS",
    "HeavyHitterEstimator",
    "MERGE",
    "Mergeable",
    "POINT",
    "PointEstimator",
    "QueryResult",
    "SERIALIZE",
    "SUBSET_SUM",
    "Serializable",
    "SketchSpec",
    "StreamSession",
    "SubsetSumEstimator",
    "available_specs",
    "build",
    "capabilities",
    "get_spec",
    "iter_specs",
    "register_spec",
    "require_capability",
    "supports",
]
