"""The sketch spec registry behind :func:`repro.build`.

A :class:`SketchSpec` describes one buildable estimator: the class it
resolves to, how a ``(size, seed, params)`` triple maps onto that class's
constructor, the capabilities a default-configured instance provides, and
which execution backends (``inline`` / ``sharded`` / ``parallel``) it can
run on.  Class resolution goes through the :mod:`repro.io` type registry
first — the same ``type name -> module`` map the serialization layer
dispatches on — so a spec'd type and a deserializable type are the same
notion wherever possible; non-serializable estimators carry an explicit
``module`` fallback.

>>> spec = get_spec("unbiased_space_saving")
>>> spec.type_name
'UnbiasedSpaceSaving'
>>> sorted(spec.backends)
['inline', 'parallel', 'sharded']
>>> "misra_gries" in available_specs()
True
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Optional, Tuple, Type

from repro.api.protocols import HEAVY_HITTERS, MERGE, POINT, SERIALIZE, SUBSET_SUM
from repro.errors import InvalidParameterError, SerializationError

__all__ = [
    "SketchSpec",
    "register_spec",
    "get_spec",
    "available_specs",
    "iter_specs",
]

#: ``(cls, size, seed, params)`` -> estimator instance.  ``params`` is a
#: private mutable copy: factories pop what they consume and the builder
#: rejects leftovers so typos fail loudly.
SpecFactory = Callable[[Type, int, Optional[int], Dict[str, Any]], Any]


@dataclass(frozen=True)
class SketchSpec:
    """A buildable estimator type and its construction/capability contract.

    Attributes
    ----------
    name:
        The spec name accepted by :func:`repro.build`.
    type_name:
        The class name, resolved through the :mod:`repro.io` type registry
        (or ``module`` when the class is not serializable).
    summary:
        One-line description shown in error messages and docs.
    capabilities:
        Capability names a *default-configured* instance provides; the
        conformance suite asserts each built instance actually satisfies
        them.
    backends:
        Execution backends :func:`repro.build` accepts for this spec.
    module:
        Fallback module path for types outside the io registry.
    factory:
        Maps ``(cls, size, seed, params)`` to an instance.
    """

    name: str
    type_name: str
    summary: str
    capabilities: FrozenSet[str]
    factory: SpecFactory
    backends: Tuple[str, ...] = ("inline",)
    module: Optional[str] = None
    extra_params: Tuple[str, ...] = field(default=())

    def resolve(self) -> Type:
        """Import and return the estimator class for this spec."""
        if self.module is None:
            from repro.io.registry import resolve_sketch_type

            try:
                return resolve_sketch_type(self.type_name)
            except SerializationError as error:  # pragma: no cover - config bug
                raise InvalidParameterError(
                    f"spec {self.name!r} names unregistered type {self.type_name!r}"
                ) from error
        module = importlib.import_module(self.module)
        return getattr(module, self.type_name)

    def build_estimator(self, size: int, seed: Optional[int], params: Dict[str, Any]):
        """Construct one inline estimator, consuming ``params`` in place."""
        if size < 1:
            raise InvalidParameterError("size must be a positive integer")
        return self.factory(self.resolve(), int(size), seed, params)


_SPECS: Dict[str, SketchSpec] = {}


def register_spec(spec: SketchSpec) -> SketchSpec:
    """Add a spec to the registry (overwriting any previous same-named one)."""
    _SPECS[spec.name] = spec
    return spec


def get_spec(name: str) -> SketchSpec:
    """Look a spec up by name.

    Raises
    ------
    InvalidParameterError
        When no spec of that name is registered; the message lists the
        registered names.
    """
    spec = _SPECS.get(name)
    if spec is None:
        raise InvalidParameterError(
            f"unknown sketch spec {name!r}; registered specs: {available_specs()}"
        )
    return spec


def available_specs() -> Tuple[str, ...]:
    """The registered spec names, sorted."""
    return tuple(sorted(_SPECS))


def iter_specs() -> Tuple[SketchSpec, ...]:
    """All registered specs, sorted by name."""
    return tuple(_SPECS[name] for name in available_specs())


# ----------------------------------------------------------------------
# Built-in specs
# ----------------------------------------------------------------------
def _uss_factory(cls, size, seed, params):
    return cls(size, seed=seed, store=params.pop("store", "auto"))


def _adaptive_uss_factory(cls, size, seed, params):
    return cls(
        size,
        seed=seed,
        max_capacity=params.pop("max_capacity", None),
        growth_trigger=params.pop("growth_trigger", None),
    )


def _dss_factory(cls, size, seed, params):
    return cls(size, seed=seed, store=params.pop("store", "columnar"))


def _capacity_factory(cls, size, seed, params):
    return cls(size, seed=seed)


def _lossy_factory(cls, size, seed, params):
    # ``size`` doubles as the bucket width; epsilon = 1/size unless given.
    return cls(params.pop("epsilon", 1.0 / size), capacity=size, seed=seed)


def _sticky_factory(cls, size, seed, params):
    return cls(
        params.pop("epsilon", 1.0 / size),
        params.pop("delta", 0.01),
        seed=seed,
    )


def _countmin_factory(cls, size, seed, params):
    # ``size`` is the row width; tracking defaults on so the built session
    # has the full point/heavy-hitter surface (pass 0 to disable).
    return cls(
        width=size,
        depth=params.pop("depth", 4),
        conservative=params.pop("conservative", False),
        track_heavy_hitters=params.pop("track_heavy_hitters", min(size, 64)),
        seed=seed,
    )


def _count_sketch_factory(cls, size, seed, params):
    return cls(
        width=size,
        depth=params.pop("depth", 5),
        seed=seed,
        track_keys=params.pop("track_keys", min(size, 64)),
    )


def _counting_sample_factory(cls, size, seed, params):
    return cls(params.pop("sampling_rate", 0.1), capacity=size, seed=seed)


def _sample_hold_factory(cls, size, seed, params):
    return cls(size, rate_decrease=params.pop("rate_decrease", 0.9), seed=seed)


register_spec(SketchSpec(
    name="unbiased_space_saving",
    type_name="UnbiasedSpaceSaving",
    summary="the paper's unbiased sketch: point + subset sum + heavy hitters",
    capabilities=frozenset({POINT, SUBSET_SUM, HEAVY_HITTERS, MERGE, SERIALIZE}),
    factory=_uss_factory,
    backends=("inline", "sharded", "parallel"),
    extra_params=("store",),
))

register_spec(SketchSpec(
    name="adaptive_unbiased_space_saving",
    type_name="AdaptiveUnbiasedSpaceSaving",
    summary="unbiased space saving with on-the-fly capacity growth",
    capabilities=frozenset({POINT, SUBSET_SUM, HEAVY_HITTERS}),
    factory=_adaptive_uss_factory,
    module="repro.core.adaptive",
    extra_params=("max_capacity", "growth_trigger"),
))

register_spec(SketchSpec(
    name="deterministic_space_saving",
    type_name="DeterministicSpaceSaving",
    summary="classic Space Saving: biased subset sums, frequent-item baseline",
    capabilities=frozenset({POINT, HEAVY_HITTERS, SERIALIZE}),
    factory=_dss_factory,
    extra_params=("store",),
))

register_spec(SketchSpec(
    name="misra_gries",
    type_name="MisraGriesSketch",
    summary="decrement-based frequent items with mergeable summaries",
    capabilities=frozenset({POINT, HEAVY_HITTERS, MERGE, SERIALIZE}),
    factory=_capacity_factory,
))

register_spec(SketchSpec(
    name="lossy_counting",
    type_name="LossyCountingSketch",
    summary="bucketed frequent items with deterministic epsilon error",
    capabilities=frozenset({POINT, HEAVY_HITTERS, SERIALIZE}),
    factory=_lossy_factory,
    extra_params=("epsilon",),
))

register_spec(SketchSpec(
    name="sticky_sampling",
    type_name="StickySamplingSketch",
    summary="probabilistic frequent items with rate halving",
    capabilities=frozenset({POINT, HEAVY_HITTERS, SERIALIZE}),
    factory=_sticky_factory,
    extra_params=("epsilon", "delta"),
))

register_spec(SketchSpec(
    name="countmin",
    type_name="CountMinSketch",
    summary="additive-error point counts; enumerates via tracked top-k",
    capabilities=frozenset({POINT, HEAVY_HITTERS, SERIALIZE}),
    factory=_countmin_factory,
    extra_params=("depth", "conservative", "track_heavy_hitters"),
))

register_spec(SketchSpec(
    name="count_sketch",
    type_name="CountSketch",
    summary="signed/turnstile unbiased point counts; tracked-key enumeration",
    capabilities=frozenset({POINT, HEAVY_HITTERS, SERIALIZE}),
    factory=_count_sketch_factory,
    extra_params=("depth", "track_keys"),
))

register_spec(SketchSpec(
    name="bottom_k",
    type_name="BottomKSketch",
    summary="uniform item sample with exact per-item counts",
    capabilities=frozenset({POINT, SUBSET_SUM, HEAVY_HITTERS, SERIALIZE}),
    factory=_capacity_factory,
))

register_spec(SketchSpec(
    name="reservoir",
    type_name="ReservoirSampler",
    summary="uniform row sample (Algorithm R); unit-weight rows only",
    capabilities=frozenset({POINT, SUBSET_SUM, SERIALIZE}),
    factory=_capacity_factory,
))

register_spec(SketchSpec(
    name="counting_sample",
    type_name="CountingSampleSketch",
    summary="fixed-rate sample-and-hold (counting samples)",
    capabilities=frozenset({POINT, SUBSET_SUM, HEAVY_HITTERS}),
    factory=_counting_sample_factory,
    module="repro.samplehold.counting_samples",
    extra_params=("sampling_rate",),
))

register_spec(SketchSpec(
    name="adaptive_sample_and_hold",
    type_name="AdaptiveSampleAndHold",
    summary="sample-and-hold with rate decrease to a bounded footprint",
    capabilities=frozenset({POINT, SUBSET_SUM, HEAVY_HITTERS}),
    factory=_sample_hold_factory,
    module="repro.samplehold.adaptive",
    extra_params=("rate_decrease",),
))

register_spec(SketchSpec(
    name="step_sample_and_hold",
    type_name="StepSampleAndHold",
    summary="stepwise sample-and-hold keeping per-step counts",
    capabilities=frozenset({POINT, SUBSET_SUM, HEAVY_HITTERS}),
    factory=_sample_hold_factory,
    module="repro.samplehold.step",
    extra_params=("rate_decrease",),
))
