"""Deterministic Space Saving (Metwally, Agrawal and El Abbadi, 2005).

This is the classic frequent-item sketch the paper's contribution modifies:
maintain ``m`` labeled counters; an arriving item that already labels a bin
increments that bin, and an arriving item that does not *always* takes over a
minimum-count bin (replacement probability ``p = 1`` in Algorithm 1).

The sketch offers deterministic guarantees — every counter overestimates the
true count by at most ``n_tot / m`` — which makes it excellent for frequent
item identification on i.i.d. data, but its counts are biased upward, and on
non-i.i.d. (e.g. partially sorted) streams it can fail completely at the
disaggregated subset sum problem (§6.3 of the paper, reproduced in
figures 7 and 10).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro._typing import Item
from repro.core.base import (
    BinStore,
    FrequentItemSketch,
    HeapBinStore,
    StreamSummaryBinStore,
)
from repro.core.batching import collapse_batch, collapse_batch_arrays
from repro.core.columnar import ColumnarCounterStore
from repro.errors import InvalidParameterError, UnsupportedUpdateError
from repro.io.codec import (
    decode_item,
    encode_item,
    rng_state_from_jsonable,
    rng_state_to_jsonable,
)
from repro.io.serializable import SerializableSketch

__all__ = ["DeterministicSpaceSaving"]


class DeterministicSpaceSaving(FrequentItemSketch, SerializableSketch):
    """The original Space Saving sketch (``p = 1`` label replacement).

    Parameters
    ----------
    capacity:
        Number of bins ``m``.
    seed:
        Seed for the tie-breaking generator.  The deterministic sketch only
        uses randomness to break ties among equal minimum bins, matching the
        randomized tie-breaking assumed by the paper's analysis.
    store:
        ``"columnar"`` (the default) keeps counters in the struct-of-arrays
        store of :mod:`repro.core.columnar`, whose batched kernel never
        touches per-bin Python objects; it is float-native, so real-valued
        weights need no opt-in.  ``"stream_summary"`` (integer counters,
        O(1) unit updates) and ``"heap"`` (float counters, O(log m)
        updates) select the historical scalar stores, whose tie-breaking
        draw sequences differ from the columnar kernel's priority
        discipline.

    Notes
    -----
    In addition to the counter, each bin records the *acquisition error*
    ``ε_i`` — the counter value the bin held when its current label took it
    over.  ``N̂_i - ε_i`` is a lower bound on the true count, which yields the
    classic guaranteed heavy-hitter report.

    Example
    -------
    >>> sketch = DeterministicSpaceSaving(capacity=2)
    >>> for item in ["a", "a", "b", "c"]:
    ...     sketch.update(item)
    >>> sketch.estimate("a")
    2.0
    """

    def __init__(
        self,
        capacity: int,
        *,
        seed: Optional[int] = None,
        store: str = "columnar",
    ) -> None:
        super().__init__(capacity, seed=seed)
        self._store = self._make_store(store, seed)
        self._store_kind = store
        #: acquisition errors for the scalar stores; the columnar store
        #: tracks them in its own error column instead.
        self._acquisition_error: Dict[Item, float] = {}

    def _make_store(self, store: str, seed: Optional[int] = None) -> BinStore:
        if store == "columnar":
            return ColumnarCounterStore(
                self._capacity,
                generator=np.random.Generator(np.random.PCG64(seed)),
                track_errors=True,
            )
        if store == "stream_summary":
            return StreamSummaryBinStore(rng=self._rng)
        if store == "heap":
            return HeapBinStore(rng=self._rng)
        raise InvalidParameterError(
            f"unknown store {store!r}; expected 'columnar', 'stream_summary' or 'heap'"
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one raw row.

        ``weight`` must be positive; the stream-summary store additionally
        requires it to be an integer.  Use ``store="heap"`` for real-valued
        streams.
        """
        if weight <= 0 or not np.isfinite(weight):
            raise UnsupportedUpdateError(
                "Deterministic Space Saving requires positive weights (finite)"
            )
        store = self._store
        if isinstance(store, ColumnarCounterStore):
            self._record_update(weight)
            store.apply_one(item, float(weight), always_replace=True)
            return
        self._record_update(weight)
        if item in store:
            store.increment(item, weight)
            return
        if len(store) < self._capacity:
            store.insert(item, weight)
            self._acquisition_error[item] = 0.0
            return
        min_label = store.min_label()
        min_count = store.get(min_label)
        store.increment(min_label, weight)
        store.relabel(min_label, item)
        del self._acquisition_error[min_label]
        self._acquisition_error[item] = min_count

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
    ) -> "DeterministicSpaceSaving":
        """Batched ingestion: collapse duplicates, then apply weighted updates.

        On the scalar stores this is equivalent to a scalar :meth:`update`
        loop over the batch's collapsed ``(item, summed weight)`` pairs in
        first-occurrence order, with the per-call bookkeeping hoisted.  The
        columnar store applies the collapsed pairs in the kernel's phased
        order instead (see :mod:`repro.core.columnar`); the deterministic
        over-count bound is unaffected.  ``rows_processed`` counts raw rows.
        """
        if (
            isinstance(self._store, ColumnarCounterStore)
            and isinstance(items, np.ndarray)
            and items.dtype != object
        ):
            unique, collapsed, row_count, total = collapse_batch_arrays(items, weights)
        else:
            unique, collapsed, row_count, total = collapse_batch(items, weights)
        if len(unique) == 0:
            return self
        store = self._store
        if isinstance(store, ColumnarCounterStore):
            collapsed = np.ascontiguousarray(collapsed, dtype=np.float64)
            # See the unbiased sketch: NaN passes a min() <= 0 test and
            # +inf collides with the free-slot sentinel.
            if not np.isfinite(collapsed).all() or collapsed.min() <= 0:
                raise UnsupportedUpdateError(
                    "Deterministic Space Saving requires positive weights (finite)"
                )
            store.apply_batch(unique, collapsed, always_replace=True)
            self._rows_processed += row_count
            self._total_weight += total
            return self
        if min(collapsed) <= 0:
            raise UnsupportedUpdateError(
                "Deterministic Space Saving requires positive weights"
            )
        capacity = self._capacity
        if all(item in store for item in unique):
            store.increment_batch(list(zip(unique, collapsed)))
        else:
            acquisition_error = self._acquisition_error
            for item, weight in zip(unique, collapsed):
                if item in store:
                    store.increment(item, weight)
                    continue
                if len(store) < capacity:
                    store.insert(item, weight)
                    acquisition_error[item] = 0.0
                    continue
                min_label = store.min_label()
                min_count = store.get(min_label)
                store.increment(min_label, weight)
                store.relabel(min_label, item)
                del acquisition_error[min_label]
                acquisition_error[item] = min_count
        self._rows_processed += row_count
        self._total_weight += total
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Estimated count; an upper bound on the true count of ``item``."""
        return self._store.get(item, 0.0)

    def estimates(self) -> Dict[Item, float]:
        return self._store.counts()

    def acquisition_error(self, item: Item) -> float:
        """The ``ε_i`` over-count bound for a retained item (0 if absent)."""
        if isinstance(self._store, ColumnarCounterStore):
            return self._store.acquisition_error(item)
        return self._acquisition_error.get(item, 0.0)

    def lower_bound(self, item: Item) -> float:
        """Guaranteed lower bound ``N̂_i − ε_i`` on the true count of ``item``."""
        return max(0.0, self.estimate(item) - self.acquisition_error(item))

    def error_bound(self) -> float:
        """Deterministic error bound shared by every estimate.

        Every counter overestimates its item's true count by at most the
        current minimum counter, which itself is at most ``n_tot / m``.
        """
        if len(self._store) < self._capacity or len(self._store) == 0:
            return 0.0
        return self._store.min_count()

    def guaranteed_heavy_hitters(self, phi: float) -> Dict[Item, float]:
        """Items that are *provably* above the ``phi`` relative frequency.

        An item is guaranteed frequent when its lower bound exceeds the
        threshold ``phi * n_tot``.
        """
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        threshold = phi * self._total_weight
        return {
            item: count
            for item, count in self.estimates().items()
            if count - self.acquisition_error(item) >= threshold
        }

    def possible_heavy_hitters(self, phi: float) -> Dict[Item, float]:
        """Items that *may* be above the threshold (estimate exceeds it)."""
        return self.heavy_hitters(phi)

    def to_misra_gries_estimates(self) -> Dict[Item, float]:
        """Convert to the isomorphic Misra-Gries estimates (§5.2).

        The Misra-Gries estimate equals the Space Saving estimate soft
        thresholded by the minimum counter:
        ``N̂_i^MG = (N̂_i − N̂_min)_+``.
        """
        if len(self._store) == 0:
            return {}
        min_count = self._store.min_count() if len(self._store) >= self._capacity else 0.0
        return {
            item: max(0.0, count - min_count)
            for item, count in self.estimates().items()
        }

    def bins(self) -> List[Tuple[Item, float, float]]:
        """Return ``(label, count, acquisition_error)`` for every bin."""
        return [
            (item, count, self.acquisition_error(item))
            for item, count in self._store.items()
        ]

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        meta = {
            "capacity": self._capacity,
            "store": self._store_kind,
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
            "rng_state": rng_state_to_jsonable(self._rng.getstate()),
        }
        if isinstance(self._store, ColumnarCounterStore):
            rows = self._store.state_rows()
            meta["active_store"] = "columnar"
            meta["labels"] = [encode_item(label) for label, _, _, _ in rows]
            meta["kernel_rng_state"] = self._store.generator_state()
            arrays = {
                "counts": np.asarray([c for _, c, _, _ in rows], dtype=np.float64),
                "priorities": np.asarray([p for _, _, p, _ in rows], dtype=np.float64),
                "acquisition_errors": np.asarray(
                    [e for _, _, _, e in rows], dtype=np.float64
                ),
            }
            return meta, arrays
        labels: List[object] = []
        counts: List[float] = []
        errors: List[float] = []
        for label, count in self._store.items():
            labels.append(encode_item(label))
            counts.append(float(count))
            errors.append(float(self._acquisition_error.get(label, 0.0)))
        meta["labels"] = labels
        arrays = {
            "counts": np.asarray(counts, dtype=np.float64),
            "acquisition_errors": np.asarray(errors, dtype=np.float64),
        }
        return meta, arrays

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        sketch = cls(int(meta["capacity"]), store=meta["store"])
        # Frames written before the columnar store carry no "active_store"
        # key; their store kind names the active scalar store directly.
        if meta.get("active_store") == "columnar":
            store = sketch._store
            for label, count, priority, error in zip(
                meta["labels"],
                arrays["counts"],
                arrays["priorities"],
                arrays["acquisition_errors"],
            ):
                store.restore_bin(
                    decode_item(label), float(count), float(priority), float(error)
                )
            store.set_generator_state(meta["kernel_rng_state"])
        else:
            for label, count, error in zip(
                meta["labels"], arrays["counts"], arrays["acquisition_errors"]
            ):
                item = decode_item(label)
                sketch._store.insert(item, float(count))
                sketch._acquisition_error[item] = float(error)
        sketch._rows_processed = int(meta["rows_processed"])
        sketch._total_weight = float(meta["total_weight"])
        sketch._rng.setstate(rng_state_from_jsonable(meta["rng_state"]))
        return sketch
