"""Variance estimation and confidence intervals for subset sum estimates.

Section 6.4 of the paper derives an upper bound on the variance of an
Unbiased Space Saving subset sum (equation 3) and a practical plug-in
estimator for it (equation 5):

    Var̂(N̂_S) = N̂_min² · C_S

where ``N̂_min`` is the minimum bin count and ``C_S`` is the number of
retained items belonging to the queried subset (at least 1).  The estimator
is intentionally upward biased so that it stays valid for pathological,
non-i.i.d. streams; §6.4 shows it is close to the variance of a probability
proportional to size (PPS) sample in the i.i.d. regime.

Section 6.5 turns the variance estimate into Normal confidence intervals for
sufficiently large subset sums.  Everything here is a pure function of a few
summary statistics, so the same code serves the sketches, the merged /
distributed estimators and the evaluation harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Iterable, Sequence, Tuple

from repro.errors import InvalidParameterError

__all__ = [
    "EstimateWithError",
    "subset_variance_estimate",
    "pps_variance_bound",
    "poisson_pps_variance",
    "normal_confidence_interval",
    "coverage",
]


@dataclass(frozen=True)
class EstimateWithError:
    """A point estimate bundled with its estimated variance.

    Attributes
    ----------
    estimate:
        The unbiased subset sum estimate ``N̂_S``.
    variance:
        The (upward biased) variance estimate ``Var̂(N̂_S)``.
    """

    estimate: float
    variance: float

    @property
    def std_error(self) -> float:
        """Standard error, the square root of the variance estimate."""
        return math.sqrt(max(0.0, self.variance))

    def confidence_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Normal confidence interval ``estimate ± z · std_error``."""
        return normal_confidence_interval(self.estimate, self.variance, confidence)

    def relative_error_bound(self, confidence: float = 0.95) -> float:
        """Half-width of the confidence interval relative to the estimate.

        Returns ``inf`` when the estimate is zero.
        """
        low, high = self.confidence_interval(confidence)
        if self.estimate == 0:
            return float("inf")
        return (high - low) / 2.0 / abs(self.estimate)


def subset_variance_estimate(min_count: float, items_in_subset: int) -> float:
    """Equation 5: ``Var̂(N̂_S) = N̂_min² · C_S``.

    Parameters
    ----------
    min_count:
        The minimum bin count ``N̂_min`` of the sketch.
    items_in_subset:
        ``C_S`` — how many retained items fall in the queried subset.  The
        paper takes the greater of 1 and the observed count so that empty
        intersections still report non-zero uncertainty.
    """
    if min_count < 0:
        raise InvalidParameterError("min_count must be non-negative")
    if items_in_subset < 0:
        raise InvalidParameterError("items_in_subset must be non-negative")
    effective = max(1, items_in_subset)
    return float(min_count) ** 2 * effective


def pps_variance_bound(count: float, inclusion_probability: float, alpha: float) -> float:
    """Equation 1: variance bound for one item of a fixed-size PPS sample.

    ``Var(N̂_i) ≤ α · n_i · (1 − π_i)`` where ``α`` is the PPS threshold
    (expected minimum bin size) and ``π_i`` the inclusion probability.
    """
    if not 0 <= inclusion_probability <= 1:
        raise InvalidParameterError("inclusion probability must be in [0, 1]")
    if count < 0 or alpha < 0:
        raise InvalidParameterError("count and alpha must be non-negative")
    return alpha * count * (1.0 - inclusion_probability)


def poisson_pps_variance(counts: Iterable[float], alpha: float) -> float:
    """Variance of a Poisson PPS subset sum with threshold ``alpha``.

    For Poisson PPS sampling with inclusion probabilities
    ``π_i = min(1, n_i / α)`` the Horvitz-Thompson subset sum has variance
    ``Σ_i n_i² (1 − π_i) / π_i``; items with ``π_i = 1`` contribute nothing.
    This is the "gold standard" the sketch's estimator is compared against in
    figure 9.
    """
    if alpha <= 0:
        raise InvalidParameterError("alpha must be positive")
    total = 0.0
    for count in counts:
        if count < 0:
            raise InvalidParameterError("counts must be non-negative")
        if count == 0:
            continue
        pi = min(1.0, count / alpha)
        if pi < 1.0:
            total += count * count * (1.0 - pi) / pi
    return total


def normal_confidence_interval(
    estimate: float, variance: float, confidence: float = 0.95
) -> Tuple[float, float]:
    """Two-sided Normal confidence interval for an unbiased estimate.

    Parameters
    ----------
    estimate:
        The point estimate.
    variance:
        Its estimated variance; negative values are clamped to zero.
    confidence:
        Coverage level in ``(0, 1)``, e.g. ``0.95``.
    """
    if not 0 < confidence < 1:
        raise InvalidParameterError("confidence must lie strictly between 0 and 1")
    z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    half_width = z * math.sqrt(max(0.0, variance))
    return estimate - half_width, estimate + half_width


def coverage(
    intervals: Sequence[Tuple[float, float]], truths: Sequence[float]
) -> float:
    """Fraction of confidence intervals containing their true values.

    Used to reproduce the coverage panel of figure 8: a well calibrated 95%
    interval should contain the truth about 95% of the time; the paper's
    (deliberately conservative) variance estimate yields coverage at or above
    the nominal level except for very small subsets.
    """
    if len(intervals) != len(truths):
        raise InvalidParameterError("intervals and truths must have equal length")
    if not intervals:
        raise InvalidParameterError("coverage of an empty collection is undefined")
    hits = sum(1 for (low, high), truth in zip(intervals, truths) if low <= truth <= high)
    return hits / len(intervals)
