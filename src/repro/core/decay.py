"""Time-decayed aggregation with forward decay (§5.3 extension).

Many monitoring applications care more about recent activity than old
activity.  Forward decay (Cormode, Shkapenyuk, Srivastava and Xu, 2009)
achieves this without rescaling old counters: a row with timestamp ``t_j``
is ingested with weight ``g(t_j − L)`` for a fixed landmark ``L`` and a
non-decreasing function ``g``; at query time ``t`` the decayed count of an
item is

    Σ_j g(t_j − L) / g(t − L)

so only a single division by ``g(t − L)`` is needed at query time.  Because
the ingested weights are positive reals, the sketch underneath is an
Unbiased Space Saving instance with the heap-backed store, and every decayed
subset sum inherits the unbiasedness of the underlying sketch (the decay is
a deterministic reweighting of the stream).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from repro._typing import Item, ItemPredicate
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError

__all__ = [
    "exponential_decay",
    "polynomial_decay",
    "ForwardDecaySketch",
]


def exponential_decay(rate: float) -> Callable[[float], float]:
    """Forward-decay weight function ``g(a) = exp(rate · a)``.

    ``rate`` is the decay rate per unit of stream time; the effective decayed
    weight of a row aged ``d`` time units at query time is ``exp(−rate · d)``.
    """
    if rate < 0:
        raise InvalidParameterError("decay rate must be non-negative")

    def g(age: float) -> float:
        return math.exp(rate * age)

    return g


def polynomial_decay(exponent: float) -> Callable[[float], float]:
    """Forward-decay weight function ``g(a) = max(a, 0)^exponent``."""
    if exponent < 0:
        raise InvalidParameterError("decay exponent must be non-negative")

    def g(age: float) -> float:
        return max(age, 0.0) ** exponent

    return g


class ForwardDecaySketch:
    """Time-decayed Unbiased Space Saving via forward decay.

    Parameters
    ----------
    capacity:
        Number of bins in the underlying sketch.
    decay:
        The non-decreasing weight function ``g``; use
        :func:`exponential_decay` or :func:`polynomial_decay`.
    landmark:
        The landmark time ``L``; rows must not be older than the landmark.
    seed:
        Seed for the underlying sketch's randomness.

    Example
    -------
    >>> sketch = ForwardDecaySketch(capacity=4, decay=exponential_decay(0.1), seed=0)
    >>> sketch.update("a", timestamp=1.0)
    >>> sketch.update("b", timestamp=10.0)
    >>> sketch.decayed_estimate("b", at_time=10.0) > sketch.decayed_estimate("a", at_time=10.0)
    True
    """

    def __init__(
        self,
        capacity: int,
        *,
        decay: Callable[[float], float],
        landmark: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        self._decay = decay
        self._landmark = float(landmark)
        self._sketch = UnbiasedSpaceSaving(capacity, seed=seed, store="heap")
        self._latest_timestamp = float(landmark)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Bin budget of the underlying sketch."""
        return self._sketch.capacity

    @property
    def landmark(self) -> float:
        """The forward-decay landmark time ``L``."""
        return self._landmark

    @property
    def latest_timestamp(self) -> float:
        """Largest timestamp ingested so far."""
        return self._latest_timestamp

    def update(self, item: Item, timestamp: float, weight: float = 1.0) -> None:
        """Ingest one row observed at ``timestamp`` with base weight ``weight``."""
        if timestamp < self._landmark:
            raise InvalidParameterError(
                f"timestamp {timestamp} precedes the landmark {self._landmark}"
            )
        if weight <= 0:
            raise InvalidParameterError("weights must be positive")
        decayed_weight = weight * self._decay(timestamp - self._landmark)
        if decayed_weight <= 0:
            raise InvalidParameterError(
                "decay function produced a non-positive ingest weight; "
                "polynomial decay requires timestamps strictly after the landmark"
            )
        self._sketch.update(item, decayed_weight)
        self._latest_timestamp = max(self._latest_timestamp, timestamp)

    def extend(self, rows) -> "ForwardDecaySketch":
        """Consume an iterable of ``(item, timestamp)`` or ``(item, timestamp, weight)``."""
        for row in rows:
            if len(row) == 2:
                item, timestamp = row
                self.update(item, timestamp)
            else:
                item, timestamp, weight = row
                self.update(item, timestamp, weight)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _normalizer(self, at_time: Optional[float]) -> float:
        query_time = self._latest_timestamp if at_time is None else float(at_time)
        if query_time < self._landmark:
            raise InvalidParameterError("query time precedes the landmark")
        normalizer = self._decay(query_time - self._landmark)
        if normalizer <= 0:
            raise InvalidParameterError("decay normalizer must be positive at query time")
        return normalizer

    def decayed_estimate(self, item: Item, at_time: Optional[float] = None) -> float:
        """Decayed count estimate for one item at ``at_time`` (default: latest)."""
        return self._sketch.estimate(item) / self._normalizer(at_time)

    def decayed_estimates(self, at_time: Optional[float] = None) -> Dict[Item, float]:
        """Decayed estimates for every retained item."""
        normalizer = self._normalizer(at_time)
        return {
            item: count / normalizer for item, count in self._sketch.estimates().items()
        }

    def decayed_subset_sum(
        self, predicate: ItemPredicate, at_time: Optional[float] = None
    ) -> float:
        """Unbiased decayed subset sum at ``at_time``."""
        normalizer = self._normalizer(at_time)
        return self._sketch.subset_sum(predicate) / normalizer

    def decayed_subset_sum_with_error(
        self, predicate: ItemPredicate, at_time: Optional[float] = None
    ) -> EstimateWithError:
        """Decayed subset sum with the scaled equation-5 variance estimate."""
        normalizer = self._normalizer(at_time)
        raw = self._sketch.subset_sum_with_error(predicate)
        return EstimateWithError(
            estimate=raw.estimate / normalizer,
            variance=raw.variance / (normalizer * normalizer),
        )

    def top_k(self, k: int, at_time: Optional[float] = None) -> Tuple[Tuple[Item, float], ...]:
        """The ``k`` items with the largest decayed estimates."""
        estimates = self.decayed_estimates(at_time)
        ranked = sorted(estimates.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return tuple(ranked[:k])

    @property
    def underlying_sketch(self) -> UnbiasedSpaceSaving:
        """The wrapped Unbiased Space Saving instance (undecayed weights)."""
        return self._sketch
