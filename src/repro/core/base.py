"""Sketch interfaces and the shared bin-store abstraction.

The paper's Algorithm 2 observes that every frequent-item sketch in the
Space Saving / Misra-Gries family can be decomposed into an *exact increment*
followed by a *reduction* that keeps the number of counters bounded.  The
classes here capture the pieces those sketches share:

* :class:`BinStore` — the mutable collection of ``(label, count)`` bins with
  fast minimum lookup.  Two implementations are provided: an integer-only
  store backed by :class:`~repro.core.stream_summary.StreamSummary` with
  ``O(1)`` unit updates, and a float-capable store backed by a lazy heap used
  by weighted updates, merges and time-decayed variants.
* :class:`FrequentItemSketch` — the abstract interface every frequent-item
  sketch in this package implements (update, point estimate, heavy hitters).
* :class:`SubsetSumSketch` — the extension implemented by sketches whose
  estimates are unbiased and therefore safe to aggregate into subset sums.
"""

from __future__ import annotations

import abc
import heapq
import itertools
import random
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro._typing import Item, ItemPredicate
from repro.core.batching import collapse_batch, iter_weighted_rows
from repro.core.stream_summary import StreamSummary
from repro.core.variance import EstimateWithError
from repro.errors import (
    EmptySketchError,
    InvalidParameterError,
    UnsupportedUpdateError,
)

__all__ = [
    "BinStore",
    "StreamSummaryBinStore",
    "HeapBinStore",
    "FrequentItemSketch",
    "SubsetSumSketch",
]


# ----------------------------------------------------------------------
# Bin stores
# ----------------------------------------------------------------------
class BinStore(abc.ABC):
    """A bounded collection of labeled counters with minimum lookup.

    A bin store does not enforce a capacity itself; the sketches do.  It only
    provides the primitive operations the reduction step needs.
    """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of bins currently stored."""

    @abc.abstractmethod
    def __contains__(self, item: Item) -> bool:
        """Whether ``item`` currently labels a bin."""

    @abc.abstractmethod
    def get(self, item: Item, default: float = 0.0) -> float:
        """Return the count for ``item`` or ``default`` when absent."""

    @abc.abstractmethod
    def insert(self, item: Item, count: float) -> None:
        """Add a new bin labeled ``item`` with the given count."""

    @abc.abstractmethod
    def remove(self, item: Item) -> float:
        """Remove the bin labeled ``item`` and return its count."""

    @abc.abstractmethod
    def increment(self, item: Item, by: float) -> float:
        """Add ``by`` to ``item``'s counter and return the new value."""

    def increment_batch(self, pairs: Iterable[Tuple[Item, float]]) -> None:
        """Increment several existing labels in one call.

        Equivalent to calling :meth:`increment` once per pair in order.
        Implementations may override it to amortize per-call overhead; every
        label must already be present.
        """
        for item, by in pairs:
            self.increment(item, by)

    @abc.abstractmethod
    def relabel(self, old: Item, new: Item) -> None:
        """Rename the bin labeled ``old`` to ``new`` keeping its count."""

    @abc.abstractmethod
    def min_label(self) -> Item:
        """Return the label of a minimum-count bin."""

    @abc.abstractmethod
    def min_count(self) -> float:
        """Return the smallest count stored."""

    @abc.abstractmethod
    def items(self) -> Iterator[Tuple[Item, float]]:
        """Iterate over ``(label, count)`` pairs in unspecified order."""

    def counts(self) -> Dict[Item, float]:
        """Snapshot of all bins as a plain dictionary."""
        return dict(self.items())


class StreamSummaryBinStore(BinStore):
    """Integer bin store with ``O(1)`` unit updates.

    Thin adapter over :class:`~repro.core.stream_summary.StreamSummary` so
    the sketches can swap between the integer structure and the float heap
    without branching in their update logic.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._summary = StreamSummary(rng=rng)

    def __len__(self) -> int:
        return len(self._summary)

    def __contains__(self, item: Item) -> bool:
        return item in self._summary

    def get(self, item: Item, default: float = 0.0) -> float:
        return float(self._summary.get(item, int(default)))

    def insert(self, item: Item, count: float) -> None:
        if count != int(count):
            raise UnsupportedUpdateError(
                "StreamSummaryBinStore only stores integer counts; "
                "use HeapBinStore for real-valued counters"
            )
        self._summary.insert(item, int(count))

    def remove(self, item: Item) -> float:
        return float(self._summary.remove(item))

    def increment(self, item: Item, by: float) -> float:
        if by != int(by):
            raise UnsupportedUpdateError(
                "StreamSummaryBinStore only supports integer increments"
            )
        return float(self._summary.increment(item, int(by)))

    def increment_batch(self, pairs: Iterable[Tuple[Item, float]]) -> None:
        checked = []
        for item, by in pairs:
            if by != int(by):
                raise UnsupportedUpdateError(
                    "StreamSummaryBinStore only supports integer increments"
                )
            checked.append((item, int(by)))
        self._summary.increment_many(checked)

    def relabel(self, old: Item, new: Item) -> None:
        self._summary.relabel(old, new)

    def min_label(self) -> Item:
        return self._summary.min_label()

    def min_count(self) -> float:
        return float(self._summary.min_count())

    def items(self) -> Iterator[Tuple[Item, float]]:
        for label, count in self._summary.items():
            yield label, float(count)

    def check_invariants(self) -> None:
        """Delegate structural invariant checks to the underlying summary."""
        self._summary.check_invariants()


class HeapBinStore(BinStore):
    """Float-capable bin store using a lazily invalidated min-heap.

    Updates cost ``O(log m)`` amortized.  This is the store used by weighted
    and real-valued sketches, by merged sketches whose counters are
    Horvitz-Thompson adjusted, and by the forward-decay variant whose
    counters grow exponentially.
    """

    _REMOVED = object()

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._counts: Dict[Item, float] = {}
        self._heap: List[List[object]] = []
        self._entries: Dict[Item, List[object]] = {}
        self._seq = itertools.count()
        self._rng = rng

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, item: Item) -> bool:
        return item in self._counts

    def get(self, item: Item, default: float = 0.0) -> float:
        return self._counts.get(item, default)

    def insert(self, item: Item, count: float) -> None:
        if item in self._counts:
            raise InvalidParameterError(f"label {item!r} already present")
        if count < 0:
            raise InvalidParameterError("counts must be non-negative")
        self._counts[item] = float(count)
        self._push(item, float(count))

    def remove(self, item: Item) -> float:
        count = self._counts.pop(item)
        entry = self._entries.pop(item)
        entry[2] = self._REMOVED
        return count

    def increment(self, item: Item, by: float) -> float:
        if by < 0:
            raise InvalidParameterError("increment must be non-negative")
        new_count = self._counts[item] + float(by)
        self._counts[item] = new_count
        entry = self._entries[item]
        entry[2] = self._REMOVED
        self._push(item, new_count)
        return new_count

    def relabel(self, old: Item, new: Item) -> None:
        if new in self._counts:
            raise InvalidParameterError(f"label {new!r} already present")
        count = self.remove(old)
        self.insert(new, count)

    def min_label(self) -> Item:
        entry = self._peek_min()
        label = entry[2]
        if self._rng is None:
            return label
        # Collect all labels tied at the minimum count for random tie breaks.
        min_count = entry[0]
        tied = [item for item, count in self._counts.items() if count == min_count]
        if len(tied) == 1:
            return tied[0]
        return self._rng.choice(tied)

    def min_count(self) -> float:
        return float(self._peek_min()[0])

    def items(self) -> Iterator[Tuple[Item, float]]:
        return iter(self._counts.items())

    def _push(self, item: Item, count: float) -> None:
        entry: List[object] = [count, next(self._seq), item]
        self._entries[item] = entry
        heapq.heappush(self._heap, entry)

    def _peek_min(self) -> List[object]:
        while self._heap:
            entry = self._heap[0]
            if entry[2] is self._REMOVED:
                heapq.heappop(self._heap)
                continue
            return entry
        raise EmptySketchError("bin store is empty")


# ----------------------------------------------------------------------
# Sketch interfaces
# ----------------------------------------------------------------------
class FrequentItemSketch(abc.ABC):
    """Interface shared by every frequent-item sketch in this package.

    A sketch consumes a *disaggregated* stream: one call to :meth:`update`
    per raw row (optionally weighted) rather than per pre-aggregated item.
    After ingestion it answers point queries (:meth:`estimate`), reports the
    complete set of retained items (:meth:`estimates`), and extracts heavy
    hitters above a relative frequency threshold.
    """

    def __init__(self, capacity: int, *, seed: Optional[int] = None) -> None:
        if capacity < 1:
            raise InvalidParameterError("capacity must be a positive integer")
        self._capacity = int(capacity)
        self._rng = random.Random(seed)
        self._rows_processed = 0
        self._total_weight = 0.0

    # -- configuration -------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of ``(item, count)`` bins the sketch retains."""
        return self._capacity

    @property
    def rows_processed(self) -> int:
        """Number of raw rows (update calls) the sketch has consumed."""
        return self._rows_processed

    @property
    def total_weight(self) -> float:
        """Total weight ingested; equals ``rows_processed`` for unit updates."""
        return self._total_weight

    # -- ingestion -------------------------------------------------------
    @abc.abstractmethod
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one raw row for ``item`` with the given ``weight``."""

    def extend(
        self, rows: Iterable[Union[Item, Tuple[Item, float]]]
    ) -> "FrequentItemSketch":
        """Consume an iterable of rows.

        Each row may be a bare item (weight 1) or an ``(item, weight)`` pair
        (see :func:`repro.core.batching.iter_weighted_rows` for the pair
        heuristic).  Returns ``self`` to allow fluent construction.  This is
        the one ingestion spelling shared by sketches, ensembles and
        :class:`repro.api.StreamSession`.
        """
        for item, weight in iter_weighted_rows(rows):
            self.update(item, weight)
        return self

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
    ) -> "FrequentItemSketch":
        """Ingest a whole batch of rows at once.

        The batch is first collapsed with
        :func:`repro.core.batching.collapse_batch` — all rows for the same
        item within the batch are pre-aggregated into a single weighted
        update — and then applied as one :meth:`update` per distinct item in
        first-occurrence order.  A pre-aggregated batch is itself a valid
        weighted stream, so every estimator guarantee (unbiasedness,
        deterministic error bounds) carries over; for purely additive
        sketches the result is bit-identical to the raw row loop.

        ``rows_processed`` advances by the number of raw rows in the batch
        and ``total_weight`` by their summed weight, exactly as if the rows
        had been fed one at a time.

        Sketches whose ``update`` is defined for unit rows only (Lossy
        Counting, Sticky Sampling, Sample-and-Hold) accept batches through
        this path only when no item repeats within the batch — a collapsed
        duplicate produces a weight above 1, which their ``update``
        rejects explicitly rather than misapplies.

        Parameters
        ----------
        items:
            Item labels, one per raw row — a numpy array (vectorized
            collapse), list or any iterable of hashable items.
        weights:
            Optional per-row weights aligned with ``items``; ``None`` means
            unit weights.  Weight validation applies to the *aggregated*
            per-item weights.

        Returns ``self`` to allow fluent construction.
        """
        unique, collapsed, row_count, _ = collapse_batch(items, weights)
        for item, weight in zip(unique, collapsed):
            self.update(item, weight)
        # update() recorded one row per distinct item; account for the
        # collapsed duplicates so rows_processed reflects raw rows.
        self._rows_processed += row_count - len(unique)
        return self

    def _record_update(self, weight: float) -> None:
        """Book-keeping shared by all ``update`` implementations."""
        self._rows_processed += 1
        self._total_weight += weight

    # -- queries ---------------------------------------------------------
    @abc.abstractmethod
    def estimate(self, item: Item) -> float:
        """Estimated aggregate weight (count) for ``item``."""

    @abc.abstractmethod
    def estimates(self) -> Dict[Item, float]:
        """All retained items with their estimated counts."""

    def __contains__(self, item: Item) -> bool:
        return item in self.estimates()

    def __len__(self) -> int:
        return len(self.estimates())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self._capacity}, "
            f"bins={len(self)}, rows_processed={self._rows_processed}, "
            f"total_weight={self._total_weight:g})"
        )

    def top_k(self, k: int) -> List[Tuple[Item, float]]:
        """Return the ``k`` items with the largest estimated counts."""
        if k < 0:
            raise InvalidParameterError("k must be non-negative")
        ranked = sorted(self.estimates().items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:k]

    def heavy_hitters(self, phi: float) -> Dict[Item, float]:
        """Items whose estimated relative frequency is at least ``phi``.

        Parameters
        ----------
        phi:
            Relative frequency threshold in ``(0, 1]``; an item is reported
            when its estimated count is at least ``phi * total_weight``.
        """
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        threshold = phi * self._total_weight
        return {
            item: count
            for item, count in self.estimates().items()
            if count >= threshold and count > 0
        }

    def relative_frequencies(self) -> Dict[Item, float]:
        """Estimated relative frequency ``N̂_i / t`` for each retained item."""
        if self._total_weight == 0:
            return {}
        return {
            item: count / self._total_weight for item, count in self.estimates().items()
        }


class SubsetSumSketch(FrequentItemSketch):
    """A frequent-item sketch whose estimates are safe to sum over subsets.

    Implementations guarantee (or approximate, as documented) that
    ``E[estimate(i)] == n_i`` for every item ``i``, so summing retained
    estimates over an arbitrary predicate gives an unbiased estimate of the
    true subset sum over the disaggregated data.
    """

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Unbiased estimate of the total weight of items matching ``predicate``."""
        return float(
            sum(count for item, count in self.estimates().items() if predicate(item))
        )

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum bundled with a variance estimate.

        The base implementation reports zero variance — the honest answer
        for estimators without a derived error model — so that *every*
        subset-sum sketch satisfies the
        :class:`repro.api.SubsetSumEstimator` protocol uniformly.
        Subclasses with a real model (Unbiased Space Saving's equation-5
        estimator, the sample-and-hold family's Bernoulli model) override
        this with their own variance.
        """
        return EstimateWithError(estimate=self.subset_sum(predicate), variance=0.0)

    def subset_count(self, predicate: ItemPredicate) -> int:
        """Number of retained items matching ``predicate`` (the ``C_S`` of §6.4)."""
        return sum(1 for item in self.estimates() if predicate(item))
