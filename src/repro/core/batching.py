"""Batch ingestion helpers: collapse a disaggregated batch before updating.

Every sketch in this package consumes a *disaggregated* stream — one
``update(item, weight)`` call per raw row.  That Python-loop hot path caps
throughput far below what the underlying O(1)/O(log m) structures can
sustain.  The batched ingestion subsystem built on this module exploits a
simple observation: within one batch, all rows for the same item can be
pre-aggregated into a single weighted update without giving up any of the
estimator guarantees (a pre-aggregated batch is itself a valid weighted
stream, and the weighted update is the paper's §5.3 pairwise PPS reduction).

:func:`collapse_batch` is the shared primitive: it reduces a batch of
``(item, weight)`` rows to one ``(item, total_weight)`` pair per distinct
item, in first-occurrence order, using a vectorized :func:`numpy.unique` /
:func:`numpy.bincount` path for numpy arrays and an ordered dict-collapse
for generic Python sequences.  ``FrequentItemSketch.update_batch`` and the
per-sketch overrides all funnel through it, so the batch semantics are
identical everywhere:

* The batch is equivalent to a scalar ``update`` loop over the collapsed
  ``(item, weight)`` pairs in first-occurrence order.  For purely additive
  sketches (CountMin without conservative update, Count Sketch, bottom-k)
  this is also exactly equivalent to the raw row loop.
* ``rows_processed`` advances by the number of *raw* rows in the batch, not
  by the number of distinct items, so throughput accounting is unchanged.
* Numpy scalar labels are normalized to Python scalars (matching
  :func:`repro.streams.generators.iterate_rows`) so that repr-based hashing
  is consistent between the scalar and batched paths.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._typing import Item
from repro.errors import InvalidParameterError, UnsupportedUpdateError

__all__ = [
    "CollapsedBatch",
    "collapse_batch",
    "collapse_batch_arrays",
    "unit_rows",
    "iter_weighted_rows",
]

#: ``(unique_items, collapsed_weights, row_count, total_weight)`` — the
#: result of :func:`collapse_batch`.  ``unique_items`` preserves first
#: occurrence order and ``collapsed_weights`` is aligned with it.
CollapsedBatch = Tuple[List[Item], List[float], int, float]

WeightsLike = Optional[Union[np.ndarray, Sequence[float]]]


def _collapse_numpy_core(
    items: np.ndarray, weights: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, int, float]:
    """Array-native collapse of a 1-d numpy item array (first-occurrence order)."""
    row_count = int(items.size)
    if row_count == 0:
        return items[:0], np.zeros(0, dtype=np.float64), 0, 0.0
    if items.dtype.kind in "iu":
        low = int(items.min())
        high = int(items.max())
        # Dense-range integer fast path: bincount beats np.unique's sort
        # whenever the value range is comparable to the batch size.  The
        # per-occurrence summation order matches the np.unique path (both
        # add weights in row order), so the float results are identical.
        if low >= 0 and high < 4 * row_count + 1024:
            if weights is None:
                sums_by_value = np.bincount(items, minlength=high + 1).astype(
                    np.float64
                )
                total = float(row_count)
            else:
                sums_by_value = np.bincount(
                    items, weights=weights.astype(np.float64), minlength=high + 1
                )
                total = float(weights.sum())
            occupancy = np.bincount(items, minlength=high + 1)
            unique = np.nonzero(occupancy)[0].astype(items.dtype, copy=False)
            # First-occurrence positions: writing row positions in reverse
            # leaves each value's earliest row as the surviving write.
            first_index = np.empty(high + 1, dtype=np.int64)
            first_index[items[::-1]] = np.arange(row_count - 1, -1, -1, dtype=np.int64)
            order = np.argsort(first_index[unique], kind="stable")
            return unique[order], sums_by_value[unique][order], row_count, total
    unique, first_index, inverse = np.unique(
        items, return_index=True, return_inverse=True
    )
    if weights is None:
        sums = np.bincount(inverse, minlength=unique.size).astype(np.float64)
        total = float(row_count)
    else:
        sums = np.bincount(
            inverse, weights=weights.astype(np.float64), minlength=unique.size
        )
        total = float(weights.sum())
    # np.unique sorts by value; restore first-occurrence order so the batch
    # is order-deterministic regardless of the input container type.
    order = np.argsort(first_index, kind="stable")
    return unique[order], sums[order], row_count, total


def _collapse_numpy(items: np.ndarray, weights: Optional[np.ndarray]) -> CollapsedBatch:
    """Vectorized collapse of a 1-d numpy item array."""
    unique, sums, row_count, total = _collapse_numpy_core(items, weights)
    # .tolist() yields Python scalars, keeping repr-based hashing consistent
    # with the scalar update path (see iterate_rows).
    return unique.tolist(), sums.tolist(), row_count, total


def _collapse_generic(
    items: Iterable[Item], weights: Optional[Sequence[float]]
) -> CollapsedBatch:
    """Ordered dict-collapse for arbitrary hashable item sequences."""
    aggregated: Dict[Item, float] = {}
    row_count = 0
    total = 0.0
    if weights is None:
        for item in items:
            row_count += 1
            aggregated[item] = aggregated.get(item, 0.0) + 1.0
        total = float(row_count)
    else:
        items_list = items if isinstance(items, (list, tuple)) else list(items)
        if len(items_list) != len(weights):
            raise InvalidParameterError(
                f"items and weights must align: got {len(items_list)} items "
                f"and {len(weights)} weights"
            )
        for item, weight in zip(items_list, weights):
            row_count += 1
            weight = float(weight)
            aggregated[item] = aggregated.get(item, 0.0) + weight
            total += weight
    return list(aggregated), list(aggregated.values()), row_count, total


def collapse_batch(items: Iterable[Item], weights: WeightsLike = None) -> CollapsedBatch:
    """Pre-aggregate a batch of rows into one weighted update per distinct item.

    Parameters
    ----------
    items:
        The batch's item labels — a numpy array (fast path), list, tuple or
        any iterable of hashable items.
    weights:
        Optional per-row weights aligned with ``items``; ``None`` means unit
        weight per row.

    Returns
    -------
    ``(unique_items, collapsed_weights, row_count, total_weight)`` where
    ``unique_items`` lists each distinct item once in first-occurrence order,
    ``collapsed_weights[i]`` is the summed weight of ``unique_items[i]``
    within the batch, ``row_count`` is the number of raw rows and
    ``total_weight`` their summed weight.
    """
    if isinstance(items, np.ndarray):
        if items.ndim != 1:
            raise InvalidParameterError(
                f"item arrays must be 1-dimensional, got shape {items.shape}"
            )
        if weights is not None:
            weights_array = np.asarray(weights, dtype=np.float64)
            if weights_array.shape != items.shape:
                raise InvalidParameterError(
                    f"items and weights must align: got shapes "
                    f"{items.shape} and {weights_array.shape}"
                )
        else:
            weights_array = None
        if items.dtype != object:
            return _collapse_numpy(items, weights_array)
        return _collapse_generic(
            items.tolist(), None if weights_array is None else weights_array.tolist()
        )
    if weights is not None and not isinstance(weights, (list, tuple)):
        weights = list(weights)
    return _collapse_generic(items, weights)


def collapse_batch_arrays(
    items: np.ndarray, weights: WeightsLike = None
) -> Tuple[np.ndarray, np.ndarray, int, float]:
    """Array-native :func:`collapse_batch` for non-object numpy batches.

    Same aggregation, validation and first-occurrence ordering as
    :func:`collapse_batch`, but ``(unique_items, collapsed_weights)`` stay
    numpy arrays instead of being lowered to Python lists — the form the
    columnar kernel consumes directly, skipping two ``tolist`` passes per
    batch.  Only defined for 1-d non-object arrays; callers with generic
    sequences use :func:`collapse_batch`.
    """
    if not isinstance(items, np.ndarray) or items.dtype == object:
        raise InvalidParameterError(
            "collapse_batch_arrays requires a non-object numpy array; "
            "use collapse_batch for generic sequences"
        )
    if items.ndim != 1:
        raise InvalidParameterError(
            f"item arrays must be 1-dimensional, got shape {items.shape}"
        )
    if weights is not None:
        weights_array = np.asarray(weights, dtype=np.float64)
        if weights_array.shape != items.shape:
            raise InvalidParameterError(
                f"items and weights must align: got shapes "
                f"{items.shape} and {weights_array.shape}"
            )
    else:
        weights_array = None
    return _collapse_numpy_core(items, weights_array)


def unit_rows(
    items: Iterable[Item], weights: WeightsLike, *, sketch_name: str
) -> List[Item]:
    """Materialize a unit-weight batch, validating the weights if given.

    The batch-normalization twin of :func:`collapse_batch` for sketches
    defined on unit rows only (Lossy Counting, Sticky Sampling): no
    collapsing happens — the rows are replayed one by one — so ``weights``
    must be ``None`` or an aligned all-ones sequence.  Numpy arrays are
    lowered to Python scalars to keep hashing consistent with the scalar
    update path.
    """
    if isinstance(items, np.ndarray):
        if items.ndim != 1:
            raise InvalidParameterError(
                f"item arrays must be 1-dimensional, got shape {items.shape}"
            )
        rows = items.tolist()
    else:
        rows = list(items)
    if weights is not None:
        weights = list(weights)
        if len(weights) != len(rows):
            raise InvalidParameterError(
                f"items and weights must align: got {len(rows)} items "
                f"and {len(weights)} weights"
            )
        for weight in weights:
            if weight != 1:
                raise UnsupportedUpdateError(
                    f"{sketch_name} supports unit-weight rows only"
                )
    return rows


def iter_weighted_rows(rows: Iterable) -> "Iterable[Tuple[Item, float]]":
    """Yield ``(item, weight)`` pairs from a mixed row iterable.

    A row may be a bare item (weight 1) or an ``(item, weight)`` pair.
    Streams of composite keys (e.g. ``(user, ad)``) legitimately contain
    tuples that are *items*, not pairs: a 2-tuple is treated as weighted
    only when its second element is a real number and its first element is
    not.  This is the single row heuristic behind ``extend()`` on sketches,
    ensembles and :class:`repro.api.StreamSession`.
    """
    for row in rows:
        if (
            isinstance(row, tuple)
            and len(row) == 2
            and isinstance(row[1], (int, float))
            and not isinstance(row[0], (int, float))
        ):
            yield row[0], float(row[1])
        else:
            yield row, 1.0
