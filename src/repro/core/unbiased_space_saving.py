"""Unbiased Space Saving — the paper's core contribution.

The sketch is a one-line modification of Deterministic Space Saving
(Algorithm 1 of the paper): when an arriving item is not already in the
sketch, the minimum bin's counter is always incremented, but its *label* is
replaced with the new item only with probability

    p = w / (N̂_min + w)

(``1 / (N̂_min + 1)`` for unit weights).  Theorem 1 shows this makes every
per-item count estimate exactly unbiased, which in turn makes arbitrary
subset sums unbiased — the property Deterministic Space Saving lacks.  At
the same time, Theorems 3 and 10 show the sketch retains strong frequent-item
guarantees: on i.i.d. streams every frequent item is eventually kept with
probability 1 and its relative frequency estimate is strongly consistent,
and on arbitrary streams the inclusion probability of an item is never worse
than that of a uniform random sample of the same size.

The class below also provides the variance estimator and Normal confidence
intervals of §6.4-6.5 so that a caller can attach uncertainty to any subset
sum it reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro._typing import Item, ItemPredicate
from repro.core.base import (
    BinStore,
    HeapBinStore,
    StreamSummaryBinStore,
    SubsetSumSketch,
)
from repro.core.batching import collapse_batch, collapse_batch_arrays
from repro.core.columnar import ColumnarCounterStore
from repro.core.variance import EstimateWithError, subset_variance_estimate
from repro.errors import InvalidParameterError, UnsupportedUpdateError
from repro.io.codec import (
    decode_item,
    encode_item,
    rng_state_from_jsonable,
    rng_state_to_jsonable,
)
from repro.io.serializable import SerializableSketch

__all__ = ["UnbiasedSpaceSaving"]


class UnbiasedSpaceSaving(SubsetSumSketch, SerializableSketch):
    """Unbiased Space Saving sketch (Algorithm 1 with ``p = 1/(N̂_min + 1)``).

    Parameters
    ----------
    capacity:
        Number of bins ``m``.
    seed:
        Seed for the internal random generator used for the randomized label
        replacement and for breaking ties among minimum bins.  Fixing the
        seed makes a run fully reproducible.
    store:
        ``"auto"`` (default) selects the columnar struct-of-arrays store —
        float-native, so no migration ever happens — and is equivalent to
        ``"columnar"``.  ``"stream_summary"`` and ``"heap"`` force the
        scalar object stores (integer stream summary with heap migration
        semantics, or the float heap), which keep their historical
        tie-breaking and draw sequences; seeded results differ between the
        columnar and scalar stores because the columnar kernel uses the
        priority-based tie-breaking discipline documented in
        :mod:`repro.core.columnar`.

    Example
    -------
    >>> sketch = UnbiasedSpaceSaving(capacity=3, seed=7)
    >>> _ = sketch.extend(["ad1", "ad1", "ad2", "ad3", "ad1"])
    >>> sketch.rows_processed
    5
    >>> round(sum(sketch.estimates().values()), 6)
    5.0
    """

    def __init__(
        self,
        capacity: int,
        *,
        seed: Optional[int] = None,
        store: str = "auto",
    ) -> None:
        super().__init__(capacity, seed=seed)
        if store not in ("auto", "columnar", "stream_summary", "heap"):
            raise InvalidParameterError(
                f"unknown store {store!r}; expected 'auto', 'columnar', "
                "'stream_summary' or 'heap'"
            )
        self._store_kind = store
        self._store: BinStore
        if store in ("auto", "columnar"):
            self._store = ColumnarCounterStore(
                self._capacity,
                generator=np.random.Generator(np.random.PCG64(seed)),
            )
        elif store == "heap":
            self._store = HeapBinStore(rng=self._rng)
        else:
            self._store = StreamSummaryBinStore(rng=self._rng)
        #: number of label replacements performed (useful for diagnostics)
        self._label_replacements = 0

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bins(
        cls,
        capacity: int,
        bins: Dict[Item, float],
        *,
        rows_processed: int = 0,
        total_weight: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> "UnbiasedSpaceSaving":
        """Build a sketch directly from ``(label, count)`` bins.

        Used by the merge and distributed layers, which first reduce a
        combined set of bins down to ``capacity`` (preserving expectations)
        and then need a live sketch that can keep ingesting rows.  Counts may
        be real-valued (Horvitz-Thompson adjusted), so the heap store is used.

        Raises
        ------
        InvalidParameterError
            If more bins than ``capacity`` are supplied.
        """
        if len(bins) > capacity:
            raise InvalidParameterError(
                f"cannot place {len(bins)} bins into a capacity-{capacity} sketch"
            )
        sketch = cls(capacity, seed=seed, store="heap")
        for label, count in bins.items():
            if count < 0:
                raise InvalidParameterError("bin counts must be non-negative")
            if count > 0:
                sketch._store.insert(label, float(count))
        sketch._rows_processed = int(rows_processed)
        if total_weight is None:
            total_weight = float(sum(bins.values()))
        sketch._total_weight = float(total_weight)
        return sketch

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one raw row for ``item``.

        Unit-weight rows are the common case (one click, one packet, one
        impression).  Positive real-valued weights are supported via the
        randomized pairwise PPS reduction described in §5.3: the minimum bin
        is incremented by ``weight`` and relabeled with probability
        ``weight / (N̂_min + weight)``, which preserves unbiasedness.
        """
        if weight <= 0 or not np.isfinite(weight):
            raise UnsupportedUpdateError(
                "Unbiased Space Saving requires positive weights (finite); "
                "see repro.core.weighted for signed updates"
            )
        store = self._store
        if isinstance(store, ColumnarCounterStore):
            self._record_update(weight)
            self._label_replacements += store.apply_one(item, float(weight))
            return
        if weight != int(weight):
            self._ensure_float_store()
        self._record_update(weight)
        store = self._store
        if item in store:
            store.increment(item, weight)
            return
        if len(store) < self._capacity:
            store.insert(item, weight)
            return
        min_label = store.min_label()
        min_count = store.get(min_label)
        new_count = store.increment(min_label, weight)
        # Replace the label with probability weight / (min_count + weight) so
        # that the expected increment to the arriving item equals its weight
        # and the expected change to the displaced label's count is zero.
        if self._rng.random() * new_count < weight:
            store.relabel(min_label, item)
            self._label_replacements += 1
        # Silence the unused-variable lint for readability of the formula.
        del min_count

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
    ) -> "UnbiasedSpaceSaving":
        """Batched ingestion: collapse duplicates, then apply weighted updates.

        On the scalar stores this is equivalent to a scalar :meth:`update`
        loop over the batch's collapsed ``(item, summed weight)`` pairs in
        first-occurrence order (including the random label replacement
        draws), with the per-call bookkeeping hoisted out of the loop.  On
        the columnar store the collapsed pairs are applied in the kernel's
        phased order (present scatter-add, inserts, then min-replacement
        contests — see :mod:`repro.core.columnar`), which preserves every
        unbiasedness guarantee but is not draw-for-draw identical to the
        scalar loop.  Collapsing preserves unbiasedness because a weighted
        update *is* the §5.3 pairwise PPS reduction of the collapsed rows.
        ``rows_processed`` still counts raw rows.
        """
        if (
            isinstance(self._store, ColumnarCounterStore)
            and isinstance(items, np.ndarray)
            and items.dtype != object
        ):
            unique, collapsed, row_count, total = collapse_batch_arrays(items, weights)
            return self._ingest_collapsed(unique, collapsed, row_count, total)
        unique, collapsed, row_count, total = collapse_batch(items, weights)
        return self._ingest_collapsed(unique, collapsed, row_count, total)

    def _ingest_collapsed(
        self,
        unique,
        collapsed,
        row_count: int,
        total: float,
    ) -> "UnbiasedSpaceSaving":
        """Apply an already-collapsed batch (one weighted pair per item).

        Backs :meth:`update_batch` and the sharded executor, which collapses
        globally before routing and must not pay a second collapse per shard.
        ``unique`` / ``collapsed`` are aligned lists, or numpy arrays on the
        columnar fast path.
        """
        if len(unique) == 0:
            return self
        store = self._store
        if isinstance(store, ColumnarCounterStore):
            collapsed = np.ascontiguousarray(collapsed, dtype=np.float64)
            # min() <= 0 alone would let NaN through (NaN comparisons are
            # all false), and +inf would collide with the store's free-slot
            # sentinel — require finite positive weights explicitly.
            if not np.isfinite(collapsed).all() or collapsed.min() <= 0:
                raise UnsupportedUpdateError(
                    "Unbiased Space Saving requires positive weights (finite); "
                    "see repro.core.weighted for signed updates"
                )
            self._label_replacements += store.apply_batch(unique, collapsed)
            self._rows_processed += row_count
            self._total_weight += total
            return self
        if min(collapsed) <= 0:
            raise UnsupportedUpdateError(
                "Unbiased Space Saving requires positive weights; "
                "see repro.core.weighted for signed updates"
            )
        if any(weight != int(weight) for weight in collapsed):
            self._ensure_float_store()
        store = self._store
        capacity = self._capacity
        if all(item in store for item in unique):
            # Steady-state fast path: every batch item already owns a bin, so
            # the whole batch is a commutative set of increments.
            store.increment_batch(list(zip(unique, collapsed)))
        else:
            rng_random = self._rng.random
            for item, weight in zip(unique, collapsed):
                if item in store:
                    store.increment(item, weight)
                    continue
                if len(store) < capacity:
                    store.insert(item, weight)
                    continue
                min_label = store.min_label()
                new_count = store.increment(min_label, weight)
                if rng_random() * new_count < weight:
                    store.relabel(min_label, item)
                    self._label_replacements += 1
        self._rows_processed += row_count
        self._total_weight += total
        return self

    def _ensure_float_store(self) -> None:
        """Migrate from the integer store to the heap store in place."""
        if isinstance(self._store, (HeapBinStore, ColumnarCounterStore)):
            # Float-native stores never migrate.
            return
        if self._store_kind == "stream_summary":
            raise UnsupportedUpdateError(
                "non-integer weights require store='heap' or store='auto'"
            )
        migrated = HeapBinStore(rng=self._rng)
        for label, count in self._store.items():
            migrated.insert(label, count)
        self._store = migrated

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Unbiased estimate of the total weight of ``item`` (0 when absent)."""
        return self._store.get(item, 0.0)

    def estimates(self) -> Dict[Item, float]:
        return self._store.counts()

    @property
    def min_count(self) -> float:
        """The minimum bin count ``N̂_min`` (0 while the sketch is not full)."""
        if len(self._store) < self._capacity or len(self._store) == 0:
            return 0.0
        return self._store.min_count()

    @property
    def label_replacements(self) -> int:
        """How many times a minimum bin's label has been replaced."""
        return self._label_replacements

    def is_saturated(self) -> bool:
        """Whether the sketch has filled all of its bins."""
        return len(self._store) >= self._capacity

    # ------------------------------------------------------------------
    # Subset sum estimation with uncertainty (§6.4 / §6.5)
    # ------------------------------------------------------------------
    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum estimate with the equation-5 variance estimate attached."""
        retained = self.estimates()
        estimate = 0.0
        in_subset = 0
        for item, count in retained.items():
            if predicate(item):
                estimate += count
                in_subset += 1
        variance = subset_variance_estimate(self.min_count, in_subset)
        return EstimateWithError(estimate=estimate, variance=variance)

    def subset_sum_confidence_interval(
        self, predicate: ItemPredicate, confidence: float = 0.95
    ) -> Tuple[float, float]:
        """Normal confidence interval for a subset sum (§6.5)."""
        return self.subset_sum_with_error(predicate).confidence_interval(confidence)

    def total_estimate(self) -> float:
        """Estimate of the total weight; exact by construction.

        Every row increments exactly one counter by its weight, so the sum
        of all retained counters always equals the total ingested weight.
        This is one advantage over priority sampling noted in §7.
        """
        return float(sum(count for _, count in self._store.items()))

    # ------------------------------------------------------------------
    # Merging (Theorem 2 / §5.5)
    # ------------------------------------------------------------------
    def merge(
        self,
        other: "UnbiasedSpaceSaving",
        *,
        capacity: Optional[int] = None,
        method: str = "pps",
        seed: Optional[int] = None,
    ) -> "UnbiasedSpaceSaving":
        """Merge with another unbiased sketch into a new unbiased sketch.

        Method form of :func:`repro.core.merge.merge_unbiased`, provided so
        the sketch satisfies the :class:`repro.api.Mergeable` protocol.
        Neither input is mutated; the merged sketch remains unbiased for
        all subset sums over the combined data (Theorem 2).
        """
        from repro.core.merge import merge_unbiased

        return merge_unbiased(self, other, capacity=capacity, method=method, seed=seed)

    def __repr__(self) -> str:
        store = self._active_store_name()
        return (
            f"{type(self).__name__}(capacity={self._capacity}, store={store!r}, "
            f"bins={len(self._store)}, rows_processed={self._rows_processed}, "
            f"total_weight={self._total_weight:g})"
        )

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _active_store_name(self) -> str:
        if isinstance(self._store, ColumnarCounterStore):
            return "columnar"
        if isinstance(self._store, HeapBinStore):
            return "heap"
        return "stream_summary"

    def _serial_state(self):
        meta = {
            "capacity": self._capacity,
            "store": self._store_kind,
            "active_store": self._active_store_name(),
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
            "label_replacements": self._label_replacements,
            "rng_state": rng_state_to_jsonable(self._rng.getstate()),
        }
        if isinstance(self._store, ColumnarCounterStore):
            rows = self._store.state_rows()
            meta["labels"] = [encode_item(label) for label, _, _, _ in rows]
            meta["kernel_rng_state"] = self._store.generator_state()
            arrays = {
                "counts": np.asarray([c for _, c, _, _ in rows], dtype=np.float64),
                "priorities": np.asarray([p for _, _, p, _ in rows], dtype=np.float64),
            }
            return meta, arrays
        labels: List[object] = []
        counts: List[float] = []
        for label, count in self._store.items():
            labels.append(encode_item(label))
            counts.append(float(count))
        meta["labels"] = labels
        return meta, {"counts": np.asarray(counts, dtype=np.float64)}

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        sketch = cls(int(meta["capacity"]), store=meta["store"])
        active = meta["active_store"]
        if active == "columnar":
            store = sketch._store
            # Bins restore in items() order with their exact counts and
            # tie-break priorities; relative slot order is preserved (the
            # only slot property the kernel observes), and the kernel RNG
            # state rides along, so continuation is bit-identical.
            for label, count, priority in zip(
                meta["labels"], arrays["counts"], arrays["priorities"]
            ):
                store.restore_bin(decode_item(label), float(count), float(priority))
            store.set_generator_state(meta["kernel_rng_state"])
        else:
            if active == "heap" and not isinstance(sketch._store, HeapBinStore):
                sketch._store = HeapBinStore(rng=sketch._rng)
            elif active == "stream_summary" and not isinstance(
                sketch._store, StreamSummaryBinStore
            ):
                sketch._store = StreamSummaryBinStore(rng=sketch._rng)
            # Bins are re-inserted in the serialized (structural) order, which
            # reproduces the exact bucket/tie ordering of the source sketch, so
            # a restored seeded sketch continues the stream bit-identically.
            for label, count in zip(meta["labels"], arrays["counts"]):
                sketch._store.insert(decode_item(label), float(count))
        sketch._rows_processed = int(meta["rows_processed"])
        sketch._total_weight = float(meta["total_weight"])
        sketch._label_replacements = int(meta["label_replacements"])
        sketch._rng.setstate(rng_state_from_jsonable(meta["rng_state"]))
        return sketch

    # ------------------------------------------------------------------
    # Introspection used by the merge / evaluation layers
    # ------------------------------------------------------------------
    def bins(self) -> List[Tuple[Item, float]]:
        """Return the retained ``(label, count)`` pairs as a list."""
        return list(self._store.items())

    def approximate_inclusion_probability(self, count: float) -> float:
        """Approximate probability that an item of true count ``count`` is retained.

        In the i.i.d. regime the sketch behaves like a thresholded PPS sample
        with threshold ``N̂_min`` (§6.2): items with ``count >= N̂_min`` are
        retained with probability (approaching) 1 and smaller items with
        probability ``count / N̂_min``.
        """
        if count < 0:
            raise InvalidParameterError("count must be non-negative")
        min_count = self.min_count
        if min_count <= 0:
            return 1.0
        return min(1.0, count / min_count)
