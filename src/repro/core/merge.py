"""Merge operations for Space Saving sketches (§5.5 of the paper).

Merging lets sketches built on different shards of the data (different days,
different mappers, different countries) be combined into one sketch that
answers queries over the union.  Two families of merges are provided:

* :func:`merge_misra_gries` — the classic biased merge of Agarwal et al.:
  sum the estimates and soft-threshold by the ``(m+1)``-th largest combined
  counter.  It preserves the deterministic error guarantee but biases every
  count downward, so further aggregation (subset sums) accumulates bias.
* :func:`merge_unbiased` — the paper's proposal: sum the estimates and then
  reduce back to ``m`` bins with an *unbiased* sampling reduction (fixed-size
  PPS / VarOpt, Poisson PPS, or priority sampling).  By Theorem 2 the merged
  sketch remains unbiased for every subset sum; the price is that mass is
  moved from the tail toward moderately frequent items, so slightly fewer of
  the top items may be detected (figure 1).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Optional

from repro._typing import Item
from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.errors import IncompatibleSketchError, InvalidParameterError
from repro.sampling.horvitz_thompson import WeightedSample
from repro.sampling.pps import poisson_pps_sample
from repro.sampling.priority import PrioritySample
from repro.sampling.varopt import varopt_reduce

__all__ = [
    "combine_estimates",
    "reduce_bins_unbiased",
    "merge_unbiased",
    "merge_misra_gries",
    "merge_many_unbiased",
]


def combine_estimates(sketches: Iterable) -> Dict[Item, float]:
    """Sum the retained estimates of several sketches into one bin map."""
    combined: Dict[Item, float] = {}
    for sketch in sketches:
        for item, count in sketch.estimates().items():
            combined[item] = combined.get(item, 0.0) + count
    return combined


def reduce_bins_unbiased(
    bins: Dict[Item, float],
    capacity: int,
    *,
    method: str = "pps",
    rng: Optional[random.Random] = None,
) -> Dict[Item, float]:
    """Shrink a bin map to ``capacity`` entries preserving expected counts.

    Parameters
    ----------
    bins:
        Combined ``item -> count`` map, possibly larger than ``capacity``.
    capacity:
        Target number of bins ``m``.
    method:
        ``"pps"`` (fixed-size VarOpt/PPS reduction, the default),
        ``"poisson"`` (independent thresholded PPS — random output size), or
        ``"priority"`` (priority-sampling reduction).
    rng:
        Random generator; pass a seeded one for reproducibility.
    """
    if capacity < 1:
        raise InvalidParameterError("capacity must be at least 1")
    if method not in ("pps", "poisson", "priority"):
        raise InvalidParameterError(
            f"unknown method {method!r}; expected 'pps', 'poisson' or 'priority'"
        )
    rng = rng or random.Random()
    positive = {item: count for item, count in bins.items() if count > 0}
    if len(positive) <= capacity:
        return dict(positive)
    if method == "pps":
        return varopt_reduce(positive, capacity, rng=rng)
    if method == "poisson":
        sample = poisson_pps_sample(positive, capacity, rng=rng)
        return _sample_to_bins(sample)
    if method == "priority":
        sample = PrioritySample(positive, capacity, rng=rng).as_weighted_sample()
        return _sample_to_bins(sample)
    raise InvalidParameterError(
        f"unknown method {method!r}; expected 'pps', 'poisson' or 'priority'"
    )


def _sample_to_bins(sample: WeightedSample) -> Dict[Item, float]:
    """Convert a Horvitz-Thompson sample into adjusted-count bins."""
    return {sampled.item: sampled.adjusted_value for sampled in sample}


def merge_unbiased(
    first: UnbiasedSpaceSaving,
    second: UnbiasedSpaceSaving,
    *,
    capacity: Optional[int] = None,
    method: str = "pps",
    seed: Optional[int] = None,
) -> UnbiasedSpaceSaving:
    """Merge two Unbiased Space Saving sketches into a new unbiased sketch.

    The merged sketch's expected estimate for every item equals the sum of
    the two input sketches' expected estimates, so it remains unbiased for
    all disaggregated subset sums over the combined data (Theorem 2).

    Parameters
    ----------
    first, second:
        The sketches to merge; they need not have equal capacities.
    capacity:
        Capacity of the merged sketch (defaults to ``first.capacity``).
    method:
        Reduction used to shrink the combined bins; see
        :func:`reduce_bins_unbiased`.
    seed:
        Seed for the reduction's randomness.
    """
    capacity = capacity or first.capacity
    rng = random.Random(seed)
    combined = combine_estimates([first, second])
    reduced = reduce_bins_unbiased(combined, capacity, method=method, rng=rng)
    return UnbiasedSpaceSaving.from_bins(
        capacity,
        reduced,
        rows_processed=first.rows_processed + second.rows_processed,
        total_weight=first.total_weight + second.total_weight,
        seed=seed,
    )


def merge_many_unbiased(
    sketches: Iterable[UnbiasedSpaceSaving],
    *,
    capacity: Optional[int] = None,
    method: str = "pps",
    seed: Optional[int] = None,
) -> UnbiasedSpaceSaving:
    """Merge any number of Unbiased Space Saving sketches in one reduction.

    Reducing the union once (rather than pairwise) adds the least possible
    sampling noise and is what a map-reduce reducer would do with the
    sketches produced by its mappers.
    """
    sketch_list = list(sketches)
    if not sketch_list:
        raise InvalidParameterError("merge_many_unbiased requires at least one sketch")
    capacity = capacity or sketch_list[0].capacity
    rng = random.Random(seed)
    combined = combine_estimates(sketch_list)
    reduced = reduce_bins_unbiased(combined, capacity, method=method, rng=rng)
    return UnbiasedSpaceSaving.from_bins(
        capacity,
        reduced,
        rows_processed=sum(s.rows_processed for s in sketch_list),
        total_weight=sum(s.total_weight for s in sketch_list),
        seed=seed,
    )


def merge_misra_gries(
    first: DeterministicSpaceSaving,
    second: DeterministicSpaceSaving,
    *,
    capacity: Optional[int] = None,
) -> Dict[Item, float]:
    """The biased Misra-Gries-style merge of Agarwal et al. (§5.5).

    The combined estimates are soft-thresholded by the ``(m+1)``-th largest
    combined counter, guaranteeing at most ``m`` non-zero counters while
    preserving the deterministic error bound.  The returned value is the map
    of merged (biased) estimates; figure 1's comparison of merge behaviours
    is generated from this and :func:`reduce_bins_unbiased`.
    """
    capacity = capacity or first.capacity
    if capacity < 1:
        raise IncompatibleSketchError("merged capacity must be at least 1")
    combined = combine_estimates([first, second])
    if len(combined) <= capacity:
        return combined
    sorted_counts = sorted(combined.values(), reverse=True)
    threshold = sorted_counts[capacity]
    merged = {
        item: count - threshold
        for item, count in combined.items()
        if count - threshold > 0
    }
    return merged
