"""Columnar (struct-of-arrays) counter store and its vectorized batch kernel.

The scalar stores in :mod:`repro.core.base` keep one Python object per bin
(linked bucket nodes, heap entries), so even the collapsed
``update_batch`` path ends up walking Python objects once per distinct
item.  :class:`ColumnarCounterStore` holds the same ``(label, count)``
bins in plain contiguous arrays:

* ``_counts`` — ``float64[capacity]`` counter values (free slots hold
  ``+inf`` so they never win a minimum scan);
* ``_prio`` — ``float64[capacity]`` random *tie-break priorities*
  (see below);
* ``_labels`` / ``_index`` — a slot-indexed label list and the
  dict-to-index map ``label -> slot``;
* ``_free`` — the recycled-slot stack;
* optionally ``_errors`` — ``float64[capacity]`` per-bin acquisition
  errors, maintained for Deterministic Space Saving.

Randomized tie-breaking
-----------------------
The paper's analysis assumes ties among minimum bins are broken uniformly
at random.  The scalar stores implement that with ``rng.choice`` over the
tied labels, which consumes a data-dependent number of random draws — a
shape that cannot be vectorized or pre-drawn.  The columnar store uses an
equivalent *priority* discipline instead: every count change also assigns
the bin a fresh uniform priority, and the minimum bin is the
lexicographic minimum of ``(count, priority, slot)``.  Because every bin
entering a tie carries a fresh independent uniform priority, the winner
of each minimum contest is uniform over the tied bins — the same
distribution as ``rng.choice`` — while the number of draws per operation
is a constant, so a whole batch's randomness can be drawn in one bulk
``Generator.random(n)`` call (bit-identical to drawing lazily one scalar
at a time, a documented PCG64 property this package's equivalence suite
pins).

Draw accounting (the *kernel discipline*, shared by every kernel):

* increment of a present label — 1 draw (the new priority);
* insert into a free slot — 1 draw;
* min-replacement contest — 2 draws for Unbiased Space Saving (the new
  priority ``r``, then the acceptance variate ``u``: the label is
  replaced iff ``u * new_count < weight``), 1 draw (just ``r``) for
  Deterministic Space Saving, whose replacement is unconditional.

Batched application order
-------------------------
:meth:`ColumnarCounterStore.apply_batch` applies one collapsed batch in
three phases: (A) scatter-add all *present* items in first-occurrence
order, then insert absent items into free slots in first-occurrence
order, then run every remaining absent item through a min-replacement
contest, again in first-occurrence order.  Phasing reorders updates
relative to the scalar one-row-at-a-time loop, but each item's applied
weight is fixed and each contest is an exact §5.3 pairwise PPS reduction
against the then-minimum bin, so per-item unbiasedness — and therefore
subset-sum unbiasedness — is preserved (the same conditional-expectation
induction that justifies collapsing the batch in the first place).  A
batch of one item is exactly one scalar update, so the scalar ``update``
path is the ``k = 1`` special case of the kernel.

The replacement phase is computed by a *level sweep*: the current minimum
count ``L`` defines the tied slot set; because every contest targets a
minimum bin and weights are positive, all slots tied at ``L`` are
consumed (in priority order) before the minimum can move, for arbitrary
per-contest weights.  Each sweep iteration therefore retires an entire
level set with a handful of numpy operations instead of one Python loop
iteration per contest.

Kernels and the ``REPRO_KERNEL`` flag
-------------------------------------
Three interchangeable sweep kernels implement the discipline above:

* ``numpy`` (default) — the vectorized level sweep;
* ``numba`` — a JIT-compiled per-contest loop, selected with
  ``REPRO_KERNEL=numba``; when numba is not importable the store falls
  back to the numpy kernel silently (the flag is a request, not a hard
  dependency);
* ``reference`` — an intentionally naive pure-Python per-contest loop
  (linear minimum scans, one contest at a time) that serves as the
  executable specification.  The equivalence suite drives identical
  seeded workloads through ``reference`` and the fast kernels and
  asserts bit-identical states.

All kernels consume the same pre-drawn randomness block, so their
outputs are bit-identical, not merely distributionally equal.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._typing import Item
from repro.core.base import BinStore
from repro.errors import EmptySketchError, InvalidParameterError

__all__ = [
    "ColumnarCounterStore",
    "available_kernels",
    "resolve_kernel_name",
]

#: Sentinel count held by unoccupied slots; never the minimum of a
#: non-empty store and never equal to a real counter.
FREE_SLOT = np.inf

#: The kernel names ``REPRO_KERNEL`` accepts.
_KERNELS = ("numpy", "numba", "reference")

_NUMBA_SWEEP: Optional[object] = None
_NUMBA_PROBED = False


def available_kernels() -> Tuple[str, ...]:
    """Kernel names accepted by ``REPRO_KERNEL`` / the ``kernel`` argument."""
    return _KERNELS


def _load_numba_sweep():
    """Compile the numba sweep once, returning ``None`` when numba is absent."""
    global _NUMBA_SWEEP, _NUMBA_PROBED
    if _NUMBA_PROBED:
        return _NUMBA_SWEEP
    _NUMBA_PROBED = True
    try:
        import numba
    except ImportError:
        _NUMBA_SWEEP = None
        return None

    @numba.njit(cache=False)
    def _sweep_numba(counts, prio, step_weights, r_draws, u_draws, always_replace):
        kr = step_weights.shape[0]
        m = counts.shape[0]
        slots = np.empty(kr, dtype=np.int64)
        accepted = np.empty(kr, dtype=np.bool_)
        levels = np.empty(kr, dtype=np.float64)
        for t in range(kr):
            best = 0
            best_count = counts[0]
            best_prio = prio[0]
            for s in range(1, m):
                c = counts[s]
                if c < best_count or (c == best_count and prio[s] < best_prio):
                    best = s
                    best_count = c
                    best_prio = prio[s]
            weight = step_weights[t]
            new_count = best_count + weight
            counts[best] = new_count
            prio[best] = r_draws[t]
            slots[t] = best
            levels[t] = best_count
            if always_replace:
                accepted[t] = True
            else:
                accepted[t] = u_draws[t] * new_count < weight
        return slots, accepted, levels

    _NUMBA_SWEEP = _sweep_numba
    return _NUMBA_SWEEP


def resolve_kernel_name(requested: Optional[str] = None) -> str:
    """Resolve the active kernel name.

    Precedence: the explicit ``requested`` argument, then the
    ``REPRO_KERNEL`` environment variable, then ``"numpy"``.  Requesting
    ``numba`` on an interpreter without numba resolves to ``numpy`` — the
    flag degrades gracefully rather than making numba a dependency.
    """
    name = requested or os.environ.get("REPRO_KERNEL", "").strip() or "numpy"
    if name not in _KERNELS:
        raise InvalidParameterError(
            f"unknown kernel {name!r}; expected one of {_KERNELS}"
        )
    if name == "numba" and _load_numba_sweep() is None:
        return "numpy"
    return name


# ----------------------------------------------------------------------
# Sweep kernels
# ----------------------------------------------------------------------
def _sweep_numpy(counts, prio, step_weights, r_draws, u_draws, always_replace):
    """Vectorized level sweep over the min-replacement contests.

    Mutates ``counts`` / ``prio`` in place and returns per-contest
    ``(slots, accepted, levels)`` arrays, where ``levels[t]`` is the
    minimum count the contest ``t`` winner held *before* its increment
    (the acquisition error of an accepted replacement).

    Correctness of the wholesale level retirement: contests always target
    the lexicographic ``(count, priority, slot)`` minimum, weights are
    positive, and a winning slot leaves the current level upward — so
    while any slot remains at level ``L``, the minimum stays ``L`` and
    the next winner is the remaining tied slot with the smallest
    priority.  Sorting the tied set once by priority therefore yields the
    exact per-contest winner sequence of the scalar reference kernel.

    One finite-precision caveat: when a count is so large that adding the
    weight is absorbed (``level + weight == level`` in float64), the
    winner does *not* leave the level, and the reference kernel re-selects
    it on the next contest under its freshly drawn priority.  The sweep
    detects absorption and truncates the retirement at that contest, so
    the tied set — now including the absorbed slot's new priority — is
    re-derived exactly as the reference would.
    """
    kr = step_weights.shape[0]
    slots = np.empty(kr, dtype=np.int64)
    accepted = np.empty(kr, dtype=bool)
    levels = np.empty(kr, dtype=np.float64)
    done = 0
    while done < kr:
        level = counts.min()
        tied = np.nonzero(counts == level)[0]
        winners = tied[np.argsort(prio[tied], kind="stable")]
        take = winners.shape[0]
        if take > kr - done:
            take = kr - done
            winners = winners[:take]
        step = step_weights[done : done + take]
        new_counts = level + step
        absorbed = np.nonzero(new_counts <= level)[0]
        if absorbed.size:
            take = int(absorbed[0]) + 1
            winners = winners[:take]
            step = step[:take]
            new_counts = new_counts[:take]
        counts[winners] = new_counts
        prio[winners] = r_draws[done : done + take]
        slots[done : done + take] = winners
        levels[done : done + take] = level
        if always_replace:
            accepted[done : done + take] = True
        else:
            accepted[done : done + take] = u_draws[done : done + take] * new_counts < step
        done += take
    return slots, accepted, levels


def _sweep_reference(counts, prio, step_weights, r_draws, u_draws, always_replace):
    """The executable specification: one contest at a time, linear min scans.

    Deliberately naive — every contest rescans the full count array for
    the lexicographic ``(count, priority, slot)`` minimum — so that the
    equivalence suite can check the fast kernels against an
    implementation whose correctness is obvious by inspection.
    """
    kr = step_weights.shape[0]
    m = counts.shape[0]
    slots = np.empty(kr, dtype=np.int64)
    accepted = np.empty(kr, dtype=bool)
    levels = np.empty(kr, dtype=np.float64)
    for t in range(kr):
        best = 0
        best_count = counts[0]
        best_prio = prio[0]
        for s in range(1, m):
            c = counts[s]
            if c < best_count or (c == best_count and prio[s] < best_prio):
                best = s
                best_count = c
                best_prio = prio[s]
        weight = step_weights[t]
        new_count = best_count + weight
        counts[best] = new_count
        prio[best] = r_draws[t]
        slots[t] = best
        levels[t] = best_count
        if always_replace:
            accepted[t] = True
        else:
            accepted[t] = u_draws[t] * new_count < weight
    return slots, accepted, levels


def _resolve_sweep(name: str):
    if name == "numba":
        sweep = _load_numba_sweep()
        if sweep is not None:
            return sweep
        return _sweep_numpy
    if name == "reference":
        return _sweep_reference
    return _sweep_numpy


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ColumnarCounterStore(BinStore):
    """Struct-of-arrays bin store with a vectorized batch-apply kernel.

    Parameters
    ----------
    capacity:
        Fixed number of slots; the arrays are allocated once.
    generator:
        The ``numpy.random.Generator`` supplying every priority and
        acceptance draw.  The owning sketch passes its own generator so
        that serialization can carry the kernel RNG state.
    kernel:
        Optional explicit kernel name (``numpy`` / ``numba`` /
        ``reference``); defaults to the ``REPRO_KERNEL`` resolution of
        :func:`resolve_kernel_name`.
    track_errors:
        When true the store maintains a per-slot acquisition-error array
        (used by Deterministic Space Saving).
    """

    def __init__(
        self,
        capacity: int,
        *,
        generator: Optional[np.random.Generator] = None,
        kernel: Optional[str] = None,
        track_errors: bool = False,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError("capacity must be a positive integer")
        self._capacity = int(capacity)
        self._generator = generator if generator is not None else np.random.Generator(
            np.random.PCG64()
        )
        self._kernel_name = resolve_kernel_name(kernel)
        self._sweep = _resolve_sweep(self._kernel_name)
        self._counts = np.full(self._capacity, FREE_SLOT, dtype=np.float64)
        self._prio = np.zeros(self._capacity, dtype=np.float64)
        self._errors: Optional[np.ndarray] = (
            np.zeros(self._capacity, dtype=np.float64) if track_errors else None
        )
        self._labels: List[Optional[Item]] = [None] * self._capacity
        self._index: Dict[Item, int] = {}
        # Popping yields ascending slot numbers first, so a fresh store
        # fills slots 0, 1, 2, ... like the scalar stores fill in order.
        self._free: List[int] = list(range(self._capacity - 1, -1, -1))
        # True while every stored label is a Python int — the guard for
        # the sorted-searchsorted membership fast path.
        self._int_labels = True

    # -- introspection ---------------------------------------------------
    @property
    def capacity(self) -> int:
        """The fixed slot count."""
        return self._capacity

    @property
    def kernel(self) -> str:
        """The resolved kernel name this store dispatches to."""
        return self._kernel_name

    @property
    def generator(self) -> np.random.Generator:
        """The generator feeding every priority/acceptance draw."""
        return self._generator

    def tracks_errors(self) -> bool:
        """Whether the per-slot acquisition-error array is maintained."""
        return self._errors is not None

    # -- BinStore interface ----------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, item: Item) -> bool:
        return item in self._index

    def get(self, item: Item, default: float = 0.0) -> float:
        slot = self._index.get(item)
        if slot is None:
            return default
        return float(self._counts[slot])

    def insert(self, item: Item, count: float) -> None:
        item = self._as_label(item)
        if item in self._index:
            raise InvalidParameterError(f"label {item!r} already present")
        if count < 0:
            raise InvalidParameterError("counts must be non-negative")
        if not self._free:
            raise InvalidParameterError(
                f"columnar store is full (capacity {self._capacity})"
            )
        slot = self._free.pop()
        self._counts[slot] = float(count)
        self._prio[slot] = self._generator.random()
        if self._errors is not None:
            self._errors[slot] = 0.0
        self._labels[slot] = item
        self._index[item] = slot

    def remove(self, item: Item) -> float:
        slot = self._index.pop(item)
        count = float(self._counts[slot])
        self._counts[slot] = FREE_SLOT
        self._prio[slot] = 0.0
        self._labels[slot] = None
        self._free.append(slot)
        return count

    def increment(self, item: Item, by: float) -> float:
        if by < 0:
            raise InvalidParameterError("increment must be non-negative")
        slot = self._index[item]
        new_count = float(self._counts[slot] + by)
        self._counts[slot] = new_count
        self._prio[slot] = self._generator.random()
        return new_count

    def increment_batch(self, pairs) -> None:
        pairs = list(pairs)
        draws = self._generator.random(len(pairs))
        counts = self._counts
        prio = self._prio
        index = self._index
        for position, (item, by) in enumerate(pairs):
            slot = index[item]
            counts[slot] += by
            prio[slot] = draws[position]

    def relabel(self, old: Item, new: Item) -> None:
        new = self._as_label(new)
        if new in self._index:
            raise InvalidParameterError(f"label {new!r} already present")
        slot = self._index.pop(old)
        self._index[new] = slot
        self._labels[slot] = new

    def min_label(self) -> Item:
        slot, _ = self._min_slot()
        return self._labels[slot]

    def min_count(self) -> float:
        if not self._index:
            raise EmptySketchError("bin store is empty")
        return float(self._counts.min())

    def items(self) -> Iterator[Tuple[Item, float]]:
        counts = self._counts
        for item, slot in self._index.items():
            yield item, float(counts[slot])

    # -- acquisition errors (Deterministic Space Saving) ------------------
    def acquisition_error(self, item: Item) -> float:
        """The tracked acquisition error for ``item`` (0 when absent)."""
        if self._errors is None:
            return 0.0
        slot = self._index.get(item)
        if slot is None:
            return 0.0
        return float(self._errors[slot])

    # -- scalar kernel (the k = 1 case of apply_batch) --------------------
    def apply_one(self, item: Item, weight: float, *, always_replace: bool = False) -> int:
        """Apply one weighted row under the kernel discipline.

        Returns the number of label replacements performed (0 or 1).
        Draw-for-draw identical to ``apply_batch([item], [weight])``.
        """
        index = self._index
        slot = index.get(item)
        gen = self._generator
        if slot is not None:
            self._counts[slot] += weight
            self._prio[slot] = gen.random()
            return 0
        if self._free:
            self.insert(item, weight)
            return 0
        item = self._as_label(item)
        slot, level = self._min_slot()
        new_count = level + weight
        self._counts[slot] = new_count
        self._prio[slot] = gen.random()
        if always_replace or gen.random() * new_count < weight:
            old = self._labels[slot]
            del index[old]
            index[item] = slot
            self._labels[slot] = item
            if self._errors is not None:
                self._errors[slot] = level
            return 1
        return 0

    # -- the batch kernel --------------------------------------------------
    def apply_batch(
        self,
        unique: Union[Sequence[Item], np.ndarray],
        weights: Union[Sequence[float], np.ndarray],
        *,
        always_replace: bool = False,
    ) -> int:
        """Apply one collapsed batch (distinct items, positive weights).

        ``unique`` may be a Python sequence of hashable labels or a 1-d
        non-object numpy array (labels are lowered to Python scalars only
        where they enter the label map).  Returns the number of label
        replacements performed.  See the module docstring for the phased
        application order and draw accounting.
        """
        k = len(unique)
        if k == 0:
            return 0
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        counts = self._counts
        prio = self._prio
        gen = self._generator
        slots = self._member_slots(unique)
        present = slots >= 0
        n_present = int(present.sum())
        if n_present == k:
            # Steady state: a pure scatter-add plus priority refresh.
            counts[slots] += weights
            prio[slots] = gen.random(k)
            return 0
        absent_idx = np.nonzero(~present)[0]
        n_insert = min(k - n_present, len(self._free))
        insert_idx = absent_idx[:n_insert]
        contest_idx = absent_idx[n_insert:]
        kr = int(contest_idx.size)
        draws = gen.random(n_present + n_insert + (1 if always_replace else 2) * kr)
        position = 0
        if n_present:
            present_slots = slots[present]
            counts[present_slots] += weights[present]
            prio[present_slots] = draws[:n_present]
            position = n_present
        if n_insert:
            free = self._free
            labels = self._labels
            index = self._index
            errors = self._errors
            for i in insert_idx.tolist():
                item = self._as_label(unique[i])
                slot = free.pop()
                counts[slot] = weights[i]
                prio[slot] = draws[position]
                position += 1
                labels[slot] = item
                index[item] = slot
                if errors is not None:
                    errors[slot] = 0.0
        if kr == 0:
            return 0
        step_weights = np.ascontiguousarray(weights[contest_idx])
        if always_replace:
            r_draws = np.ascontiguousarray(draws[position:])
            u_draws = r_draws  # unread by the kernels when always_replace
        else:
            r_draws = np.ascontiguousarray(draws[position::2])
            u_draws = np.ascontiguousarray(draws[position + 1 :: 2])
        contest_slots, accepted, levels = self._sweep(
            counts, prio, step_weights, r_draws, u_draws, always_replace
        )
        accepted_steps = np.nonzero(accepted)[0]
        replacements = int(accepted_steps.size)
        if replacements:
            labels = self._labels
            index = self._index
            errors = self._errors
            contest_items = contest_idx[accepted_steps]
            for j, i in zip(accepted_steps.tolist(), contest_items.tolist()):
                slot = int(contest_slots[j])
                item = self._as_label(unique[i])
                old = labels[slot]
                del index[old]
                index[item] = slot
                labels[slot] = item
                if errors is not None:
                    errors[slot] = levels[j]
        return replacements

    # -- serialization hooks ----------------------------------------------
    def state_rows(self) -> List[Tuple[Item, float, float, float]]:
        """``(label, count, priority, error)`` rows in ``items()`` order."""
        errors = self._errors
        return [
            (
                item,
                float(self._counts[slot]),
                float(self._prio[slot]),
                0.0 if errors is None else float(errors[slot]),
            )
            for item, slot in self._index.items()
        ]

    def restore_bin(
        self, item: Item, count: float, priority: float, error: float = 0.0
    ) -> None:
        """Re-create one bin exactly (no draws), used when loading frames.

        Bins are restored in their serialized (``items()``) order, which
        compacts them into slots ``0..n-1`` while preserving relative slot
        order — the only slot property the kernel discipline observes —
        so a restored seeded sketch continues its stream bit-identically.
        """
        item = self._as_label(item)
        if item in self._index:
            raise InvalidParameterError(f"label {item!r} already present")
        if not self._free:
            raise InvalidParameterError(
                f"columnar store is full (capacity {self._capacity})"
            )
        slot = self._free.pop()
        self._counts[slot] = float(count)
        self._prio[slot] = float(priority)
        if self._errors is not None:
            self._errors[slot] = float(error)
        self._labels[slot] = item
        self._index[item] = slot

    def generator_state(self) -> Dict[str, Any]:
        """The kernel generator's bit-generator state (JSON-safe)."""
        return self._generator.bit_generator.state

    def set_generator_state(self, state: Dict[str, Any]) -> None:
        """Restore the kernel generator from :meth:`generator_state`."""
        self._generator.bit_generator.state = state

    # -- internals ---------------------------------------------------------
    def _as_label(self, item: Item) -> Item:
        """Lower numpy scalars and maintain the int-only label flag."""
        if isinstance(item, np.generic):
            item = item.item()
        if type(item) is not int:
            self._int_labels = False
        return item

    def _min_slot(self) -> Tuple[int, float]:
        """The lexicographic ``(count, priority, slot)`` minimum."""
        counts = self._counts
        if not self._index:
            raise EmptySketchError("bin store is empty")
        level = counts.min()
        tied = np.nonzero(counts == level)[0]
        if tied.size == 1:
            return int(tied[0]), float(level)
        # np.argmin returns the first minimum, so equal priorities fall
        # back to slot order — the same rule every kernel applies.
        return int(tied[np.argmin(self._prio[tied])]), float(level)

    def _member_slots(self, unique) -> np.ndarray:
        """Slot per batch item (-1 when absent), vectorized when possible."""
        index = self._index
        if index and self._int_labels:
            arr: Optional[np.ndarray] = None
            if isinstance(unique, np.ndarray):
                if unique.dtype.kind in "iu":
                    arr = unique
            else:
                # Let numpy infer the dtype first: forcing int64 on a
                # mixed int/float batch would silently truncate labels
                # (2.5 -> 2) and credit their weight to the wrong bin.
                try:
                    cast = np.asarray(unique)
                except (TypeError, ValueError, OverflowError):
                    cast = None
                if cast is not None and cast.dtype.kind in "iu":
                    arr = cast.astype(np.int64, copy=False)
            if arr is not None:
                slots = self._member_slots_sorted(arr)
                if slots is not None:
                    return slots
        get = index.get
        return np.fromiter(
            (get(item, -1) for item in unique), dtype=np.int64, count=len(unique)
        )

    def _member_slots_sorted(self, unique: np.ndarray) -> Optional[np.ndarray]:
        """Sorted-searchsorted membership for integer-labeled stores."""
        try:
            labels = np.fromiter(
                self._index.keys(), dtype=np.int64, count=len(self._index)
            )
        except (TypeError, ValueError, OverflowError):
            return None
        slots = np.fromiter(
            self._index.values(), dtype=np.int64, count=len(self._index)
        )
        order = np.argsort(labels, kind="stable")
        labels = labels[order]
        slots = slots[order]
        positions = np.searchsorted(labels, unique)
        clipped = np.minimum(positions, labels.size - 1)
        hits = labels[clipped] == unique
        return np.where(hits, slots[clipped], np.int64(-1))
