"""Stream-Summary data structure of Metwally, Agrawal and El Abbadi.

The Space Saving family of sketches must repeatedly (a) look up an item's
counter, (b) increment a counter, (c) find a bin with the minimum count and
(d) relabel that minimum bin.  The Stream-Summary structure supports all of
these in worst-case ``O(1)`` time for unit increments by keeping bins grouped
in *buckets* of equal count, with the buckets arranged in a doubly linked
list ordered by count.

The structure stores integer counts.  Sketches that need real-valued
counters (weighted updates, merged sketches with Horvitz-Thompson adjusted
counts) use the heap-backed store in :mod:`repro.core.base` instead.

Example
-------
>>> summary = StreamSummary()
>>> summary.insert("a", 1)
>>> summary.insert("b", 3)
>>> summary.increment("a")
>>> summary.min_count()
2
>>> summary.count("b")
3
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro._typing import Item
from repro.errors import InvalidParameterError, SketchStateError

__all__ = ["StreamSummary"]


class _Bucket:
    """A node in the doubly linked bucket list.

    Each bucket holds every bin label whose counter currently equals
    ``count``.  Labels are kept in a dict used as an ordered set so that
    membership tests, insertion and removal are all constant time.
    """

    __slots__ = ("count", "labels", "prev", "next")

    def __init__(self, count: int) -> None:
        self.count = count
        self.labels: Dict[Item, None] = {}
        self.prev: Optional["_Bucket"] = None
        self.next: Optional["_Bucket"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Bucket(count={self.count}, labels={list(self.labels)})"


class StreamSummary:
    """Doubly linked bucket list with a label index.

    Buckets are ordered by strictly increasing count from ``_head`` (minimum)
    to ``_tail`` (maximum).  An index maps each label to the bucket that
    currently holds it, so every operation needed by Space Saving runs in
    amortized constant time for unit increments.

    Parameters
    ----------
    rng:
        Optional :class:`random.Random` used when breaking ties among several
        minimum-count labels.  When omitted, ties are broken arbitrarily
        (insertion order), which is what a production implementation would
        do; the analysis in the paper assumes random tie breaking, so the
        sketches pass their own generator in.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._index: Dict[Item, _Bucket] = {}
        self._head: Optional[_Bucket] = None
        self._tail: Optional[_Bucket] = None
        self._rng = rng

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, item: Item) -> bool:
        return item in self._index

    def __bool__(self) -> bool:
        return bool(self._index)

    def count(self, item: Item) -> int:
        """Return the counter currently associated with ``item``.

        Raises
        ------
        KeyError
            If ``item`` is not a label in the structure.
        """
        return self._index[item].count

    def get(self, item: Item, default: int = 0) -> int:
        """Return ``item``'s counter, or ``default`` if absent."""
        bucket = self._index.get(item)
        return default if bucket is None else bucket.count

    def min_count(self) -> int:
        """Return the smallest counter value currently stored."""
        if self._head is None:
            raise SketchStateError("min_count() on an empty StreamSummary")
        return self._head.count

    def max_count(self) -> int:
        """Return the largest counter value currently stored."""
        if self._tail is None:
            raise SketchStateError("max_count() on an empty StreamSummary")
        return self._tail.count

    def min_label(self) -> Item:
        """Return a label having the minimum count.

        Ties are broken with the generator supplied at construction time, or
        arbitrarily when no generator was given.
        """
        if self._head is None:
            raise SketchStateError("min_label() on an empty StreamSummary")
        labels = self._head.labels
        if self._rng is not None and len(labels) > 1:
            return self._rng.choice(list(labels))
        return next(iter(labels))

    def min_labels(self) -> List[Item]:
        """Return every label tied for the minimum count."""
        if self._head is None:
            raise SketchStateError("min_labels() on an empty StreamSummary")
        return list(self._head.labels)

    def items(self) -> Iterator[Tuple[Item, int]]:
        """Iterate over ``(label, count)`` pairs in ascending count order."""
        bucket = self._head
        while bucket is not None:
            for label in bucket.labels:
                yield label, bucket.count
            bucket = bucket.next

    def counts(self) -> Dict[Item, int]:
        """Return a snapshot dict of all ``label -> count`` pairs."""
        return {label: count for label, count in self.items()}

    # ------------------------------------------------------------------
    # Structural updates
    # ------------------------------------------------------------------
    def insert(self, item: Item, count: int = 0) -> None:
        """Add a new label with the given counter value.

        Raises
        ------
        InvalidParameterError
            If ``item`` is already present or ``count`` is negative.
        """
        if item in self._index:
            raise InvalidParameterError(f"label {item!r} already present")
        if count < 0:
            raise InvalidParameterError("counts must be non-negative")
        bucket = self._find_or_create_bucket(count)
        bucket.labels[item] = None
        self._index[item] = bucket

    def remove(self, item: Item) -> int:
        """Remove ``item`` and return the counter it held."""
        bucket = self._index.pop(item)
        del bucket.labels[item]
        count = bucket.count
        if not bucket.labels:
            self._unlink(bucket)
        return count

    def increment(self, item: Item, by: int = 1) -> int:
        """Increase ``item``'s counter by ``by`` and return the new value.

        Unit increments are worst-case constant time.  Larger increments walk
        forward through the bucket list and cost time proportional to the
        number of distinct counter values skipped, which is how the weighted
        integer update in the sketches uses it.
        """
        if by < 0:
            raise InvalidParameterError("increment must be non-negative")
        bucket = self._index[item]
        if by == 0:
            return bucket.count
        new_count = bucket.count + by
        target = self._bucket_at_or_after(bucket, new_count)
        del bucket.labels[item]
        target.labels[item] = None
        self._index[item] = target
        if not bucket.labels:
            self._unlink(bucket)
        return new_count

    def relabel(self, old: Item, new: Item) -> None:
        """Replace label ``old`` with ``new`` without changing the counter.

        Raises
        ------
        KeyError
            If ``old`` is not present.
        InvalidParameterError
            If ``new`` is already a label in the structure.
        """
        if new in self._index:
            raise InvalidParameterError(f"label {new!r} already present")
        bucket = self._index.pop(old)
        del bucket.labels[old]
        bucket.labels[new] = None
        self._index[new] = bucket

    def increment_many(self, pairs: Iterable[Tuple[Item, int]]) -> None:
        """Bulk form of :meth:`increment` for the batched ingestion path.

        Applies ``increment(item, by)`` for every pair in order with the
        per-call validation hoisted out of the loop.  Every label must
        already be present; the final state is identical to sequential
        :meth:`increment` calls.
        """
        staged = pairs if isinstance(pairs, list) else list(pairs)
        for item, by in staged:
            if by < 0:
                raise InvalidParameterError("increment must be non-negative")
            if item not in self._index:
                raise KeyError(item)
        for item, by in staged:
            if by == 0:
                continue
            bucket = self._index[item]
            new_count = bucket.count + by
            target = self._bucket_at_or_after(bucket, new_count)
            del bucket.labels[item]
            target.labels[item] = None
            self._index[item] = target
            if not bucket.labels:
                self._unlink(bucket)

    def increment_min(self, by: int = 1) -> Tuple[Item, int]:
        """Increment a minimum-count bin and return ``(label, new_count)``."""
        label = self.min_label()
        new_count = self.increment(label, by)
        return label, new_count

    # ------------------------------------------------------------------
    # Linked-list plumbing
    # ------------------------------------------------------------------
    def _find_or_create_bucket(self, count: int) -> _Bucket:
        """Find the bucket for ``count``, creating and linking it if needed."""
        bucket = self._head
        prev: Optional[_Bucket] = None
        while bucket is not None and bucket.count < count:
            prev = bucket
            bucket = bucket.next
        if bucket is not None and bucket.count == count:
            return bucket
        created = _Bucket(count)
        self._link_after(prev, created)
        return created

    def _bucket_at_or_after(self, start: _Bucket, count: int) -> _Bucket:
        """Find or create the bucket for ``count`` scanning forward of ``start``."""
        prev = start
        bucket = start.next
        while bucket is not None and bucket.count < count:
            prev = bucket
            bucket = bucket.next
        if bucket is not None and bucket.count == count:
            return bucket
        created = _Bucket(count)
        self._link_after(prev, created)
        return created

    def _link_after(self, prev: Optional[_Bucket], bucket: _Bucket) -> None:
        """Insert ``bucket`` immediately after ``prev`` (or at the head)."""
        if prev is None:
            bucket.next = self._head
            if self._head is not None:
                self._head.prev = bucket
            self._head = bucket
            if self._tail is None:
                self._tail = bucket
        else:
            bucket.next = prev.next
            bucket.prev = prev
            if prev.next is not None:
                prev.next.prev = bucket
            prev.next = bucket
            if self._tail is prev:
                self._tail = bucket

    def _unlink(self, bucket: _Bucket) -> None:
        """Remove an empty bucket from the linked list."""
        if bucket.prev is not None:
            bucket.prev.next = bucket.next
        else:
            self._head = bucket.next
        if bucket.next is not None:
            bucket.next.prev = bucket.prev
        else:
            self._tail = bucket.prev
        bucket.prev = None
        bucket.next = None

    # ------------------------------------------------------------------
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify internal consistency; raises ``AssertionError`` on failure.

        The invariants are: buckets are strictly increasing in count, no
        bucket is empty, every indexed label lives in the bucket the index
        points at, and the doubly linked pointers are mutually consistent.
        """
        seen = 0
        bucket = self._head
        prev: Optional[_Bucket] = None
        while bucket is not None:
            assert bucket.labels, "empty bucket left linked"
            assert bucket.prev is prev, "broken prev pointer"
            if prev is not None:
                assert bucket.count > prev.count, "bucket counts not increasing"
            for label in bucket.labels:
                assert self._index[label] is bucket, "index points at wrong bucket"
            seen += len(bucket.labels)
            prev = bucket
            bucket = bucket.next
        assert self._tail is prev, "broken tail pointer"
        assert seen == len(self._index), "index size mismatch"
