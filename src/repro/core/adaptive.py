"""Adaptive-size Unbiased Space Saving (§5.3 extension).

The paper notes that replacing the pairwise reduction with a multi-bin PPS
reduction lets the sketch change its size on the fly: grow when memory is
available or error targets are missed, and shrink by removing only bins with
small estimated frequency — unbiasedly, so subset sums remain valid across
resizes.  This module implements that extension on top of the
:class:`~repro.core.reduction.GeneralizedSpaceSaving` machinery.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._typing import Item, ItemPredicate
from repro.core.base import SubsetSumSketch
from repro.core.variance import EstimateWithError, subset_variance_estimate
from repro.errors import InvalidParameterError
from repro.sampling.varopt import varopt_reduce

__all__ = ["AdaptiveUnbiasedSpaceSaving"]


class AdaptiveUnbiasedSpaceSaving(SubsetSumSketch):
    """Unbiased Space Saving with a dynamically adjustable bin budget.

    Parameters
    ----------
    capacity:
        Initial bin budget.
    max_capacity:
        Optional hard ceiling used by the automatic growth policy.
    growth_trigger:
        When set to a value ``f`` in ``(0, 1)``, the sketch grows (doubling,
        up to ``max_capacity``) whenever the minimum bin count exceeds
        ``f × total_weight`` — i.e. whenever the resolution of the tail has
        degraded past the requested fraction of the stream.
    seed:
        Seed for all randomness (label replacement and reductions).

    Notes
    -----
    Shrinking uses a fixed-size PPS (VarOpt) reduction whose adjusted counts
    preserve all expectations, so estimates remain unbiased across any
    sequence of grows and shrinks (Theorem 2).
    """

    def __init__(
        self,
        capacity: int,
        *,
        max_capacity: Optional[int] = None,
        growth_trigger: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(capacity, seed=seed)
        if max_capacity is not None and max_capacity < capacity:
            raise InvalidParameterError("max_capacity must be >= capacity")
        if growth_trigger is not None and not 0 < growth_trigger < 1:
            raise InvalidParameterError("growth_trigger must lie in (0, 1)")
        self._max_capacity = max_capacity
        self._growth_trigger = growth_trigger
        self._bins: Dict[Item, float] = {}
        self._resize_events = 0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one raw row, applying the pairwise unbiased reduction."""
        if weight <= 0:
            raise InvalidParameterError("weights must be positive")
        self._record_update(weight)
        bins = self._bins
        if item in bins:
            bins[item] += weight
            return
        if len(bins) < self._capacity:
            bins[item] = weight
            self._maybe_grow()
            return
        # Pairwise unbiased reduction, identical to UnbiasedSpaceSaving.
        min_label = min(bins, key=bins.get)
        combined = bins[min_label] + weight
        if self._rng.random() * combined < weight:
            del bins[min_label]
            bins[item] = combined
        else:
            bins[min_label] = combined
        self._maybe_grow()

    def _maybe_grow(self) -> None:
        """Apply the automatic growth policy after an update."""
        if self._growth_trigger is None or not self._bins:
            return
        if len(self._bins) < self._capacity:
            return
        min_count = min(self._bins.values())
        if min_count > self._growth_trigger * self._total_weight:
            target = self._capacity * 2
            if self._max_capacity is not None:
                target = min(target, self._max_capacity)
            if target > self._capacity:
                self.resize(target)

    # ------------------------------------------------------------------
    # Resizing
    # ------------------------------------------------------------------
    def resize(self, new_capacity: int) -> None:
        """Change the bin budget, shrinking unbiasedly when necessary."""
        if new_capacity < 1:
            raise InvalidParameterError("capacity must be a positive integer")
        if new_capacity < len(self._bins):
            self._bins = dict(varopt_reduce(self._bins, new_capacity, rng=self._rng))
        self._capacity = new_capacity
        self._resize_events += 1

    @property
    def resize_events(self) -> int:
        """Number of times the sketch has been resized (manually or automatically)."""
        return self._resize_events

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        return self._bins.get(item, 0.0)

    def estimates(self) -> Dict[Item, float]:
        return dict(self._bins)

    @property
    def min_count(self) -> float:
        """Minimum bin count (0 while under capacity)."""
        if len(self._bins) < self._capacity or not self._bins:
            return 0.0
        return min(self._bins.values())

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Subset sum with the equation-5 variance estimate."""
        estimate = 0.0
        in_subset = 0
        for item, count in self._bins.items():
            if predicate(item):
                estimate += count
                in_subset += 1
        return EstimateWithError(
            estimate=estimate,
            variance=subset_variance_estimate(self.min_count, in_subset),
        )
