"""Core sketches: Unbiased Space Saving, Deterministic Space Saving and extensions.

The primary public entry point is
:class:`~repro.core.unbiased_space_saving.UnbiasedSpaceSaving`; the rest of
the subpackage supplies the baseline Deterministic Space Saving sketch, the
Stream-Summary data structure, pluggable reductions, merges, variance
estimation, time decay, adaptive sizing and signed updates.
"""

from repro.core.adaptive import AdaptiveUnbiasedSpaceSaving
from repro.core.batching import collapse_batch, collapse_batch_arrays
from repro.core.base import (
    BinStore,
    FrequentItemSketch,
    HeapBinStore,
    StreamSummaryBinStore,
    SubsetSumSketch,
)
from repro.core.columnar import ColumnarCounterStore, available_kernels, resolve_kernel_name
from repro.core.decay import ForwardDecaySketch, exponential_decay, polynomial_decay
from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.merge import (
    combine_estimates,
    merge_many_unbiased,
    merge_misra_gries,
    merge_unbiased,
    reduce_bins_unbiased,
)
from repro.core.reduction import (
    DeterministicPairReduction,
    GeneralizedSpaceSaving,
    PPSReduction,
    ReductionPolicy,
    UnbiasedPairReduction,
)
from repro.core.stream_summary import StreamSummary
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.core.variance import (
    EstimateWithError,
    coverage,
    normal_confidence_interval,
    poisson_pps_variance,
    pps_variance_bound,
    subset_variance_estimate,
)
from repro.core.weighted import SignedUnbiasedSpaceSaving, weighted_stream_to_unit_rows

__all__ = [
    "AdaptiveUnbiasedSpaceSaving",
    "BinStore",
    "ColumnarCounterStore",
    "available_kernels",
    "resolve_kernel_name",
    "FrequentItemSketch",
    "HeapBinStore",
    "StreamSummaryBinStore",
    "SubsetSumSketch",
    "ForwardDecaySketch",
    "exponential_decay",
    "polynomial_decay",
    "DeterministicSpaceSaving",
    "combine_estimates",
    "merge_many_unbiased",
    "merge_misra_gries",
    "merge_unbiased",
    "reduce_bins_unbiased",
    "DeterministicPairReduction",
    "GeneralizedSpaceSaving",
    "PPSReduction",
    "ReductionPolicy",
    "UnbiasedPairReduction",
    "StreamSummary",
    "UnbiasedSpaceSaving",
    "EstimateWithError",
    "coverage",
    "normal_confidence_interval",
    "poisson_pps_variance",
    "pps_variance_bound",
    "subset_variance_estimate",
    "SignedUnbiasedSpaceSaving",
    "weighted_stream_to_unit_rows",
    "collapse_batch",
    "collapse_batch_arrays",
]
