"""Signed and real-valued update support (§5.3 extension).

The base :class:`~repro.core.unbiased_space_saving.UnbiasedSpaceSaving`
already handles positive real-valued weights through its randomized pairwise
PPS reduction.  Two additional pieces live here:

* :class:`SignedUnbiasedSpaceSaving` — handles deletions / negative weights
  by maintaining two unbiased sketches, one for positive flow and one for
  the magnitude of negative flow; every estimate and subset sum is the
  difference of two unbiased estimates and hence unbiased.  This mirrors the
  paper's remark that reductions can be made two-sided to support deletions.
* :func:`weighted_stream_to_unit_rows` — a helper for integer-weighted rows
  that expands them into unit rows, useful when an exact integer code path
  (stream-summary store) is preferred over the randomized weighted update.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro._typing import Item, ItemPredicate
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError

__all__ = ["SignedUnbiasedSpaceSaving", "weighted_stream_to_unit_rows"]


def weighted_stream_to_unit_rows(
    rows: Iterable[Tuple[Item, int]]
) -> Iterator[Item]:
    """Expand ``(item, integer_weight)`` rows into repeated unit rows.

    Raises
    ------
    InvalidParameterError
        If a weight is negative or not an integer.
    """
    for item, weight in rows:
        if weight < 0 or weight != int(weight):
            raise InvalidParameterError(
                "weighted_stream_to_unit_rows requires non-negative integer weights"
            )
        for _ in range(int(weight)):
            yield item


class SignedUnbiasedSpaceSaving:
    """Unbiased sketching of streams with insertions *and* deletions.

    Positive-weight updates go to one Unbiased Space Saving sketch and the
    magnitudes of negative-weight updates to another; the estimate for an
    item (and any subset sum) is the difference of the two sketches'
    unbiased estimates, so it is unbiased for the net count.  The variance
    estimates add because the two sketches are independent.

    This trades space (two sketches) for the ability to process turnstile
    streams, e.g. click streams with retraction events or join-size deltas.
    """

    def __init__(self, capacity: int, *, seed: Optional[int] = None) -> None:
        if capacity < 1:
            raise InvalidParameterError("capacity must be a positive integer")
        base_seed = seed if seed is not None else 0
        self._positive = UnbiasedSpaceSaving(capacity, seed=base_seed)
        self._negative = UnbiasedSpaceSaving(capacity, seed=base_seed + 1)
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        """Bin budget of each of the two internal sketches."""
        return self._capacity

    @property
    def rows_processed(self) -> int:
        """Total rows processed across both directions."""
        return self._positive.rows_processed + self._negative.rows_processed

    @property
    def net_weight(self) -> float:
        """Total positive weight minus total negative weight ingested."""
        return self._positive.total_weight - self._negative.total_weight

    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one signed row; ``weight`` may be positive or negative."""
        if weight == 0:
            raise InvalidParameterError("zero-weight updates carry no information")
        if weight > 0:
            self._positive.update(item, weight)
        else:
            self._negative.update(item, -weight)

    def extend(self, rows: Iterable[Tuple[Item, float]]) -> "SignedUnbiasedSpaceSaving":
        """Consume an iterable of ``(item, signed_weight)`` pairs."""
        for item, weight in rows:
            self.update(item, weight)
        return self

    def estimate(self, item: Item) -> float:
        """Unbiased estimate of the net count of ``item``."""
        return self._positive.estimate(item) - self._negative.estimate(item)

    def estimates(self) -> Dict[Item, float]:
        """Net estimates for every item retained by either sketch."""
        results: Dict[Item, float] = dict(self._positive.estimates())
        for item, count in self._negative.estimates().items():
            results[item] = results.get(item, 0.0) - count
        return results

    def subset_sum(self, predicate: ItemPredicate) -> float:
        """Unbiased estimate of the net subset sum."""
        return self._positive.subset_sum(predicate) - self._negative.subset_sum(predicate)

    def subset_sum_with_error(self, predicate: ItemPredicate) -> EstimateWithError:
        """Net subset sum with the summed variance of the two directions."""
        plus = self._positive.subset_sum_with_error(predicate)
        minus = self._negative.subset_sum_with_error(predicate)
        return EstimateWithError(
            estimate=plus.estimate - minus.estimate,
            variance=plus.variance + minus.variance,
        )

    @property
    def positive_sketch(self) -> UnbiasedSpaceSaving:
        """The sketch accumulating positive flow."""
        return self._positive

    @property
    def negative_sketch(self) -> UnbiasedSpaceSaving:
        """The sketch accumulating the magnitude of negative flow."""
        return self._negative
