"""Pluggable reduction operations and the generalized frequent-item sketch.

Section 5.3 of the paper observes that the Space Saving, Misra-Gries and
Lossy Counting sketches all follow the same template (Algorithm 2):

    1. increment the arriving item's counter exactly, then
    2. apply a *reduction* operation that brings the number of counters back
       within budget.

The reduction is the only place the sketches differ, and Theorem 2 shows
that any reduction whose post-reduction estimates equal the pre-reduction
estimates *in expectation* yields an unbiased sketch for the disaggregated
subset sum problem.  This module makes the reduction a first-class,
swappable strategy so the generalizations discussed in the paper (multi-bin
PPS reduction, priority-sampling reduction, decayed reduction) can be
expressed and tested against the same machinery.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Optional

from repro._typing import Item
from repro.core.base import SubsetSumSketch
from repro.core.variance import EstimateWithError, subset_variance_estimate
from repro.errors import InvalidParameterError, UnsupportedUpdateError
from repro.sampling.varopt import varopt_reduce

__all__ = [
    "ReductionPolicy",
    "DeterministicPairReduction",
    "UnbiasedPairReduction",
    "PPSReduction",
    "GeneralizedSpaceSaving",
]


class ReductionPolicy(abc.ABC):
    """Strategy that shrinks a bin map back down to the capacity."""

    #: Whether the policy preserves expected counts (Theorem 2's condition).
    unbiased: bool = False

    @abc.abstractmethod
    def reduce(
        self,
        bins: Dict[Item, float],
        capacity: int,
        rng: random.Random,
        newcomer: Item,
    ) -> Dict[Item, float]:
        """Return a new bin map with at most ``capacity`` entries.

        Parameters
        ----------
        bins:
            The post-increment bins (may exceed the capacity by one or more).
        capacity:
            The bin budget ``m``.
        rng:
            Random generator owned by the sketch.
        newcomer:
            The item whose arrival triggered the reduction; the two pairwise
            policies use it to identify the freshly inserted bin.
        """


def _two_smallest(bins: Dict[Item, float], newcomer: Item) -> tuple:
    """Return (newcomer, other) where ``other`` is the smallest incumbent bin."""
    other = min(
        (item for item in bins if item != newcomer),
        key=lambda item: bins[item],
    )
    return newcomer, other


class DeterministicPairReduction(ReductionPolicy):
    """The Deterministic Space Saving reduction.

    Collapses the newcomer's bin into the smallest incumbent bin and hands
    the combined count to the *newcomer* — equivalent to always taking over
    the minimum bin.  Biased (counts only ever grow), but with the classic
    deterministic ``n_tot / m`` error guarantee.
    """

    unbiased = False

    def reduce(
        self,
        bins: Dict[Item, float],
        capacity: int,
        rng: random.Random,
        newcomer: Item,
    ) -> Dict[Item, float]:
        new, other = _two_smallest(bins, newcomer)
        combined = bins[new] + bins[other]
        reduced = dict(bins)
        del reduced[other]
        reduced[new] = combined
        return reduced


class UnbiasedPairReduction(ReductionPolicy):
    """The Unbiased Space Saving reduction: a PPS sample of the two smallest bins.

    The combined count of the newcomer and the smallest incumbent is assigned
    to one of the two labels with probability proportional to its own count,
    which keeps both expected counts unchanged (Theorem 1).
    """

    unbiased = True

    def reduce(
        self,
        bins: Dict[Item, float],
        capacity: int,
        rng: random.Random,
        newcomer: Item,
    ) -> Dict[Item, float]:
        new, other = _two_smallest(bins, newcomer)
        combined = bins[new] + bins[other]
        if combined <= 0:
            raise UnsupportedUpdateError("cannot reduce bins with zero combined count")
        keep_new = rng.random() * combined < bins[new]
        winner = new if keep_new else other
        loser = other if keep_new else new
        reduced = dict(bins)
        del reduced[loser]
        reduced[winner] = combined
        return reduced


class PPSReduction(ReductionPolicy):
    """Full-bin PPS reduction (§5.3's generalization).

    Reduces *all* bins back to the capacity with a fixed-size PPS (VarOpt)
    sample whose Horvitz-Thompson adjusted counts preserve every expectation.
    Compared with the pairwise reduction it supports adding items with
    arbitrary weights and shrinking by several bins in one step, at the cost
    of real-valued counters.
    """

    unbiased = True

    def reduce(
        self,
        bins: Dict[Item, float],
        capacity: int,
        rng: random.Random,
        newcomer: Item,
    ) -> Dict[Item, float]:
        return varopt_reduce(bins, capacity, rng=rng)


class GeneralizedSpaceSaving(SubsetSumSketch):
    """Algorithm 2: exact increment followed by a pluggable reduction.

    This dictionary-based sketch trades the ``O(1)`` update of the
    specialized implementations for complete generality: any reduction
    policy, arbitrary positive weights, and multi-bin shrinks.  It is the
    reference implementation the property-based tests compare the optimized
    sketches against, and the vehicle for the paper's §5.3 extensions.

    Example
    -------
    >>> sketch = GeneralizedSpaceSaving(capacity=2, policy=UnbiasedPairReduction(), seed=3)
    >>> _ = sketch.extend(["x", "y", "z", "x"])
    >>> len(sketch) <= 2
    True
    """

    def __init__(
        self,
        capacity: int,
        *,
        policy: Optional[ReductionPolicy] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(capacity, seed=seed)
        self._policy = policy or UnbiasedPairReduction()
        self._bins: Dict[Item, float] = {}

    @property
    def policy(self) -> ReductionPolicy:
        """The reduction strategy in use."""
        return self._policy

    def update(self, item: Item, weight: float = 1.0) -> None:
        """Exact increment followed by a reduction when over budget."""
        if weight <= 0:
            raise InvalidParameterError("weights must be positive")
        self._record_update(weight)
        self._bins[item] = self._bins.get(item, 0.0) + float(weight)
        if len(self._bins) > self._capacity:
            self._bins = dict(
                self._policy.reduce(self._bins, self._capacity, self._rng, item)
            )

    def add_aggregate(self, item: Item, count: float) -> None:
        """Add a pre-aggregated count for ``item`` (the §5.3 'arbitrary counts' case).

        Only meaningful with an unbiased multi-bin policy such as
        :class:`PPSReduction`; the pairwise policies would assign the whole
        count to a single survivor of the pair, which remains unbiased but
        has needlessly high variance.
        """
        if count <= 0:
            raise InvalidParameterError("aggregate counts must be positive")
        self._rows_processed += 1
        self._total_weight += count
        self._bins[item] = self._bins.get(item, 0.0) + float(count)
        if len(self._bins) > self._capacity:
            self._bins = dict(
                self._policy.reduce(self._bins, self._capacity, self._rng, item)
            )

    def estimate(self, item: Item) -> float:
        return self._bins.get(item, 0.0)

    def estimates(self) -> Dict[Item, float]:
        return dict(self._bins)

    @property
    def min_count(self) -> float:
        """Minimum bin count (0 while under capacity)."""
        if len(self._bins) < self._capacity or not self._bins:
            return 0.0
        return min(self._bins.values())

    def subset_sum_with_error(self, predicate) -> EstimateWithError:
        """Subset sum with the equation-5 variance estimate."""
        estimate = 0.0
        in_subset = 0
        for item, count in self._bins.items():
            if predicate(item):
                estimate += count
                in_subset += 1
        return EstimateWithError(
            estimate=estimate,
            variance=subset_variance_estimate(self.min_count, in_subset),
        )
