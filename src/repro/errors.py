"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidParameterError(ReproError, ValueError):
    """A constructor or method argument is outside its valid domain."""


class SketchStateError(ReproError, RuntimeError):
    """An operation was attempted on a sketch in an incompatible state.

    Examples include merging sketches with incompatible configurations or
    querying an estimator that requires at least one processed row.
    """


class IncompatibleSketchError(SketchStateError):
    """Two sketches cannot be merged because their configurations differ."""


class EmptySketchError(SketchStateError):
    """A query requiring data was issued against an empty sketch."""


class UnsupportedUpdateError(ReproError, TypeError):
    """An update (e.g. negative weight) is not supported by this sketch."""


class CapabilityError(InvalidParameterError):
    """An estimator does not provide the capability an operation requires.

    Raised by the :mod:`repro.api` protocol layer and by capability-typed
    entry points when a query (enumerating estimates, reporting heavy
    hitters, attaching an error model, running on a scale-out backend)
    is issued against an object that cannot answer it — e.g. asking a
    CountMin sketch built without heavy-hitter tracking to enumerate
    items.  Subclasses :class:`InvalidParameterError` so existing callers
    that catch the broader class keep working.
    """


class ServeError(ReproError):
    """Base class for errors raised by the :mod:`repro.serve` serving layer."""


class SessionNotFoundError(ServeError, KeyError):
    """A serve request named a session the registry does not hold.

    Raised for sessions that were never created, already dropped, or
    evicted by the registry's TTL / capacity policy.  Subclasses
    :class:`KeyError` because the registry is a keyed store.
    """

    def __str__(self) -> str:  # KeyError quotes its repr; keep the message readable
        return self.args[0] if self.args else ""


class BackpressureError(ServeError, RuntimeError):
    """A non-blocking enqueue found the session's ingest queue full.

    Producers that can wait should use the awaitable ``put_batch`` path,
    which blocks until the single-writer ingest loop frees queue space
    instead of raising.
    """


class ServerClosedError(ServeError, RuntimeError):
    """An operation was attempted on a closed server or served session."""


class QuotaExceededError(ServeError, RuntimeError):
    """A tenant hit one of its configured serving quotas.

    Raised by the quota layer (:mod:`repro.serve.quota`) when a tenant
    asks for more than its budget allows: creating a session beyond
    ``max_sessions`` or ``max_resident_counters``, or pushing rows through
    a *non-blocking* ingest path faster than ``max_rows_per_sec``.  The
    blocking ingest path (``put_batch`` / wire ``block:true``) never
    raises this — it absorbs rate overages as backpressure delay instead.
    """


class ClusterError(ServeError):
    """Base class for errors raised by the :mod:`repro.cluster` routing tier.

    Covers cluster-level failures that have no single-server analogue:
    misconfigured memberships, sessions routed to members that no longer
    exist, and fail-over attempts with no surviving member to take over.
    """


class RouteMovedError(ClusterError):
    """A session's placement changed while the request was in flight.

    Raised by the cluster router when a non-blocking op targets a shard
    slot that is mid-migration (a ``join`` or ``decommission`` is moving
    it to another member).  The op had **no effect** — nothing was
    enqueued — so retrying is always safe; after the migration epoch
    closes the retry lands on the new owner.
    :class:`~repro.serve.client.TCPServeClient` retries these
    transparently up to its ``moved_retries`` budget.
    """


class MemberDownError(ClusterError, ConnectionError):
    """A cluster member could not be reached after bounded retries.

    Raised by the router's member connections once their retry/backoff
    budget is exhausted.  The router reacts by marking the member down and
    re-mapping its hash range; callers seeing this error directly were
    talking to a member endpoint themselves.  Subclasses
    :class:`ConnectionError` so generic socket-failure handlers apply.
    """


class ConnectorError(ReproError):
    """Base class for errors raised by the :mod:`repro.connectors` sources.

    Covers ingestion-side failures that have no sketch analogue:
    malformed source records, sources polled for partitions they do not
    hold, and offset bookkeeping that no longer matches the source.
    """


class UnknownPartitionError(ConnectorError, KeyError):
    """A source was polled for a partition it does not hold.

    Subclasses :class:`KeyError` because a source is a keyed collection
    of partitions.
    """

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return self.args[0] if self.args else ""


class StaleOffsetError(ConnectorError, ValueError):
    """A committed offset points past the end of its partition.

    Raised when a consumer resumes from a recorded offset but the
    partition has *rewound* underneath it — the log was truncated,
    recreated, or replaced with a shorter one — so replaying "from the
    offset" would silently skip or refabricate rows.  Exactly-once
    resume refuses the poll instead: the recorded offset no longer names
    a position in this partition, and continuing would break the
    bit-identical replay contract.  Catching it is the operator's cue to
    re-seed the pipeline (fresh checkpoint, offset 0) rather than trust
    the stale frame.
    """


class SerializationError(ReproError, ValueError):
    """A sketch payload could not be encoded or decoded.

    Raised for corrupt or truncated byte frames, payloads produced by a
    newer schema version than this library understands, type mismatches
    (deserializing a payload with the wrong sketch class) and item labels
    outside the serializable domain.
    """
