"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidParameterError(ReproError, ValueError):
    """A constructor or method argument is outside its valid domain."""


class SketchStateError(ReproError, RuntimeError):
    """An operation was attempted on a sketch in an incompatible state.

    Examples include merging sketches with incompatible configurations or
    querying an estimator that requires at least one processed row.
    """


class IncompatibleSketchError(SketchStateError):
    """Two sketches cannot be merged because their configurations differ."""


class EmptySketchError(SketchStateError):
    """A query requiring data was issued against an empty sketch."""


class UnsupportedUpdateError(ReproError, TypeError):
    """An update (e.g. negative weight) is not supported by this sketch."""


class CapabilityError(InvalidParameterError):
    """An estimator does not provide the capability an operation requires.

    Raised by the :mod:`repro.api` protocol layer and by capability-typed
    entry points when a query (enumerating estimates, reporting heavy
    hitters, attaching an error model, running on a scale-out backend)
    is issued against an object that cannot answer it — e.g. asking a
    CountMin sketch built without heavy-hitter tracking to enumerate
    items.  Subclasses :class:`InvalidParameterError` so existing callers
    that catch the broader class keep working.
    """


class SerializationError(ReproError, ValueError):
    """A sketch payload could not be encoded or decoded.

    Raised for corrupt or truncated byte frames, payloads produced by a
    newer schema version than this library understands, type mismatches
    (deserializing a payload with the wrong sketch class) and item labels
    outside the serializable domain.
    """
