"""Window policies: how a timestamped stream maps onto sketch state.

A :class:`WindowPolicy` describes the *time semantics* of a windowed
estimator independently of the sketch that implements it.  Three policies
are provided, each with a compact spec-string form accepted by
:func:`repro.build`'s ``window=`` parameter:

* ``"tumbling:60s"`` — :class:`TumblingWindowPolicy`: non-overlapping
  fixed-width windows; queries answer over whole windows.
* ``"sliding:5m/30s"`` — :class:`SlidingWindowPolicy`: a horizon of 5
  minutes advanced in 30-second panes; queries answer over the last
  ``horizon / pane`` panes.
* ``"decay:exp:0.01"`` (or ``"decay:poly:2"``) — :class:`DecayPolicy`:
  no hard expiry; every row is down-weighted continuously by forward
  decay (§5.3), exponential at the given rate or polynomial at the given
  exponent.

Durations accept ``ms``/``s``/``m``/``h``/``d`` suffixes (bare numbers
mean seconds), so ``"sliding:1h/5m"`` and ``"sliding:3600/300"`` are the
same policy.

>>> parse_window_policy("tumbling:60s")
TumblingWindowPolicy(width_seconds=60.0, retain=1)
>>> parse_window_policy("sliding:5m/30s").num_panes
10
>>> parse_window_policy("decay:exp:0.01").rate
0.01
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Union

from repro.errors import InvalidParameterError

__all__ = [
    "WindowPolicy",
    "TumblingWindowPolicy",
    "SlidingWindowPolicy",
    "DecayPolicy",
    "parse_duration",
    "parse_window_policy",
]

#: Duration-suffix multipliers, in seconds.
_UNITS = {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}

_DURATION_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*(ms|s|m|h|d)?\s*$")


def parse_duration(text: Union[str, float, int]) -> float:
    """Parse a duration like ``"30s"``, ``"5m"`` or ``90`` into seconds.

    >>> parse_duration("90s"), parse_duration("1.5m"), parse_duration(45)
    (90.0, 90.0, 45.0)
    """
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        match = _DURATION_RE.match(text)
        if match is None:
            raise InvalidParameterError(
                f"cannot parse duration {text!r}; expected a number with an "
                f"optional unit suffix from {sorted(_UNITS)}"
            )
        value = float(match.group(1)) * _UNITS[match.group(2) or "s"]
    if not value > 0:
        raise InvalidParameterError("durations must be positive")
    return value


class WindowPolicy:
    """Base class for the time semantics of a windowed estimator."""

    def describe(self) -> str:
        """The canonical spec string that reconstructs this policy."""
        raise NotImplementedError

    def build_sketch(self, spec: str, size: int, seed, params):
        """Build the windowed estimator implementing this policy.

        ``spec``/``size``/``seed``/``params`` follow the conventions of
        :func:`repro.build`; ``params`` is consumed in place.
        """
        raise NotImplementedError


def _format_duration(seconds: float) -> str:
    """Render seconds back to the most compact exact suffix form."""
    for unit in ("d", "h", "m", "s"):
        scaled = seconds / _UNITS[unit]
        if scaled >= 1 and scaled == int(scaled):
            return f"{int(scaled)}{unit}"
    return f"{seconds:g}s"


@dataclass(frozen=True)
class TumblingWindowPolicy(WindowPolicy):
    """Non-overlapping fixed-width windows (``"tumbling:<width>[*<retain>]"``).

    ``retain`` is how many recent windows the sketch keeps for ``last=k``
    queries (default 1 — the active window only); it rides in the spec
    string as ``"tumbling:1h*3"`` so that :meth:`describe` always
    reconstructs the full policy.
    """

    width_seconds: float
    retain: int = 1

    def __post_init__(self) -> None:
        if not self.width_seconds > 0:
            raise InvalidParameterError("window width must be positive")
        if self.retain < 1:
            raise InvalidParameterError("retain must be a positive window count")

    def describe(self) -> str:
        suffix = f"*{self.retain}" if self.retain != 1 else ""
        return f"tumbling:{_format_duration(self.width_seconds)}{suffix}"

    def build_sketch(self, spec, size, seed, params):
        from repro.windows.windowed import TumblingWindowSketch

        return TumblingWindowSketch(
            size,
            width=self.width_seconds,
            spec=spec,
            seed=seed,
            origin=params.pop("origin", 0.0),
            retain=params.pop("retain", self.retain),
            **params,
        )


@dataclass(frozen=True)
class SlidingWindowPolicy(WindowPolicy):
    """A query horizon advanced in fixed panes (``"sliding:<horizon>/<pane>"``).

    The horizon must be an exact multiple of the pane width so that "the
    last ``horizon``" is always a whole number of panes.
    """

    horizon_seconds: float
    pane_seconds: float

    def __post_init__(self) -> None:
        if not self.pane_seconds > 0:
            raise InvalidParameterError("pane width must be positive")
        panes = self.horizon_seconds / self.pane_seconds
        if panes < 1 or abs(panes - round(panes)) > 1e-9:
            raise InvalidParameterError(
                f"sliding horizon ({self.horizon_seconds:g}s) must be a "
                f"positive whole multiple of the pane width "
                f"({self.pane_seconds:g}s)"
            )

    @property
    def num_panes(self) -> int:
        """Number of panes spanning the horizon."""
        return int(round(self.horizon_seconds / self.pane_seconds))

    def describe(self) -> str:
        return (
            f"sliding:{_format_duration(self.horizon_seconds)}"
            f"/{_format_duration(self.pane_seconds)}"
        )

    def build_sketch(self, spec, size, seed, params):
        from repro.windows.windowed import SlidingWindowSketch

        return SlidingWindowSketch(
            size,
            horizon=self.horizon_seconds,
            pane=self.pane_seconds,
            spec=spec,
            seed=seed,
            origin=params.pop("origin", 0.0),
            **params,
        )


@dataclass(frozen=True)
class DecayPolicy(WindowPolicy):
    """Continuous forward decay (``"decay:exp:<rate>"`` / ``"decay:poly:<exp>"``)."""

    kind: str
    rate: float

    def __post_init__(self) -> None:
        if self.kind not in ("exp", "poly"):
            raise InvalidParameterError(
                f"unknown decay kind {self.kind!r}; expected 'exp' or 'poly'"
            )
        if self.rate < 0 or not math.isfinite(self.rate):
            raise InvalidParameterError("decay rate must be a non-negative number")

    def decay_function(self):
        """The forward-decay weight function ``g`` this policy names."""
        from repro.core.decay import exponential_decay, polynomial_decay

        if self.kind == "exp":
            return exponential_decay(self.rate)
        return polynomial_decay(self.rate)

    def describe(self) -> str:
        return f"decay:{self.kind}:{self.rate:g}"

    def build_sketch(self, spec, size, seed, params):
        from repro.windows.decayed import DecayedWindowSketch

        if spec != "unbiased_space_saving":
            from repro.errors import CapabilityError

            raise CapabilityError(
                f"window='decay:...' requires spec 'unbiased_space_saving' "
                f"(forward decay reweights the stream, which preserves "
                f"unbiasedness only for the unbiased sketch); got {spec!r}"
            )
        landmark = params.pop("landmark", 0.0)
        if params:
            raise InvalidParameterError(
                f"unknown parameters for decayed sessions: {sorted(params)}; "
                "accepted extras: ['landmark']"
            )
        return DecayedWindowSketch(size, policy=self, seed=seed, landmark=landmark)


def parse_window_policy(window: Union[str, WindowPolicy]) -> WindowPolicy:
    """Parse a ``window=`` spec string into a :class:`WindowPolicy`.

    Accepts an already-constructed policy unchanged, so callers can pass
    either form.

    >>> parse_window_policy("sliding:1h/5m")
    SlidingWindowPolicy(horizon_seconds=3600.0, pane_seconds=300.0)
    """
    if isinstance(window, WindowPolicy):
        return window
    if not isinstance(window, str) or ":" not in window:
        raise InvalidParameterError(
            f"cannot parse window policy {window!r}; expected "
            "'tumbling:<width>', 'sliding:<horizon>/<pane>' or "
            "'decay:exp|poly:<rate>'"
        )
    kind, _, rest = window.partition(":")
    if kind == "tumbling":
        width, star, retain = rest.partition("*")
        if not star:
            return TumblingWindowPolicy(parse_duration(width))
        try:
            parsed_retain = int(retain)
        except ValueError:
            raise InvalidParameterError(
                f"cannot parse retain count {retain!r} in {window!r}"
            ) from None
        return TumblingWindowPolicy(parse_duration(width), parsed_retain)
    if kind == "sliding":
        horizon, sep, pane = rest.partition("/")
        if not sep:
            raise InvalidParameterError(
                f"sliding windows need a pane width: 'sliding:<horizon>/<pane>' "
                f"(got {window!r})"
            )
        return SlidingWindowPolicy(parse_duration(horizon), parse_duration(pane))
    if kind == "decay":
        decay_kind, sep, rate = rest.partition(":")
        if not sep:
            raise InvalidParameterError(
                f"decay windows need a rate: 'decay:exp:<rate>' or "
                f"'decay:poly:<exponent>' (got {window!r})"
            )
        try:
            parsed_rate = float(rate)
        except ValueError:
            raise InvalidParameterError(
                f"cannot parse decay rate {rate!r} in {window!r}"
            ) from None
        return DecayPolicy(decay_kind, parsed_rate)
    raise InvalidParameterError(
        f"unknown window policy kind {kind!r} in {window!r}; expected "
        "'tumbling', 'sliding' or 'decay'"
    )
