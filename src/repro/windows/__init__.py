"""``repro.windows`` — time-windowed streaming on top of mergeable sketches.

The subsystem answers *time-scoped* versions of the paper's queries —
"heavy hitters over the last five minutes", "subset sum for this hour's
window" — by exploiting the mergeability theorem (§5.5): a window is a
ring of per-pane sketches, and a windowed query is a pane merge.

* :class:`TumblingWindowSketch` / :class:`SlidingWindowSketch` — the pane
  ring over any registered point-capable spec (Unbiased Space Saving by
  default).
* :class:`DecayedWindowSketch` — continuous forward decay (§5.3) refitted
  behind the same surface.
* :class:`WindowPolicy` and :func:`parse_window_policy` — the
  ``"tumbling:60s"`` / ``"sliding:5m/30s"`` / ``"decay:exp:0.01"`` spec
  strings accepted by :func:`repro.build`'s ``window=`` parameter.

>>> from repro.windows import SlidingWindowSketch
>>> sketch = SlidingWindowSketch(16, horizon="20s", pane="10s", seed=0)
>>> _ = sketch.extend([("a", 1.0, 3.0), ("a", 1.0, 14.0), ("b", 1.0, 15.0)])
>>> sketch.estimate("a")
2.0
"""

from repro.windows.decayed import DecayedWindowSketch
from repro.windows.policy import (
    DecayPolicy,
    SlidingWindowPolicy,
    TumblingWindowPolicy,
    WindowPolicy,
    parse_duration,
    parse_window_policy,
)
from repro.windows.windowed import (
    SlidingWindowSketch,
    TumblingWindowSketch,
    iter_timestamped_rows,
)

__all__ = [
    "DecayPolicy",
    "DecayedWindowSketch",
    "SlidingWindowPolicy",
    "SlidingWindowSketch",
    "TumblingWindowPolicy",
    "TumblingWindowSketch",
    "WindowPolicy",
    "iter_timestamped_rows",
    "parse_duration",
    "parse_window_policy",
]
