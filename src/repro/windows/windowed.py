"""Tumbling and sliding window sketches over a ring of per-window panes.

Time-sensitive monitoring workloads ("what is trending *now*?") need
queries over the recent stream, not over all time.  The paper's
mergeability theorem (§5.5, Theorem 2) makes that cheap: keep one small
sketch *pane* per window of stream time, and a query over the last ``k``
windows is just a merge of ``k`` panes — *window merge = sketch merge*.

Two classes implement the pattern:

* :class:`TumblingWindowSketch` — non-overlapping windows of width ``w``;
  queries answer over the active window by default (the last ``retain``
  windows are kept for ``last=k`` queries).
* :class:`SlidingWindowSketch` — a horizon ``H`` advanced in panes of
  width ``p``; queries answer over the ``H / p`` in-horizon panes.

Both route each timestamped row to the pane covering its timestamp,
expire panes that fall out of the horizon as time advances, and answer
point / subset-sum / heavy-hitter queries from a merged view of the live
panes that is cached until the next update or pane rotation.  Panes are
built from any registered spec with the ``point`` capability
(:mod:`repro.api.specs`) — Unbiased Space Saving by default, in which
case every windowed subset sum inherits the paper's unbiasedness (each
pane is unbiased for its window's rows, and sums of independent unbiased
estimates are unbiased; per-pane variances add).

Rows may arrive late: a timestamp landing in any still-retained pane is
routed to it, and only rows older than the horizon are rejected.  Rows
with no timestamp land in the most recent window.
"""

from __future__ import annotations

import numbers
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro._typing import Item, ItemPredicate
from repro.api.protocols import HEAVY_HITTERS, POINT, SERIALIZE, SUBSET_SUM
from repro.api.specs import get_spec
from repro.core.batching import iter_weighted_rows
from repro.core.merge import combine_estimates, merge_many_unbiased
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.core.variance import EstimateWithError
from repro.errors import CapabilityError, InvalidParameterError
from repro.io.serializable import SerializableSketch

__all__ = [
    "TumblingWindowSketch",
    "SlidingWindowSketch",
    "iter_timestamped_rows",
]


def iter_timestamped_rows(rows: Iterable) -> Iterable[Tuple[Item, float, Optional[float]]]:
    """Normalize a stream into ``(item, weight, timestamp-or-None)`` triples.

    A 3-element tuple/list whose last two elements are real numbers is an
    ``(item, weight, timestamp)`` row — the shape emitted by the
    timestamped generators in :mod:`repro.streams.generators`.  Anything
    else follows the :func:`repro.core.batching.iter_weighted_rows`
    heuristic (bare item, or ``(item, weight)`` pair) with no timestamp.
    3-element *composite keys* of numbers cannot ride through this
    heuristic; ingest those via ``update(item, ...)`` directly.
    """
    for row in rows:
        if (
            isinstance(row, (tuple, list))
            and len(row) == 3
            and isinstance(row[1], numbers.Real)
            and isinstance(row[2], numbers.Real)
        ):
            yield row[0], float(row[1]), float(row[2])
        else:
            for item, weight in iter_weighted_rows((row,)):
                yield item, weight, None


class _PaneRingSketch(SerializableSketch):
    """Shared machinery: the pane ring, routing, expiry and merged views.

    Concrete subclasses fix how many panes the horizon spans
    (``num_panes``) and the default query scope (``_default_last``).
    """

    def __init__(
        self,
        size: int,
        *,
        pane_seconds: float,
        num_panes: int,
        spec: str = "unbiased_space_saving",
        seed: Optional[int] = None,
        origin: float = 0.0,
        **spec_params,
    ) -> None:
        if size < 1:
            raise InvalidParameterError("size must be a positive integer")
        sketch_spec = get_spec(spec)
        if POINT not in sketch_spec.capabilities:
            raise CapabilityError(
                f"windowed panes need the 'point' capability to enumerate "
                f"window contents; spec {spec!r} does not declare it"
            )
        unknown = set(spec_params) - set(sketch_spec.extra_params)
        if unknown:
            raise InvalidParameterError(
                f"unknown parameters for spec {spec!r}: {sorted(unknown)}; "
                f"accepted extras: {sorted(sketch_spec.extra_params)}"
            )
        self._size = int(size)
        self._spec_name = spec
        self._spec_params = dict(spec_params)
        self._spec_capabilities = sketch_spec.capabilities
        self._seed = seed
        self._origin = float(origin)
        self._pane_seconds = float(pane_seconds)
        self._num_panes = int(num_panes)
        #: window index -> pane sketch, only in-horizon indices present.
        self._panes: Dict[int, Any] = {}
        self._active_index: Optional[int] = None
        self._latest_timestamp: Optional[float] = None
        self._rows_processed = 0
        self._total_weight = 0.0
        self._expired_panes = 0
        self._version = 0
        self._view_cache: Dict[Optional[int], Tuple[int, "_WindowView"]] = {}

    #: Default query scope: ``None`` = every retained pane.
    _default_last: Optional[int] = None

    # ------------------------------------------------------------------
    # Topology / introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Per-pane size parameter (bin capacity for the Space Saving family)."""
        return self._size

    @property
    def spec(self) -> str:
        """Name of the pane spec (see :func:`repro.available_specs`)."""
        return self._spec_name

    @property
    def origin(self) -> float:
        """Stream-time origin; window ``i`` covers ``[origin + i*p, origin + (i+1)*p)``."""
        return self._origin

    @property
    def pane_seconds(self) -> float:
        """Width of one pane in stream-time seconds."""
        return self._pane_seconds

    @property
    def num_panes(self) -> int:
        """Number of panes the horizon spans (the ring size)."""
        return self._num_panes

    @property
    def horizon_seconds(self) -> float:
        """Total stream time covered by the retained panes."""
        return self._pane_seconds * self._num_panes

    @property
    def active_window_index(self) -> Optional[int]:
        """Index of the most recent window (``None`` before any row)."""
        return self._active_index

    @property
    def latest_timestamp(self) -> Optional[float]:
        """Largest timestamp ingested so far (``None`` before any row)."""
        return self._latest_timestamp

    @property
    def rows_processed(self) -> int:
        """Raw rows ingested over the sketch's lifetime (expired rows included)."""
        return self._rows_processed

    @property
    def total_weight(self) -> float:
        """Total weight ingested over the sketch's lifetime."""
        return self._total_weight

    @property
    def expired_panes(self) -> int:
        """How many panes have been expired out of the horizon so far."""
        return self._expired_panes

    def window_bounds(self, index: int) -> Tuple[float, float]:
        """The ``[start, end)`` stream-time interval of window ``index``."""
        start = self._origin + index * self._pane_seconds
        return start, start + self._pane_seconds

    def window_panes(self, last: Optional[int] = None) -> List[Tuple[int, Any]]:
        """The live ``(window_index, pane)`` pairs, oldest first.

        ``last=k`` restricts to the ``k`` most recent *windows* (empty
        windows own no pane, so fewer than ``k`` panes may return).
        """
        scope = self._scope(last)
        if self._active_index is None:
            return []
        floor_index = self._active_index - scope + 1 if scope is not None else None
        return [
            (index, pane)
            for index, pane in sorted(self._panes.items())
            if floor_index is None or index >= floor_index
        ]

    def __capabilities__(self) -> frozenset:
        caps = {POINT, HEAVY_HITTERS}
        if SUBSET_SUM in self._spec_capabilities:
            caps.add(SUBSET_SUM)
        if SERIALIZE in self._spec_capabilities:
            # The ring serializes by serializing its panes, so it is only
            # as serializable as the spec they are built from.
            caps.add(SERIALIZE)
        return frozenset(caps)

    def __len__(self) -> int:
        return len(self.estimates())

    def __contains__(self, item: Item) -> bool:
        return item in self.estimates()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={self._size}, spec={self._spec_name!r}, "
            f"window={self.window_policy().describe()!r}, "
            f"live_panes={len(self._panes)}, "
            f"active_window={self._active_index}, "
            f"rows_processed={self._rows_processed})"
        )

    def window_policy(self):
        """The :class:`~repro.windows.policy.WindowPolicy` this sketch implements."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Pane routing
    # ------------------------------------------------------------------
    def _window_index(self, timestamp: float) -> int:
        if timestamp < self._origin:
            raise InvalidParameterError(
                f"timestamp {timestamp} precedes the window origin {self._origin}"
            )
        return int((timestamp - self._origin) // self._pane_seconds)

    def _build_pane(self, index: int):
        pane_seed = None if self._seed is None else self._seed + index
        params = dict(self._spec_params)
        return get_spec(self._spec_name).build_estimator(self._size, pane_seed, params)

    def _advance_to(self, index: int) -> None:
        """Make ``index`` the active window, expiring panes behind the horizon.

        Bumps the view version itself: rotation changes the query scope
        (and may delete panes) even when the row that caused it is
        subsequently rejected by its pane, so cached views must not
        survive it.
        """
        if self._active_index is not None and index <= self._active_index:
            return
        self._active_index = index
        self._version += 1
        floor_index = index - self._num_panes
        for stale in [i for i in self._panes if i <= floor_index]:
            del self._panes[stale]
            self._expired_panes += 1

    def _pane_for_index(self, index: int):
        if self._active_index is None or index > self._active_index:
            self._advance_to(index)
        elif index <= self._active_index - self._num_panes:
            oldest_start, _ = self.window_bounds(self._active_index - self._num_panes + 1)
            raise InvalidParameterError(
                f"window {index} has expired: rows older than the horizon "
                f"(stream time < {oldest_start:g}) can no longer be ingested"
            )
        pane = self._panes.get(index)
        if pane is None:
            pane = self._panes[index] = self._build_pane(index)
        return pane

    def _route(self, timestamp: Optional[float]):
        """The pane a row with ``timestamp`` belongs to (creating it if needed)."""
        if timestamp is None:
            if self._active_index is None:
                return self._pane_for_index(0)
            return self._pane_for_index(self._active_index)
        index = self._window_index(float(timestamp))
        pane = self._pane_for_index(index)
        if self._latest_timestamp is None or timestamp > self._latest_timestamp:
            self._latest_timestamp = float(timestamp)
        return pane

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(
        self, item: Item, weight: float = 1.0, timestamp: Optional[float] = None
    ) -> None:
        """Ingest one raw row observed at ``timestamp``.

        ``timestamp=None`` routes the row to the most recent window.  A
        row whose *weight* the pane spec rejects still advances stream
        time first (its timestamp was observed, so rotation and expiry
        proceed); only the rejected row itself is not ingested.
        """
        pane = self._route(timestamp)
        pane.update(item, weight)
        self._rows_processed += 1
        self._total_weight += float(weight)
        self._version += 1

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
        timestamps: Optional[Iterable[float]] = None,
    ) -> "_PaneRingSketch":
        """Batched ingestion, routed per pane.

        With ``timestamps`` the batch is partitioned by window index (a
        vectorized grouping for numpy inputs) and each slice goes through
        the owning pane's own ``update_batch`` fast path, in ascending
        window order — i.e. the batch behaves like a timestamp-ordered
        replay: panes rotate between slices exactly as they would row by
        row, and a batch spanning more than the horizon simply expires its
        oldest panes before it finishes.  Rows stale relative to data seen
        *before* the batch are rejected up front (nothing ingested); any
        other mid-batch failure (e.g. a weight the pane spec rejects)
        leaves the already-applied window groups ingested and accounted
        for — exactly the state a timestamp-ordered replay reaches before
        the bad row.
        """
        if timestamps is None:
            item_list = items if isinstance(items, (list, np.ndarray)) else list(items)
            weight_list = (
                weights
                if weights is None or isinstance(weights, (list, np.ndarray))
                else list(weights)
            )
            pane = self._route(None)
            pane.update_batch(item_list, weight_list)
            row_count = len(item_list)
            total = float(np.sum(weight_list)) if weight_list is not None else float(row_count)
            self._rows_processed += row_count
            self._total_weight += total
            self._version += 1
            return self

        ts = np.asarray(list(timestamps) if not isinstance(timestamps, np.ndarray) else timestamps, dtype=np.float64)
        if np.any(ts < self._origin):
            raise InvalidParameterError(
                f"timestamps must not precede the window origin {self._origin}"
            )
        item_array = items if isinstance(items, np.ndarray) else None
        item_list = None if item_array is not None else (
            items if isinstance(items, list) else list(items)
        )
        batch_len = len(item_array) if item_array is not None else len(item_list)
        if batch_len != int(ts.size):
            raise InvalidParameterError(
                f"items and timestamps must align: got {batch_len} items "
                f"and {int(ts.size)} timestamps"
            )
        indices = ((ts - self._origin) // self._pane_seconds).astype(np.int64)
        if indices.size == 0:
            return self
        if (
            self._active_index is not None
            and int(indices.min()) <= self._active_index - self._num_panes
        ):
            raise InvalidParameterError(
                "batch contains rows older than the window horizon; "
                "nothing was ingested"
            )
        weight_array = None
        if weights is not None:
            weight_array = np.asarray(
                weights if isinstance(weights, np.ndarray) else list(weights),
                dtype=np.float64,
            )
            if len(weight_array) != batch_len:
                raise InvalidParameterError(
                    f"items and weights must align: got {batch_len} items "
                    f"and {len(weight_array)} weights"
                )
        order = np.argsort(indices, kind="stable")
        sorted_indices = indices[order]
        boundaries = np.flatnonzero(np.diff(sorted_indices)) + 1
        groups = np.split(order, boundaries)
        for group in groups:
            index = int(indices[group[0]])
            pane = self._pane_for_index(index)
            if item_array is not None:
                slice_items = item_array[group]
            else:
                slice_items = [item_list[position] for position in group]
            slice_weights = None if weight_array is None else weight_array[group]
            pane.update_batch(slice_items, slice_weights)
            # Account per group, so a failure in a later group leaves the
            # ingested prefix consistently booked and cache-invalidated.
            newest = float(ts[group].max())
            if self._latest_timestamp is None or newest > self._latest_timestamp:
                self._latest_timestamp = newest
            self._rows_processed += int(group.size)
            self._total_weight += (
                float(slice_weights.sum())
                if slice_weights is not None
                else float(group.size)
            )
            self._version += 1
        return self

    def extend(self, rows: Iterable) -> "_PaneRingSketch":
        """Consume a stream of rows.

        Rows may be bare items, ``(item, weight)`` pairs, or the
        timestamped ``(item, weight, timestamp)`` triples emitted by
        :mod:`repro.streams.generators` — see :func:`iter_timestamped_rows`.
        """
        for item, weight, timestamp in iter_timestamped_rows(rows):
            self.update(item, weight, timestamp)
        return self

    # ------------------------------------------------------------------
    # The cached merged view
    # ------------------------------------------------------------------
    def _scope(self, last: Optional[int]) -> Optional[int]:
        if last is None:
            return self._default_last
        if last < 1:
            raise InvalidParameterError("last must be a positive window count")
        return int(last)

    def _view(self, last: Optional[int] = None) -> "_WindowView":
        scope = self._scope(last)
        cached = self._view_cache.get(scope)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        panes = [pane for _, pane in self.window_panes(scope)]
        if not panes:
            view = _WindowView(bins={}, total_weight=0.0, panes=())
        else:
            if all(isinstance(pane, UnbiasedSpaceSaving) for pane in panes):
                # Window merge = sketch merge (Theorem 2).  The view keeps
                # every combined bin (capacity = union size), so no
                # reduction noise is added at query time; merged() applies
                # the real capacity-m reduction for hand-off.
                union = max(1, sum(len(pane.estimates()) for pane in panes))
                merged = merge_many_unbiased(panes, capacity=union, seed=self._seed)
                bins = merged.estimates()
            else:
                bins = combine_estimates(panes)
            view = _WindowView(
                bins=bins,
                total_weight=float(sum(pane.total_weight for pane in panes)),
                panes=tuple(panes),
            )
        self._view_cache[scope] = (self._version, view)
        return view

    # ------------------------------------------------------------------
    # Queries (over the last ``last`` windows; default = the query scope
    # of the concrete class — the horizon for sliding windows, the active
    # window for tumbling windows)
    # ------------------------------------------------------------------
    def estimate(self, item: Item, last: Optional[int] = None) -> float:
        """Estimated weight of ``item`` within the window scope."""
        return self._view(last).bins.get(item, 0.0)

    def estimates(self, last: Optional[int] = None) -> Dict[Item, float]:
        """All retained items with their in-scope estimated counts."""
        return dict(self._view(last).bins)

    def subset_sum(self, predicate: ItemPredicate, last: Optional[int] = None) -> float:
        """Subset sum over the window scope (unbiased for unbiased panes)."""
        return float(
            sum(count for item, count in self._view(last).bins.items() if predicate(item))
        )

    def subset_sum_with_error(
        self, predicate: ItemPredicate, last: Optional[int] = None
    ) -> EstimateWithError:
        """Windowed subset sum with its error model.

        Panes summarize disjoint slices of stream time with independent
        randomness, so the window variance is the sum of the per-pane
        variances (zero where a pane spec carries no error model).
        """
        view = self._view(last)
        estimate = 0.0
        variance = 0.0
        for pane in view.panes:
            with_error = getattr(pane, "subset_sum_with_error", None)
            if callable(with_error):
                result = with_error(predicate)
                estimate += result.estimate
                variance += result.variance
            else:
                estimate += float(
                    sum(c for item, c in pane.estimates().items() if predicate(item))
                )
        return EstimateWithError(estimate=estimate, variance=variance)

    def heavy_hitters(self, phi: float, last: Optional[int] = None) -> Dict[Item, float]:
        """Items at or above relative frequency ``phi`` *within the window scope*."""
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        view = self._view(last)
        threshold = phi * view.total_weight
        return {
            item: count
            for item, count in view.bins.items()
            if count >= threshold and count > 0
        }

    def top_k(self, k: int, last: Optional[int] = None) -> List[Tuple[Item, float]]:
        """The ``k`` largest in-scope estimates, rank order."""
        if k < 0:
            raise InvalidParameterError("k must be non-negative")
        ranked = sorted(
            self._view(last).bins.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )
        return ranked[:k]

    def total_estimate(self, last: Optional[int] = None) -> float:
        """Total weight ingested into the in-scope windows."""
        return self._view(last).total_weight

    def merged(
        self,
        capacity: Optional[int] = None,
        *,
        seed: Optional[int] = None,
        last: Optional[int] = None,
    ) -> UnbiasedSpaceSaving:
        """Collapse the in-scope panes into one capacity-``m`` unbiased sketch.

        This is the §5.5 reduction for hand-off (checkpoint the window,
        ship it to a reducer): unlike the lossless query view it *does*
        shrink to ``capacity`` bins (default: the pane size), trading a
        little sampling noise for bounded size.  Requires Unbiased Space
        Saving panes.
        """
        panes = [pane for _, pane in self.window_panes(self._scope(last))]
        target = int(capacity) if capacity is not None else self._size
        merge_seed = seed if seed is not None else self._seed
        if not panes:
            return UnbiasedSpaceSaving(target, seed=merge_seed, store="heap")
        if not all(isinstance(pane, UnbiasedSpaceSaving) for pane in panes):
            raise CapabilityError(
                f"merged() requires Unbiased Space Saving panes; "
                f"spec {self._spec_name!r} panes cannot be merged unbiasedly"
            )
        return merge_many_unbiased(panes, capacity=target, seed=merge_seed)

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _policy_meta(self) -> Dict[str, Any]:
        raise NotImplementedError

    def _serial_state(self):
        if SERIALIZE not in self._spec_capabilities:
            from repro.errors import SerializationError

            raise SerializationError(
                f"panes of spec {self._spec_name!r} are not serializable, "
                f"so this windowed sketch cannot be serialized"
            )
        indices = sorted(self._panes)
        meta = {
            "size": self._size,
            "spec": self._spec_name,
            "spec_params": dict(self._spec_params),
            "seed": self._seed,
            "origin": self._origin,
            "active_index": self._active_index,
            "latest_timestamp": self._latest_timestamp,
            "rows_processed": self._rows_processed,
            "total_weight": self._total_weight,
            "expired_panes": self._expired_panes,
            "pane_indices": indices,
            "policy": self._policy_meta(),
        }
        arrays = {
            f"pane_{index}": np.frombuffer(self._panes[index].to_bytes(), dtype=np.uint8)
            for index in indices
        }
        return meta, arrays

    @classmethod
    def _restore_common(cls, sketch: "_PaneRingSketch", meta, arrays) -> "_PaneRingSketch":
        from repro.io.registry import load_bytes

        sketch._panes = {
            int(index): load_bytes(arrays[f"pane_{index}"].tobytes())
            for index in meta["pane_indices"]
        }
        active = meta["active_index"]
        sketch._active_index = None if active is None else int(active)
        latest = meta["latest_timestamp"]
        sketch._latest_timestamp = None if latest is None else float(latest)
        sketch._rows_processed = int(meta["rows_processed"])
        sketch._total_weight = float(meta["total_weight"])
        sketch._expired_panes = int(meta["expired_panes"])
        return sketch


class _WindowView:
    """An immutable merged snapshot of the in-scope panes."""

    __slots__ = ("bins", "total_weight", "panes")

    def __init__(self, *, bins: Dict[Item, float], total_weight: float, panes: Tuple):
        self.bins = bins
        self.total_weight = total_weight
        self.panes = panes


class TumblingWindowSketch(_PaneRingSketch):
    """Non-overlapping fixed-width windows; queries answer the active window.

    Parameters
    ----------
    size:
        Per-pane size parameter (bin capacity for the Space Saving family).
    width:
        Window width — seconds, or a duration string like ``"60s"`` /
        ``"5m"``.
    spec:
        Pane spec name (default ``"unbiased_space_saving"``).
    retain:
        How many recent windows to keep (default 1).  ``retain=k`` lets
        queries reach back with ``last=k`` — e.g. "this window vs the
        previous one".
    seed:
        Base seed; window ``i``'s pane is seeded ``seed + i``.
    origin:
        Stream time where window 0 starts (default 0.0).

    Example
    -------
    >>> sketch = TumblingWindowSketch(8, width="10s", seed=0)
    >>> sketch.update("a", timestamp=1.0)
    >>> sketch.update("a", timestamp=12.0)   # rotates into window 1
    >>> sketch.estimate("a")                 # active window only
    1.0
    >>> sketch.active_window_index
    1
    """

    _default_last = 1

    def __init__(
        self,
        size: int,
        *,
        width,
        spec: str = "unbiased_space_saving",
        retain: int = 1,
        seed: Optional[int] = None,
        origin: float = 0.0,
        **spec_params,
    ) -> None:
        from repro.windows.policy import parse_duration

        if retain < 1:
            raise InvalidParameterError("retain must be a positive window count")
        super().__init__(
            size,
            pane_seconds=parse_duration(width),
            num_panes=int(retain),
            spec=spec,
            seed=seed,
            origin=origin,
            **spec_params,
        )

    @property
    def width_seconds(self) -> float:
        """The tumbling window width in seconds."""
        return self._pane_seconds

    def window_policy(self):
        from repro.windows.policy import TumblingWindowPolicy

        return TumblingWindowPolicy(self._pane_seconds, self._num_panes)

    def _policy_meta(self):
        return {"kind": "tumbling", "width": self._pane_seconds, "retain": self._num_panes}

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        policy = meta["policy"]
        sketch = cls(
            int(meta["size"]),
            width=float(policy["width"]),
            spec=meta["spec"],
            retain=int(policy["retain"]),
            seed=meta["seed"],
            origin=float(meta["origin"]),
            **meta["spec_params"],
        )
        return cls._restore_common(sketch, meta, arrays)


class SlidingWindowSketch(_PaneRingSketch):
    """A query horizon advanced in fixed panes; queries cover the horizon.

    Parameters
    ----------
    size:
        Per-pane size parameter.
    horizon:
        Query horizon — seconds or a duration string (``"5m"``).  Queries
        answer over rows whose window is within the horizon.
    pane:
        Pane width; the horizon must be an exact multiple of it.  The
        ring keeps ``horizon / pane`` panes.
    spec, seed, origin:
        As for :class:`TumblingWindowSketch`.

    Example
    -------
    >>> sketch = SlidingWindowSketch(8, horizon="30s", pane="10s", seed=0)
    >>> _ = sketch.extend([("a", 1.0, 5.0), ("b", 1.0, 15.0), ("a", 1.0, 25.0)])
    >>> sketch.estimate("a")                      # both in-horizon panes
    2.0
    >>> sketch.update("c", timestamp=35.0)        # expires the pane at t<10
    >>> sorted(sketch.estimates())
    ['a', 'b', 'c']
    >>> sketch.estimate("a")                      # the t=5 row has expired
    1.0
    """

    def __init__(
        self,
        size: int,
        *,
        horizon,
        pane,
        spec: str = "unbiased_space_saving",
        seed: Optional[int] = None,
        origin: float = 0.0,
        **spec_params,
    ) -> None:
        from repro.windows.policy import SlidingWindowPolicy, parse_duration

        policy = SlidingWindowPolicy(parse_duration(horizon), parse_duration(pane))
        super().__init__(
            size,
            pane_seconds=policy.pane_seconds,
            num_panes=policy.num_panes,
            spec=spec,
            seed=seed,
            origin=origin,
            **spec_params,
        )

    def window_policy(self):
        from repro.windows.policy import SlidingWindowPolicy

        return SlidingWindowPolicy(self.horizon_seconds, self._pane_seconds)

    def _policy_meta(self):
        return {
            "kind": "sliding",
            "horizon": self.horizon_seconds,
            "pane": self._pane_seconds,
        }

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        policy = meta["policy"]
        sketch = cls(
            int(meta["size"]),
            horizon=float(policy["horizon"]),
            pane=float(policy["pane"]),
            spec=meta["spec"],
            seed=meta["seed"],
            origin=float(meta["origin"]),
            **meta["spec_params"],
        )
        return cls._restore_common(sketch, meta, arrays)
