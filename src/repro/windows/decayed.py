"""Forward decay refit behind the :class:`~repro.windows.policy.WindowPolicy` surface.

:class:`~repro.core.decay.ForwardDecaySketch` (the §5.3 extension)
predates the windows subsystem and speaks its own dialect —
``update(item, timestamp, weight)``, ``decayed_estimate(item, at_time)``.
:class:`DecayedWindowSketch` refits it behind the same surface the pane
ring classes expose (``update(item, weight=1.0, timestamp=None)``,
``estimates()``, ``subset_sum_with_error()``, ``heavy_hitters()``), so
``repro.build(spec, window="decay:exp:0.01")`` sessions are drop-in
interchangeable with tumbling/sliding ones: same ingestion calls, same
query names, continuous down-weighting instead of hard expiry.

Unlike the raw decay sketch, the adapter is *serializable*: the decay
function is reconstructed from the policy string (``"decay:exp:0.01"``),
so checkpoints carry no code — only the policy, the landmark and the
underlying Unbiased Space Saving state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro._typing import Item, ItemPredicate
from repro.api.protocols import HEAVY_HITTERS, POINT, SERIALIZE, SUBSET_SUM
from repro.core.decay import ForwardDecaySketch
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError
from repro.io.serializable import SerializableSketch

__all__ = ["DecayedWindowSketch"]


class DecayedWindowSketch(SerializableSketch):
    """Continuously time-decayed counts behind the windowed-session surface.

    Parameters
    ----------
    size:
        Bin capacity of the underlying Unbiased Space Saving sketch.
    policy:
        A :class:`~repro.windows.policy.DecayPolicy` (or its spec string,
        e.g. ``"decay:exp:0.01"``).
    landmark:
        Forward-decay landmark time ``L``; rows must not precede it.
    seed:
        Seed for the underlying sketch.

    Example
    -------
    >>> sketch = DecayedWindowSketch(8, policy="decay:exp:0.1", seed=0)
    >>> sketch.update("old", timestamp=1.0)
    >>> sketch.update("new", timestamp=20.0)
    >>> sketch.estimate("new") > sketch.estimate("old")
    True
    """

    def __init__(
        self,
        size: int,
        *,
        policy,
        landmark: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        from repro.windows.policy import DecayPolicy, parse_window_policy

        parsed = parse_window_policy(policy)
        if not isinstance(parsed, DecayPolicy):
            raise InvalidParameterError(
                f"DecayedWindowSketch needs a decay policy; got {parsed.describe()!r}"
            )
        self._policy = parsed
        self._decay = parsed.decay_function()
        self._seed = seed
        self._sketch = ForwardDecaySketch(
            size, decay=self._decay, landmark=landmark, seed=seed
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Bin capacity of the underlying sketch."""
        return self._sketch.capacity

    @property
    def landmark(self) -> float:
        """The forward-decay landmark time ``L``."""
        return self._sketch.landmark

    @property
    def latest_timestamp(self) -> float:
        """Largest timestamp ingested so far (the default query time)."""
        return self._sketch.latest_timestamp

    @property
    def rows_processed(self) -> int:
        """Raw rows ingested."""
        return self._sketch.underlying_sketch.rows_processed

    @property
    def total_weight(self) -> float:
        """Total *decayed* ingest weight held by the underlying sketch.

        Forward decay stores ``weight * g(t - L)`` per row, so this is the
        exact un-normalized decayed stream total — divide by
        ``g(now - L)`` (what :meth:`total_estimate` does) for the decayed
        total at query time.
        """
        return self._sketch.underlying_sketch.total_weight

    @property
    def underlying_sketch(self) -> ForwardDecaySketch:
        """The wrapped :class:`ForwardDecaySketch` (full decay-native surface)."""
        return self._sketch

    def window_policy(self):
        """The :class:`~repro.windows.policy.DecayPolicy` in force."""
        return self._policy

    def __capabilities__(self) -> frozenset:
        return frozenset({POINT, SUBSET_SUM, HEAVY_HITTERS, SERIALIZE})

    def __len__(self) -> int:
        return len(self.estimates())

    def __contains__(self, item: Item) -> bool:
        return item in self.estimates()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={self.size}, "
            f"window={self._policy.describe()!r}, "
            f"latest_timestamp={self.latest_timestamp:g}, "
            f"rows_processed={self.rows_processed})"
        )

    # ------------------------------------------------------------------
    # Ingestion (windowed-session surface)
    # ------------------------------------------------------------------
    def update(
        self, item: Item, weight: float = 1.0, timestamp: Optional[float] = None
    ) -> None:
        """Ingest one row; ``timestamp=None`` means "now" (the latest seen)."""
        at = self.latest_timestamp if timestamp is None else float(timestamp)
        self._sketch.update(item, timestamp=at, weight=weight)

    def update_batch(
        self,
        items: Iterable[Item],
        weights: Optional[Iterable[float]] = None,
        timestamps: Optional[Iterable[float]] = None,
    ) -> "DecayedWindowSketch":
        """Batched ingestion: decay the weights vectorized, then bulk-update.

        Each row's ingest weight is ``weight * g(timestamp - landmark)``,
        computed in one vectorized pass (``np.exp`` / ``np.power`` from
        the policy, matching :func:`repro.core.decay.exponential_decay` /
        :func:`polynomial_decay` pointwise), after which the underlying
        sketch's own ``update_batch`` collapse path applies — a collapsed
        decayed batch is still a valid weighted stream, so unbiasedness is
        preserved.
        """
        item_list = items if isinstance(items, (list, np.ndarray)) else list(items)
        count = len(item_list)
        if count == 0:
            return self
        if timestamps is None:
            ts = np.full(count, self.latest_timestamp, dtype=np.float64)
        else:
            ts = np.asarray(
                timestamps if isinstance(timestamps, np.ndarray) else list(timestamps),
                dtype=np.float64,
            )
        if np.any(ts < self.landmark):
            raise InvalidParameterError(
                f"timestamps must not precede the landmark {self.landmark}"
            )
        base = (
            np.ones(count, dtype=np.float64)
            if weights is None
            else np.asarray(
                weights if isinstance(weights, np.ndarray) else list(weights),
                dtype=np.float64,
            )
        )
        ages = ts - self.landmark
        if self._policy.kind == "exp":
            factors = np.exp(self._policy.rate * ages)
        else:
            factors = np.power(np.maximum(ages, 0.0), self._policy.rate)
        decayed = base * factors
        if np.any(decayed <= 0):
            raise InvalidParameterError(
                "decay produced a non-positive ingest weight; polynomial decay "
                "requires timestamps strictly after the landmark"
            )
        self._sketch.underlying_sketch.update_batch(item_list, decayed)
        newest = float(ts.max())
        if newest > self._sketch.latest_timestamp:
            self._sketch._latest_timestamp = newest
        return self

    def extend(self, rows: Iterable) -> "DecayedWindowSketch":
        """Consume bare items, ``(item, weight)`` pairs or timestamped triples."""
        from repro.windows.windowed import iter_timestamped_rows

        for item, weight, timestamp in iter_timestamped_rows(rows):
            self.update(item, weight, timestamp)
        return self

    # ------------------------------------------------------------------
    # Queries (decayed at the latest timestamp unless ``at_time`` given)
    # ------------------------------------------------------------------
    def estimate(self, item: Item, at_time: Optional[float] = None) -> float:
        """Decayed count estimate for one item."""
        return self._sketch.decayed_estimate(item, at_time=at_time)

    def estimates(self, at_time: Optional[float] = None) -> Dict[Item, float]:
        """Decayed estimates for every retained item."""
        return self._sketch.decayed_estimates(at_time=at_time)

    def subset_sum(
        self, predicate: ItemPredicate, at_time: Optional[float] = None
    ) -> float:
        """Unbiased decayed subset sum."""
        return self._sketch.decayed_subset_sum(predicate, at_time=at_time)

    def subset_sum_with_error(
        self, predicate: ItemPredicate, at_time: Optional[float] = None
    ) -> EstimateWithError:
        """Decayed subset sum with the scaled equation-5 variance."""
        return self._sketch.decayed_subset_sum_with_error(predicate, at_time=at_time)

    def heavy_hitters(
        self, phi: float, at_time: Optional[float] = None
    ) -> Dict[Item, float]:
        """Items at or above decayed relative frequency ``phi``."""
        if not 0 < phi <= 1:
            raise InvalidParameterError("phi must lie in (0, 1]")
        decayed = self._sketch.decayed_estimates(at_time=at_time)
        threshold = phi * sum(decayed.values())
        return {
            item: count
            for item, count in decayed.items()
            if count >= threshold and count > 0
        }

    def top_k(
        self, k: int, at_time: Optional[float] = None
    ) -> List[Tuple[Item, float]]:
        """The ``k`` items with the largest decayed estimates."""
        return list(self._sketch.top_k(k, at_time=at_time))

    def total_estimate(self, at_time: Optional[float] = None) -> float:
        """Exact decayed stream total (the preserved total, normalized)."""
        return self._sketch.decayed_subset_sum(lambda item: True, at_time=at_time)

    # ------------------------------------------------------------------
    # Serialization (repro.io contract)
    # ------------------------------------------------------------------
    def _serial_state(self):
        frame = self._sketch.underlying_sketch.to_bytes()
        meta = {
            "size": self.size,
            "policy": self._policy.describe(),
            "landmark": self.landmark,
            "latest_timestamp": self.latest_timestamp,
            "seed": self._seed,
        }
        return meta, {"sketch": np.frombuffer(frame, dtype=np.uint8)}

    @classmethod
    def _from_serial_state(cls, meta, arrays):
        from repro.core.unbiased_space_saving import UnbiasedSpaceSaving

        sketch = cls(
            int(meta["size"]),
            policy=meta["policy"],
            landmark=float(meta["landmark"]),
            seed=meta["seed"],
        )
        sketch._sketch._sketch = UnbiasedSpaceSaving.from_bytes(
            arrays["sketch"].tobytes()
        )
        sketch._sketch._latest_timestamp = float(meta["latest_timestamp"])
        return sketch
