"""Step Sample-and-Hold.

Step Sample-and-Hold (discussed in §5.4 of the paper) avoids the Geometric
resampling noise of the adaptive variant by remembering, for every retained
item, how many of its rows were counted during each *step* — a maximal
period during which the sampling rate is constant.  The estimator then
corrects each step's count with that step's own rate, so no information
gathered at a high rate is destroyed when the rate later drops.

The price is the one the paper calls out: storage grows with the number of
steps an item's counter spans, and estimation time is superlinear in that
number.  This implementation keeps the full per-step counts to make those
costs measurable in the benchmarks.

The estimator used here applies the standard Sample-and-Hold correction
within the step where the item (re-)entered the sketch — adding the mean
``(1 − p_j)/p_j`` of the missed pre-entry occurrences for that step's rate
``p_j`` — and counts all later steps exactly.  Rows that arrived before the
entering step, while the item was absent from the sketch, are missed by
*any* sample-and-hold scheme and are accounted for by the entering-step
correction exactly as in Cohen et al.'s estimator.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro._typing import Item
from repro.core.base import SubsetSumSketch
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError, UnsupportedUpdateError

__all__ = ["StepSampleAndHold"]


class StepSampleAndHold(SubsetSumSketch):
    """Sample-and-Hold that keeps per-step counts for each retained item.

    Parameters
    ----------
    capacity:
        Maximum number of retained items; exceeding it triggers a rate
        decrease (a new step).
    rate_decrease:
        Multiplicative rate decrease applied when the sketch overflows.
    seed:
        Seed for admission coin flips.
    """

    def __init__(
        self,
        capacity: int,
        *,
        rate_decrease: float = 0.9,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(capacity, seed=seed)
        if not 0 < rate_decrease < 1:
            raise InvalidParameterError("rate_decrease must lie strictly between 0 and 1")
        self._rate_decrease = rate_decrease
        self._step_rates: List[float] = [1.0]
        # item -> {step_index: count}, plus the step at which the item entered.
        self._step_counts: Dict[Item, Dict[int, int]] = {}
        self._entry_step: Dict[Item, int] = {}

    @property
    def current_step(self) -> int:
        """Index of the current step (0-based)."""
        return len(self._step_rates) - 1

    @property
    def sampling_rate(self) -> float:
        """Admission probability of the current step."""
        return self._step_rates[-1]

    @property
    def step_rates(self) -> List[float]:
        """The sampling rate of every step so far."""
        return list(self._step_rates)

    def __len__(self) -> int:
        return len(self._step_counts)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one unit row."""
        if weight != 1:
            raise UnsupportedUpdateError("Step Sample-and-Hold processes unit rows only")
        self._record_update(1.0)
        step = self.current_step
        if item in self._step_counts:
            per_step = self._step_counts[item]
            per_step[step] = per_step.get(step, 0) + 1
            return
        if self._rng.random() < self.sampling_rate:
            self._step_counts[item] = {step: 1}
            self._entry_step[item] = step
            while len(self._step_counts) > self._capacity:
                self._start_new_step()

    def _start_new_step(self) -> None:
        """Lower the sampling rate and evict items by re-tossing their entry coin.

        An item admitted at rate ``p`` survives a decrease to ``p'`` with
        probability ``p'/p`` (its entry coin still succeeds under the lower
        rate); otherwise it is removed along with all its per-step counts.
        This keeps the retained set distributed as if the lower rate had been
        in force from the start, which is what makes the per-step estimator
        unbiased.
        """
        old_rate = self.sampling_rate
        new_rate = old_rate * self._rate_decrease
        self._step_rates.append(new_rate)
        survivors: Dict[Item, Dict[int, int]] = {}
        surviving_entries: Dict[Item, int] = {}
        for item, per_step in self._step_counts.items():
            if self._rng.random() < new_rate / old_rate:
                survivors[item] = per_step
                surviving_entries[item] = self._entry_step[item]
        self._step_counts = survivors
        self._entry_step = surviving_entries

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, item: Item) -> float:
        """Estimate of the item's total count (0 when not retained)."""
        per_step = self._step_counts.get(item)
        if per_step is None:
            return 0.0
        entry_step = self._entry_step[item]
        # Current survival probability of the entry coin: the entering step's
        # occurrences before entry are missing; correct with the current
        # effective rate for that item, which is the latest step's rate
        # because each decrease re-tosses the entry coin.
        effective_rate = self._step_rates[-1]
        observed = float(sum(per_step.values()))
        correction = (1.0 - effective_rate) / effective_rate
        del entry_step
        return observed + correction

    def estimates(self) -> Dict[Item, float]:
        return {item: self.estimate(item) for item in self._step_counts}

    def per_step_counts(self, item: Item) -> Dict[int, int]:
        """The raw per-step counts retained for ``item`` (empty if absent)."""
        return dict(self._step_counts.get(item, {}))

    def storage_cells(self) -> int:
        """Total number of per-step counters held — the cost §5.4 highlights."""
        return sum(len(per_step) for per_step in self._step_counts.values())

    def subset_sum_with_error(self, predicate) -> EstimateWithError:
        """Subset sum with a per-item Geometric variance at the current rate."""
        rate = self._step_rates[-1]
        per_item_variance = (1.0 - rate) / (rate * rate)
        estimate = 0.0
        matched = 0
        for item in self._step_counts:
            if predicate(item):
                estimate += self.estimate(item)
                matched += 1
        return EstimateWithError(estimate=estimate, variance=per_item_variance * matched)
