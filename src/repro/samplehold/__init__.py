"""Sample-and-Hold family: the prior state of the art for disaggregated subset sums.

These sketches (Gibbons & Matias 1998; Estan & Varghese 2003; Cohen et al.
2007) answer the same disaggregated subset sum problem as Unbiased Space
Saving.  §5.4 of the paper analyses them as randomized reduction operations
and shows they inject strictly more noise per reduction than Unbiased Space
Saving — the claim the benchmark suite makes measurable.
"""

from repro.samplehold.adaptive import AdaptiveSampleAndHold
from repro.samplehold.counting_samples import CountingSampleSketch
from repro.samplehold.step import StepSampleAndHold

__all__ = [
    "AdaptiveSampleAndHold",
    "CountingSampleSketch",
    "StepSampleAndHold",
]
