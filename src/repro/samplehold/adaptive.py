"""Adaptive Sample-and-Hold (Cohen, Duffield, Kaplan, Lund & Thorup 2007).

Adaptive Sample-and-Hold bounds the number of counters by lowering the
sampling rate whenever the sketch grows past its budget.  The rate decrease
is paired with the randomized counter adjustment described in §5.4 of the
paper, which keeps the estimates unbiased:

* with probability ``p'/p`` a counter is left unchanged;
* otherwise it is decremented by a ``Geometric(p')`` random variable, and
  dropped if it becomes negative.

Adding the Geometric mean ``(1 − p')/p'`` back to every surviving counter at
query time yields unbiased count estimates, so the sketch answers the
disaggregated subset sum problem.  The paper's analysis (and figure 2 of
Cohen et al., cited in §7) shows it is strictly noisier than Unbiased Space
Saving because each rate decrease injects Geometric noise with variance
``(1 − p')/p'²`` into *every* bin; this implementation exists to make that
comparison reproducible.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro._typing import Item
from repro.core.base import SubsetSumSketch
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError, UnsupportedUpdateError

__all__ = ["AdaptiveSampleAndHold"]


class AdaptiveSampleAndHold(SubsetSumSketch):
    """Bounded-size Sample-and-Hold with unbiased rate-decrease adjustments.

    Parameters
    ----------
    capacity:
        Maximum number of retained counters.
    rate_decrease:
        Multiplicative factor applied to the sampling rate at each overflow
        (strictly between 0 and 1; smaller values evict more aggressively).
    seed:
        Seed for all coin flips.

    Example
    -------
    >>> sketch = AdaptiveSampleAndHold(capacity=16, seed=2)
    >>> _ = sketch.extend(["a"] * 30 + ["b"] * 5)
    >>> sketch.estimate("a") > 0
    True
    """

    def __init__(
        self,
        capacity: int,
        *,
        rate_decrease: float = 0.9,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(capacity, seed=seed)
        if not 0 < rate_decrease < 1:
            raise InvalidParameterError("rate_decrease must lie strictly between 0 and 1")
        self._rate_decrease = rate_decrease
        self._sampling_rate = 1.0
        self._counters: Dict[Item, int] = {}
        self._rate_changes = 0

    @property
    def sampling_rate(self) -> float:
        """Current admission probability ``p``."""
        return self._sampling_rate

    @property
    def rate_changes(self) -> int:
        """How many times the sampling rate has been decreased."""
        return self._rate_changes

    def __len__(self) -> int:
        return len(self._counters)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one unit row."""
        if weight != 1:
            raise UnsupportedUpdateError("Adaptive Sample-and-Hold processes unit rows only")
        self._record_update(1.0)
        if item in self._counters:
            self._counters[item] += 1
            return
        if self._rng.random() < self._sampling_rate:
            self._counters[item] = 1
            while len(self._counters) > self._capacity:
                self._decrease_rate()

    def _geometric(self, probability: float) -> int:
        """Number of failures before the first success of a Bernoulli(probability)."""
        if probability >= 1.0:
            return 0
        uniform = self._rng.random()
        # Inverse-CDF sampling of the Geometric distribution on {0, 1, 2, ...}.
        return int(math.floor(math.log(1.0 - uniform) / math.log(1.0 - probability)))

    def _decrease_rate(self) -> None:
        """Lower the sampling rate and resample every counter accordingly."""
        old_rate = self._sampling_rate
        new_rate = old_rate * self._rate_decrease
        self._rate_changes += 1
        survivors: Dict[Item, int] = {}
        for item, count in self._counters.items():
            if self._rng.random() < new_rate / old_rate:
                survivors[item] = count
                continue
            adjusted = count - 1 - self._geometric(new_rate)
            if adjusted >= 0:
                # The paper's description decrements and keeps non-negative
                # counters; a zero counter is retained (it may still grow).
                survivors[item] = adjusted
            # Negative counters are dropped entirely.
        self._counters = survivors
        self._sampling_rate = new_rate

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _adjustment(self) -> float:
        """Mean Geometric correction added back to surviving counters."""
        return (1.0 - self._sampling_rate) / self._sampling_rate

    def estimate(self, item: Item) -> float:
        """Approximately unbiased estimate of the item's total count."""
        count = self._counters.get(item)
        if count is None:
            return 0.0
        return count + self._adjustment()

    def estimates(self) -> Dict[Item, float]:
        adjustment = self._adjustment()
        return {item: count + adjustment for item, count in self._counters.items()}

    def raw_counts(self) -> Dict[Item, int]:
        """The held counters before the Geometric mean adjustment."""
        return dict(self._counters)

    def subset_sum_with_error(self, predicate) -> EstimateWithError:
        """Subset sum with the per-counter Geometric variance summed."""
        rate = self._sampling_rate
        per_item_variance = (1.0 - rate) / (rate * rate)
        estimate = 0.0
        matched = 0
        for item, count in self._counters.items():
            if predicate(item):
                estimate += count + self._adjustment()
                matched += 1
        return EstimateWithError(estimate=estimate, variance=per_item_variance * matched)
