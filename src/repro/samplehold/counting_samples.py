"""Fixed-rate Sample-and-Hold / counting samples.

The basic Sample-and-Hold sketch (Gibbons & Matias 1998; Estan & Varghese
2003) processes a disaggregated stream with a fixed sampling rate ``p``:

* a row whose item is already in the sketch increments that item's counter
  exactly;
* a row whose item is not in the sketch *enters* the sketch with probability
  ``p`` (and the entering row is counted).

Conditional on an item entering, the number of its occurrences missed before
entry is Geometric, so adding the mean ``(1 − p)/p`` back to every retained
counter gives an unbiased estimate of the item's total count (the reduction
view of §5.4).  The sketch size is *random* — it grows with the number of
distinct items times ``p`` — which is the practical weakness the adaptive
variant fixes at the cost of extra estimation noise.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._typing import Item
from repro.core.base import SubsetSumSketch
from repro.core.variance import EstimateWithError
from repro.errors import InvalidParameterError, UnsupportedUpdateError

__all__ = ["CountingSampleSketch"]


class CountingSampleSketch(SubsetSumSketch):
    """Sample-and-Hold with a fixed admission probability.

    Parameters
    ----------
    sampling_rate:
        The admission probability ``p`` for rows of unseen items.
    capacity:
        Advisory value reported through the common sketch interface (the
        expected final size); the structure itself is unbounded, which is
        precisely the property the paper's comparison highlights.
    seed:
        Seed for admission coin flips.

    Example
    -------
    >>> sketch = CountingSampleSketch(sampling_rate=1.0, seed=0)
    >>> _ = sketch.extend(["a", "a", "b"])
    >>> sketch.estimate("a")
    2.0
    """

    def __init__(
        self,
        sampling_rate: float,
        *,
        capacity: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        if not 0 < sampling_rate <= 1:
            raise InvalidParameterError("sampling_rate must lie in (0, 1]")
        super().__init__(capacity or 1, seed=seed)
        self._sampling_rate = sampling_rate
        self._counters: Dict[Item, int] = {}

    @property
    def sampling_rate(self) -> float:
        """The fixed admission probability ``p``."""
        return self._sampling_rate

    def __len__(self) -> int:
        return len(self._counters)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def update(self, item: Item, weight: float = 1.0) -> None:
        """Process one unit row."""
        if weight != 1:
            raise UnsupportedUpdateError("Sample-and-Hold processes unit rows only")
        self._record_update(1.0)
        if item in self._counters:
            self._counters[item] += 1
            return
        if self._rng.random() < self._sampling_rate:
            self._counters[item] = 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _adjustment(self) -> float:
        """Mean of the Geometric number of missed pre-entry occurrences."""
        return (1.0 - self._sampling_rate) / self._sampling_rate

    def estimate(self, item: Item) -> float:
        """Unbiased estimate of the item's count (0 when never admitted)."""
        count = self._counters.get(item)
        if count is None:
            return 0.0
        return count + self._adjustment()

    def estimates(self) -> Dict[Item, float]:
        adjustment = self._adjustment()
        return {item: count + adjustment for item, count in self._counters.items()}

    def raw_counts(self) -> Dict[Item, int]:
        """The unadjusted held counts (exact counts after each item's entry)."""
        return dict(self._counters)

    def subset_sum_with_error(self, predicate) -> EstimateWithError:
        """Subset sum with the per-item Geometric variance summed.

        Each retained counter's estimate carries the variance of its missed
        pre-entry occurrences, ``(1 − p)/p²``; counters are independent given
        their entry, so variances add over the subset.
        """
        rate = self._sampling_rate
        per_item_variance = (1.0 - rate) / (rate * rate)
        estimate = 0.0
        matched = 0
        for item, count in self._counters.items():
            if predicate(item):
                estimate += count + self._adjustment()
                matched += 1
        return EstimateWithError(estimate=estimate, variance=per_item_variance * matched)
