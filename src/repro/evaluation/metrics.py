"""Error metrics used by the experiment harness.

The paper reports results mainly through the relative root mean squared
error (RRMSE = √MSE / true value), relative MSE, inclusion probabilities,
confidence-interval coverage and relative efficiency (variance ratios).  All
of them are implemented here as small, pure functions over parallel
sequences of estimates and truths so the per-figure experiments stay free of
arithmetic.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "mean_squared_error",
    "root_mean_squared_error",
    "relative_rmse",
    "relative_mse",
    "bias",
    "relative_bias",
    "relative_efficiency",
    "empirical_inclusion_probability",
    "binned_relative_error",
]


def _validate_lengths(estimates: Sequence[float], truths: Sequence[float]) -> None:
    if len(estimates) != len(truths):
        raise InvalidParameterError("estimates and truths must have equal length")
    if not estimates:
        raise InvalidParameterError("metrics require at least one observation")


def mean_squared_error(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Average squared error over paired observations."""
    _validate_lengths(estimates, truths)
    errors = np.asarray(estimates, dtype=np.float64) - np.asarray(truths, dtype=np.float64)
    return float(np.mean(errors**2))


def root_mean_squared_error(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Square root of the mean squared error."""
    return math.sqrt(mean_squared_error(estimates, truths))


def relative_rmse(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """RRMSE = √MSE / mean(truth), the paper's headline error metric (§7).

    For repeated estimates of a single quantity the denominator is that
    quantity; for a collection of different subsets the mean truth is the
    natural normalizer and matches how the smoothed figures are built.
    """
    _validate_lengths(estimates, truths)
    mean_truth = float(np.mean(np.asarray(truths, dtype=np.float64)))
    if mean_truth == 0:
        raise InvalidParameterError("relative RRMSE is undefined for zero mean truth")
    return root_mean_squared_error(estimates, truths) / abs(mean_truth)


def relative_mse(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Relative MSE = MSE / mean(truth)² (the squared RRMSE)."""
    return relative_rmse(estimates, truths) ** 2


def bias(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Mean signed error; near zero for an unbiased estimator."""
    _validate_lengths(estimates, truths)
    errors = np.asarray(estimates, dtype=np.float64) - np.asarray(truths, dtype=np.float64)
    return float(np.mean(errors))


def relative_bias(estimates: Sequence[float], truths: Sequence[float]) -> float:
    """Mean signed error divided by the mean truth."""
    _validate_lengths(estimates, truths)
    mean_truth = float(np.mean(np.asarray(truths, dtype=np.float64)))
    if mean_truth == 0:
        raise InvalidParameterError("relative bias is undefined for zero mean truth")
    return bias(estimates, truths) / abs(mean_truth)


def relative_efficiency(
    baseline_estimates: Sequence[float],
    candidate_estimates: Sequence[float],
    truths: Sequence[float],
) -> float:
    """Ratio MSE(baseline) / MSE(candidate); > 1 means the candidate is better.

    Figure 5's right panel reports Var(priority sampling)/Var(Unbiased Space
    Saving); with unbiased estimators MSE and variance coincide, so this is
    the same quantity.
    """
    baseline = mean_squared_error(baseline_estimates, truths)
    candidate = mean_squared_error(candidate_estimates, truths)
    if candidate == 0:
        return float("inf") if baseline > 0 else 1.0
    return baseline / candidate


def empirical_inclusion_probability(
    inclusion_runs: Sequence[Dict], items: Sequence
) -> Dict:
    """Fraction of runs in which each item was retained by the sketch.

    Parameters
    ----------
    inclusion_runs:
        One mapping (or set) of retained items per independent run.
    items:
        The items whose inclusion probability should be reported.
    """
    if not inclusion_runs:
        raise InvalidParameterError("at least one run is required")
    probabilities = {}
    for item in items:
        hits = sum(1 for retained in inclusion_runs if item in retained)
        probabilities[item] = hits / len(inclusion_runs)
    return probabilities


def binned_relative_error(
    truths: Sequence[float],
    estimates: Sequence[float],
    *,
    num_bins: int = 10,
    log_bins: bool = False,
) -> List[Tuple[float, float, int]]:
    """Smoothed relative error versus true count (figures 3 and 4).

    Observations are grouped into ``num_bins`` buckets of the true value
    (linearly or logarithmically spaced) and the average relative absolute
    error of each bucket is reported as ``(bucket_center, mean_relative_error,
    bucket_size)``.
    """
    _validate_lengths(estimates, truths)
    truths_array = np.asarray(truths, dtype=np.float64)
    estimates_array = np.asarray(estimates, dtype=np.float64)
    positive = truths_array > 0
    truths_array = truths_array[positive]
    estimates_array = estimates_array[positive]
    if truths_array.size == 0:
        raise InvalidParameterError("binned relative error needs positive truths")
    if log_bins:
        edges = np.logspace(
            math.log10(truths_array.min()), math.log10(truths_array.max()), num_bins + 1
        )
    else:
        edges = np.linspace(truths_array.min(), truths_array.max(), num_bins + 1)
    edges[-1] = np.nextafter(edges[-1], np.inf)
    relative_errors = np.abs(estimates_array - truths_array) / truths_array
    results: List[Tuple[float, float, int]] = []
    for index in range(num_bins):
        mask = (truths_array >= edges[index]) & (truths_array < edges[index + 1])
        size = int(mask.sum())
        center = float((edges[index] + edges[index + 1]) / 2.0)
        mean_error = float(relative_errors[mask].mean()) if size else 0.0
        results.append((center, mean_error, size))
    return results


def quantiles(values: Sequence[float], points: Optional[Sequence[float]] = None) -> Dict[float, float]:
    """Convenience quantile summary used by the reporting layer."""
    if not values:
        raise InvalidParameterError("quantiles of an empty collection are undefined")
    points = points or (0.1, 0.25, 0.5, 0.75, 0.9)
    array = np.asarray(values, dtype=np.float64)
    return {point: float(np.quantile(array, point)) for point in points}
