"""Monte-Carlo experiment runner.

Every experiment in §7 has the same skeleton: repeat ``num_trials`` times —
reshuffle the stream (or re-seed the sampler), rebuild the sketch(es), and
evaluate a set of queries against exact ground truth — then aggregate the
per-trial errors.  The runner factors that skeleton out so the per-figure
experiment classes only describe *what* varies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro._typing import Item
from repro.api.build import build
from repro.core.deterministic_space_saving import DeterministicSpaceSaving
from repro.core.unbiased_space_saving import UnbiasedSpaceSaving
from repro.errors import InvalidParameterError
from repro.sampling.bottom_k import BottomKSketch
from repro.sampling.priority import PrioritySample
from repro.streams.frequency import FrequencyModel
from repro.streams.generators import exchangeable_stream, iterate_rows

__all__ = [
    "TrialResult",
    "run_trials",
    "build_unbiased_sketch",
    "build_deterministic_sketch",
    "build_bottom_k",
    "draw_priority_sample",
    "random_item_subsets",
]


@dataclass
class TrialResult:
    """Per-trial query results for one method.

    Attributes
    ----------
    method:
        Method label (e.g. ``"unbiased_space_saving"``).
    estimates:
        One estimate per query, aligned with ``truths``.
    truths:
        Exact values of the same queries.
    extra:
        Free-form per-trial diagnostics (e.g. the retained item set).
    """

    method: str
    estimates: List[float] = field(default_factory=list)
    truths: List[float] = field(default_factory=list)
    extra: Dict = field(default_factory=dict)


def run_trials(
    num_trials: int,
    trial: Callable[[int], Sequence[TrialResult]],
) -> Dict[str, List[TrialResult]]:
    """Run ``trial(trial_index)`` repeatedly and group results by method."""
    if num_trials < 1:
        raise InvalidParameterError("num_trials must be positive")
    grouped: Dict[str, List[TrialResult]] = {}
    for index in range(num_trials):
        for result in trial(index):
            grouped.setdefault(result.method, []).append(result)
    return grouped


def build_unbiased_sketch(
    model: FrequencyModel,
    capacity: int,
    *,
    seed: int,
    stream: Optional[Sequence[Item]] = None,
) -> UnbiasedSpaceSaving:
    """Build an Unbiased Space Saving sketch over one (re)shuffled stream.

    Routed through the :func:`repro.build` facade (inline backend), which
    constructs exactly ``UnbiasedSpaceSaving(capacity, seed=seed)`` and
    streams the rows through one ``update`` per row — bit-identical to the
    direct loop it replaces.
    """
    rows = stream if stream is not None else exchangeable_stream(
        model, rng=np.random.default_rng(seed)
    )
    session = build("unbiased_space_saving", size=capacity, seed=seed)
    for row in iterate_rows(rows):
        session.update(row)
    return session.estimator


def build_deterministic_sketch(
    model: FrequencyModel,
    capacity: int,
    *,
    seed: int,
    stream: Optional[Sequence[Item]] = None,
) -> DeterministicSpaceSaving:
    """Build a Deterministic Space Saving sketch over one (re)shuffled stream."""
    rows = stream if stream is not None else exchangeable_stream(
        model, rng=np.random.default_rng(seed)
    )
    session = build("deterministic_space_saving", size=capacity, seed=seed)
    for row in iterate_rows(rows):
        session.update(row)
    return session.estimator


def build_bottom_k(
    model: FrequencyModel,
    capacity: int,
    *,
    seed: int,
    stream: Optional[Sequence[Item]] = None,
) -> BottomKSketch:
    """Build a bottom-k (uniform item) sketch over one (re)shuffled stream."""
    rows = stream if stream is not None else exchangeable_stream(
        model, rng=np.random.default_rng(seed)
    )
    session = build("bottom_k", size=capacity, seed=seed)
    for row in iterate_rows(rows):
        session.update(row)
    return session.estimator


def draw_priority_sample(
    model: FrequencyModel, capacity: int, *, seed: int
) -> PrioritySample:
    """Draw a priority sample from the *pre-aggregated* counts.

    This is the baseline's home turf: it never sees the disaggregated rows,
    only the exact per-item totals — the expensive aggregation the sketch
    avoids.
    """
    counts = {item: float(count) for item, count in model.counts.items()}
    return PrioritySample(counts, capacity, rng=random.Random(seed))


def random_item_subsets(
    model: FrequencyModel,
    num_subsets: int,
    subset_size: int,
    *,
    seed: int,
) -> List[List[Item]]:
    """Draw random fixed-size subsets of the item universe (the §7 queries)."""
    if subset_size < 1 or num_subsets < 1:
        raise InvalidParameterError("num_subsets and subset_size must be positive")
    if subset_size > model.num_items:
        raise InvalidParameterError("subset_size exceeds the number of items")
    rng = random.Random(seed)
    items = model.items()
    return [rng.sample(items, subset_size) for _ in range(num_subsets)]
